"""GUPster — user profile management for converged networks.

Reproduction of *Enter Once, Share Everywhere: User Profile Management
in Converged Networks* (CIDR 2003). See DESIGN.md for the system
inventory and EXPERIMENTS.md for the experiment ledger.

The public API re-exports the pieces a downstream application needs:

* the profile data model (:mod:`repro.pxml`),
* the simulated converged network and native stores
  (:mod:`repro.simnet`, :mod:`repro.stores`, :mod:`repro.adapters`),
* the GUPster server, coverage and query patterns (:mod:`repro.core`),
* the privacy shield (:mod:`repro.access`),
* synchronization and provisioning (:mod:`repro.sync`,
  :mod:`repro.provisioning`),
* converged services built on top (:mod:`repro.services`).
"""

__version__ = "1.0.0"

from repro.pxml import (  # noqa: F401
    GUP_SCHEMA,
    PNode,
    Path,
    element,
    parse,
    parse_path,
)
