"""GUP adapters: the "GUP-enabled" wrapper on top of native stores.

Paper Section 4.2: "Data stores need to be GUP-enabled in order to
participate in the GUP community. Concretely, this means that an
adapter is put on top of the data store to offer a GUP-compliant
interface (protocol and data model)."

An adapter translates between a store's native records and GUP-schema
XML components. The uniform surface is small:

* :meth:`coverage_paths` — the component paths this store can register
  with GUPster for a given user,
* :meth:`get` — answer a (GUPster-signed, already-authorized) request
  path with an XML fragment rooted at ``<user>``,
* :meth:`put` — apply a provisioning fragment to the native store.

Concrete adapters implement :meth:`export_user` (native → XML); the
shared ``get`` projects the requested subtree out of that view with
:func:`repro.pxml.evaluate.extract`, so every adapter automatically
supports the whole path fragment. Writes are component-granular —
subclasses override :meth:`apply_component`.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.errors import AdapterError
from repro.pxml import GUP_SCHEMA, PNode, Path, extract, parse_path

__all__ = ["GupAdapter"]


class GupAdapter:
    """Base class for store adapters."""

    #: Component tags (children of <user>) this adapter can serve.
    COMPONENTS: tuple = ()

    #: Optional per-component *slice* suffixes appended to coverage
    #: registrations when this store holds only part of a component —
    #: e.g. ``{"call-status": "[@network='pstn']"}`` (a predicate on
    #: the component element) or
    #: ``{"address-book": "/item[@type='corporate']"}`` (a deeper
    #: slice, Figure 9 style). Requests arriving for the sliced path
    #: are answered by the shared ``get`` projection automatically.
    COMPONENT_SLICES: dict = {}

    def __init__(self, store_id: str, region: str = "internet") -> None:
        #: Node name on the simulated network (and referral target).
        self.store_id = store_id
        self.region = region
        self.schema = GUP_SCHEMA
        self.gets = 0
        self.puts = 0

    # -- abstract hooks ------------------------------------------------------

    def users(self) -> List[str]:
        """User ids with data at this store."""
        raise NotImplementedError

    def export_user(self, user_id: str) -> Optional[PNode]:
        """Full GUP view of *user_id*'s data at this store (or None)."""
        raise NotImplementedError

    def apply_component(
        self, user_id: str, component: str, fragment: PNode
    ) -> None:
        """Write one component's new content into the native store."""
        raise AdapterError(
            "%s does not accept writes to <%s>"
            % (type(self).__name__, component)
        )

    # -- the GUP interface -----------------------------------------------------

    def coverage_paths(self, user_id: str) -> List[str]:
        """Paths to register with GUPster for *user_id* (only components
        the user actually has data for)."""
        view = self.export_user(user_id)
        if view is None:
            return []
        present = {child.tag for child in view.children}
        return [
            "/user[@id='%s']/%s%s"
            % (user_id, tag, self.COMPONENT_SLICES.get(tag, ""))
            for tag in self.COMPONENTS
            if tag in present
        ]

    def get(self, path: Union[str, Path]) -> Optional[PNode]:
        """Answer a request path with a ``<user>``-rooted fragment."""
        parsed = parse_path(path)
        user_id = parsed.user_id()
        if user_id is None:
            raise AdapterError(
                "request must identify the user: %s" % parsed
            )
        self.gets += 1
        view = self.export_user(user_id)
        if view is None:
            return None
        return extract(view, parsed.element_path())

    def put(self, path: Union[str, Path], fragment: PNode) -> None:
        """Provision a component. *path* must address a whole component
        (``/user[@id=..]/<component>``); *fragment* is the new content,
        rooted at either ``<user>`` or the component element."""
        parsed = parse_path(path)
        user_id = parsed.user_id()
        if user_id is None:
            raise AdapterError("put path must identify the user")
        if parsed.depth != 2 or parsed.attribute is not None:
            raise AdapterError(
                "writes are component-granular, got %s" % parsed
            )
        component = parsed.steps[1].name
        if component not in self.COMPONENTS:
            raise AdapterError(
                "%s does not hold <%s>" % (self.store_id, component)
            )
        content = fragment
        if fragment.tag == "user":
            content = fragment.child(component)
            if content is None:
                raise AdapterError(
                    "fragment does not contain <%s>" % component
                )
        elif fragment.tag != component:
            raise AdapterError(
                "fragment root <%s> does not match component <%s>"
                % (fragment.tag, component)
            )
        self.puts += 1
        self.apply_component(user_id, component, content)

    # -- helpers for subclasses ---------------------------------------------------

    def _user_root(self, user_id: str) -> PNode:
        return PNode("user", {"id": user_id})

    def __repr__(self) -> str:
        return "<%s %s>" % (type(self).__name__, self.store_id)
