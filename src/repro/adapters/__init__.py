"""GUP adapters: wrappers that give native stores the GUP-compliant
interface (paper Section 4.2)."""

from repro.adapters.base import GupAdapter
from repro.adapters.composite import CompositeAdapter
from repro.adapters.hlr_adapter import HlrAdapter
from repro.adapters.ldap_adapter import LdapAdapter
from repro.adapters.portal_adapter import EnterpriseAdapter, PortalAdapter
from repro.adapters.telephony_adapters import (
    DeviceAdapter,
    IspAdapter,
    PresenceAdapter,
    PstnAdapter,
    SipAdapter,
)

__all__ = [
    "GupAdapter",
    "CompositeAdapter",
    "HlrAdapter",
    "LdapAdapter",
    "PortalAdapter",
    "EnterpriseAdapter",
    "PstnAdapter",
    "SipAdapter",
    "PresenceAdapter",
    "DeviceAdapter",
    "IspAdapter",
]
