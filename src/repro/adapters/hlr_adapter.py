"""Adapter for the wireless HLR: exports subscriber profile, location
and service settings as GUP components.

The HLR is read-mostly from GUPster's perspective — location comes from
the mobility machinery — but service settings (call forwarding) accept
writes, which is how "enter once" reaches the wireless network.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import AdapterError, UnknownSubscriberError
from repro.pxml import PNode
from repro.adapters.base import GupAdapter
from repro.stores.hlr import HLR

__all__ = ["HlrAdapter"]


class HlrAdapter(GupAdapter):
    """GUP-enables an HLR: exports identity/devices/location/
    services; accepts writes to the service settings."""

    COMPONENTS = ("self", "location", "services", "devices")

    def __init__(self, store_id: str, hlr: HLR):
        super().__init__(store_id, region="core")
        self.hlr = hlr

    def users(self) -> List[str]:
        return self.hlr.user_ids()

    def export_user(self, user_id: str) -> Optional[PNode]:
        try:
            record = self.hlr.subscriber_by_user(user_id)
        except UnknownSubscriberError:
            return None
        root = self._user_root(user_id)
        self_el = root.append(PNode("self"))
        self_el.append(
            PNode("number", {"type": "cell"}, record.msisdn)
        )
        devices = root.append(PNode("devices"))
        devices.append(
            PNode(
                "device",
                {
                    "id": record.imsi,
                    "type": "cell-phone",
                    "carrier": self.hlr.carrier,
                },
            )
        )
        location = root.append(PNode("location"))
        location.append(
            PNode("on-air", text="true" if record.on_air else "false")
        )
        if record.current_cell is not None:
            location.append(PNode("cell", text=record.current_cell))
        if record.current_vlr is not None:
            location.append(PNode("zone", text=record.current_vlr))
        services = root.append(PNode("services"))
        forwarding = PNode(
            "service",
            {
                "name": "call-forwarding",
                "enabled": "true" if record.call_forwarding else "false",
            },
        )
        if record.call_forwarding:
            forwarding.append(
                PNode("parameter", {"name": "target"},
                      record.call_forwarding)
            )
        services.append(forwarding)
        if record.barred_numbers:
            barring = PNode(
                "service", {"name": "call-barring", "enabled": "true"}
            )
            for index, number in enumerate(record.barred_numbers):
                barring.append(
                    PNode("parameter", {"name": "barred-%d" % index},
                          number)
                )
            services.append(barring)
        roaming = PNode(
            "service",
            {
                "name": "roaming",
                "enabled": "true" if record.roaming_allowed else "false",
            },
        )
        services.append(roaming)
        return root

    def apply_component(
        self, user_id: str, component: str, fragment: PNode
    ) -> None:
        if component != "services":
            raise AdapterError(
                "HLR only accepts writes to <services>, not <%s>"
                % component
            )
        record = self.hlr.subscriber_by_user(user_id)
        for service in fragment.children_named("service"):
            name = service.attrs.get("name")
            enabled = service.attrs.get("enabled") == "true"
            if name == "call-forwarding":
                target = None
                if enabled:
                    for param in service.children_named("parameter"):
                        if param.attrs.get("name") == "target":
                            target = param.text
                self.hlr.set_call_forwarding(record.msisdn, target)
            elif name == "call-barring":
                barred = [
                    param.text or ""
                    for param in service.children_named("parameter")
                ] if enabled else []
                self.hlr.set_barring(record.msisdn, barred)
            elif name == "roaming":
                record.roaming_allowed = enabled
            else:
                raise AdapterError("unknown wireless service %r" % name)
