"""Adapters for the PSTN switch, SIP infrastructure, presence server,
and end-user devices.

Each is thin by design: the point (paper Section 4.2) is that *any*
profile-bearing element can join the GUP community with a small wrapper,
not that the wrapper is clever.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import AdapterError
from repro.pxml import PNode
from repro.adapters.base import GupAdapter
from repro.stores.device import MobilePhone, PhoneBookEntry
from repro.stores.presence import PresenceServer
from repro.stores.pstn import Class5Switch
from repro.stores.sip import SipProxy

__all__ = [
    "PstnAdapter",
    "SipAdapter",
    "IspAdapter",
    "PresenceAdapter",
    "DeviceAdapter",
]


class PstnAdapter(GupAdapter):
    """Exports per-line switch features as <services> and <call-status>.

    This adapter *is* the "web-based interface for self-provisioning"
    the paper says is emerging: it holds operator authority, so writes
    that would be denied at the keypad succeed through GUPster."""

    COMPONENTS = ("services", "call-status")
    COMPONENT_SLICES = {"call-status": "[@network='pstn']"}

    def __init__(self, store_id: str, switch: Class5Switch):
        super().__init__(store_id, region="core")
        self.switch = switch
        #: user_id -> line number on this switch.
        self._lines: Dict[str, str] = {}

    def attach_line(self, user_id: str, number: str) -> None:
        if not self.switch.has_line(number):
            raise AdapterError("switch has no line %r" % number)
        self._lines[user_id] = number

    def users(self) -> List[str]:
        return sorted(self._lines)

    def export_user(self, user_id: str) -> Optional[PNode]:
        number = self._lines.get(user_id)
        if number is None:
            return None
        line = self.switch.line(number)
        root = self._user_root(user_id)
        status = root.append(PNode("call-status", {"network": "pstn"}))
        status.append(
            PNode("state", text=self.switch.call_status(number))
        )
        services = root.append(PNode("services"))
        forwarding = PNode(
            "service",
            {
                "name": "call-forwarding",
                "enabled": "true" if line.call_forwarding else "false",
            },
        )
        if line.call_forwarding:
            forwarding.append(
                PNode("parameter", {"name": "target"},
                      line.call_forwarding)
            )
        services.append(forwarding)
        services.append(
            PNode(
                "service",
                {
                    "name": "caller-id",
                    "enabled": (
                        "true" if line.caller_id_enabled else "false"
                    ),
                },
            )
        )
        return root

    def apply_component(
        self, user_id: str, component: str, fragment: PNode
    ) -> None:
        if component != "services":
            raise AdapterError("PSTN lines accept only <services> writes")
        number = self._lines.get(user_id)
        if number is None:
            raise AdapterError("no line for user %r" % user_id)
        for service in fragment.children_named("service"):
            name = service.attrs.get("name")
            enabled = service.attrs.get("enabled") == "true"
            if name == "call-forwarding":
                target = None
                if enabled:
                    for param in service.children_named("parameter"):
                        if param.attrs.get("name") == "target":
                            target = param.text
                self.switch.provision(
                    number, "call_forwarding", target, by_operator=True
                )
            elif name == "caller-id":
                self.switch.provision(
                    number, "caller_id_enabled", enabled,
                    by_operator=True,
                )
            else:
                raise AdapterError("unknown PSTN service %r" % name)


class SipAdapter(GupAdapter):
    """Exports VoIP reachability as <call-status>."""

    COMPONENTS = ("call-status",)
    COMPONENT_SLICES = {"call-status": "[@network='voip']"}

    def __init__(self, store_id: str, proxy: SipProxy):
        super().__init__(store_id, region="internet")
        self.proxy = proxy
        self._aors: Dict[str, str] = {}
        #: Virtual clock supplier for binding expiry (settable by sims).
        self.now = 0.0

    def attach_aor(self, user_id: str, aor: str) -> None:
        self._aors[user_id] = aor

    def users(self) -> List[str]:
        return sorted(self._aors)

    def export_user(self, user_id: str) -> Optional[PNode]:
        aor = self._aors.get(user_id)
        if aor is None:
            return None
        root = self._user_root(user_id)
        status = root.append(PNode("call-status", {"network": "voip"}))
        status.append(
            PNode("state", text=self.proxy.call_status(aor, self.now))
        )
        return root


class IspAdapter(GupAdapter):
    """Exports the ISP's session state as <call-status
    network='internet'> — the paper's "cross network info: ISP info
    about a user being connected or not"."""

    COMPONENTS = ("call-status",)
    COMPONENT_SLICES = {"call-status": "[@network='internet']"}

    def __init__(self, store_id: str, isp):
        super().__init__(store_id, region="internet")
        self.isp = isp
        self._known: List[str] = []

    def track_user(self, user_id: str) -> None:
        if user_id not in self._known:
            self._known.append(user_id)

    def users(self) -> List[str]:
        return sorted(self._known)

    def export_user(self, user_id: str) -> Optional[PNode]:
        if user_id not in self._known:
            return None
        root = self._user_root(user_id)
        status = root.append(
            PNode("call-status", {"network": "internet"})
        )
        status.append(
            PNode(
                "state",
                text=(
                    "online" if self.isp.is_connected(user_id)
                    else "offline"
                ),
            )
        )
        return root


class PresenceAdapter(GupAdapter):
    """Exports IM presence as <presence> and the IM provider's buddy
    list as <buddy-list>; write-enabled so users can set status and
    edit buddies through GUPster."""

    COMPONENTS = ("presence", "buddy-list")

    def __init__(self, store_id: str, server: PresenceServer):
        super().__init__(store_id, region="internet")
        self.server = server
        self._known: List[str] = []

    def track_user(self, user_id: str) -> None:
        if user_id not in self._known:
            self._known.append(user_id)

    def users(self) -> List[str]:
        return sorted(self._known)

    def export_user(self, user_id: str) -> Optional[PNode]:
        if user_id not in self._known:
            return None
        root = self._user_root(user_id)
        presence = root.append(PNode("presence"))
        presence.append(
            PNode("status", text=self.server.status(user_id))
        )
        note = self.server.note(user_id)
        if note:
            presence.append(PNode("note", text=note))
        buddies = self.server.buddies(user_id)
        if buddies:
            buddy_list = root.append(PNode("buddy-list"))
            for buddy_id in sorted(buddies):
                buddy = buddy_list.append(
                    PNode("buddy", {"id": buddy_id})
                )
                if buddies[buddy_id]:
                    buddy.append(
                        PNode("alias", text=buddies[buddy_id])
                    )
        return root

    def apply_component(
        self, user_id: str, component: str, fragment: PNode
    ) -> None:
        if component == "buddy-list":
            incoming = {}
            for buddy in fragment.children_named("buddy"):
                alias_el = buddy.child("alias")
                incoming[buddy.attrs.get("id", "")] = (
                    alias_el.text
                    if alias_el is not None and alias_el.text else ""
                )
            self.track_user(user_id)
            for stale in self.server.buddies(user_id):
                if stale not in incoming:
                    self.server.remove_buddy(user_id, stale)
            for buddy_id, alias in incoming.items():
                if buddy_id:
                    self.server.add_buddy(user_id, buddy_id, alias)
            return
        status = fragment.child("status")
        if status is None or not status.text:
            raise AdapterError("presence write needs a <status>")
        note = fragment.child("note")
        self.track_user(user_id)
        self.server.set_status(
            user_id, status.text,
            note.text if note is not None and note.text else "",
        )


class DeviceAdapter(GupAdapter):
    """Exports a mobile phone's book and preferences; write-enabled so
    network-side books can sync down to the device."""

    COMPONENTS = ("address-book", "preferences")

    def __init__(self, store_id: str, phone: MobilePhone):
        super().__init__(store_id, region="wireless")
        self.phone = phone

    def users(self) -> List[str]:
        return [self.phone.user_id]

    def export_user(self, user_id: str) -> Optional[PNode]:
        if user_id != self.phone.user_id:
            return None
        root = self._user_root(user_id)
        entries = self.phone.all_entries()
        if entries:
            book = root.append(PNode("address-book"))
            for entry in entries:
                # Devices carry the user's own (personal) book.
                item = book.append(
                    PNode("item",
                          {"id": entry.entry_id, "type": "personal"})
                )
                item.append(PNode("name", text=entry.name))
                if entry.number:
                    item.append(
                        PNode("number", {"type": entry.number_type},
                              entry.number)
                    )
        if self.phone.preferences:
            prefs = root.append(PNode("preferences"))
            for name in sorted(self.phone.preferences):
                prefs.append(
                    PNode("preference", {"name": name},
                          self.phone.preferences[name])
                )
        return root

    def apply_component(
        self, user_id: str, component: str, fragment: PNode
    ) -> None:
        if user_id != self.phone.user_id:
            raise AdapterError("not this user's device")
        if component == "address-book":
            incoming = set()
            for item in fragment.children_named("item"):
                name_el = item.child("name")
                number_el = item.child("number")
                entry = PhoneBookEntry(
                    item.attrs.get("id", ""),
                    name_el.text if name_el is not None and name_el.text
                    else "",
                    number_el.text
                    if number_el is not None and number_el.text else "",
                    number_type=(
                        number_el.attrs.get("type", "cell")
                        if number_el is not None else "cell"
                    ),
                )
                incoming.add(entry.entry_id)
                self.phone.store_entry(entry)
            for existing in list(self.phone.phonebook):
                if existing not in incoming:
                    self.phone.delete_entry(existing)
        elif component == "preferences":
            for pref in fragment.children_named("preference"):
                self.phone.set_preference(
                    pref.attrs["name"], pref.text or ""
                )
        else:  # pragma: no cover - guarded by GupAdapter.put
            raise AdapterError("unsupported component %r" % component)
