"""Adapter wrapping LDAP sites (paper Section 6: "we also plan ... to
provide tools to wrap LDAP sites").

Two translation paths, matching the paper's analysis:

* **Structured entries** — ``inetOrgPerson`` attributes map cleanly to
  the GUP ``<self>`` component (cn → name, mail → email,
  telephoneNumber/mobile → numbers).
* **Opaque roaming-profile blobs** — the Netscape workaround stores
  nested data (address book) as one binary value. The adapter *can*
  expose it as a GUP component by parsing the blob, but it must fetch
  and re-write the whole object every time; ``native_bytes_read``
  records that cost, which experiment E9 compares against XML's
  subtree-granular access.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import AdapterError, ParseError, StoreError
from repro.pxml import PNode, parse
from repro.adapters.base import GupAdapter
from repro.stores.directory import DirectoryServer, LdapEntry

__all__ = ["LdapAdapter"]


class LdapAdapter(GupAdapter):
    """GUP-enables an LDAP site: person entries map to <self>,
    roaming-profile blobs to <address-book> (whole-object cost)."""

    COMPONENTS = ("self", "address-book")

    def __init__(self, store_id: str, server: DirectoryServer):
        super().__init__(store_id, region=server.region)
        self.server = server
        self._person_dns: Dict[str, str] = {}
        self._profile_dns: Dict[str, str] = {}
        #: Bytes of native entries fetched to answer GUP requests.
        self.native_bytes_read = 0

    # -- wiring ------------------------------------------------------------

    def map_person(self, user_id: str, dn: str) -> None:
        self.server.entry(dn)  # must exist
        self._person_dns[user_id] = dn

    def map_roaming_profile(self, user_id: str, dn: str) -> None:
        entry = self.server.entry(dn)
        if "roamingProfileObject" not in entry.object_classes:
            raise AdapterError("%r is not a roaming profile" % dn)
        self._profile_dns[user_id] = dn

    def users(self) -> List[str]:
        return sorted(set(self._person_dns) | set(self._profile_dns))

    # -- export ----------------------------------------------------------------

    def export_user(self, user_id: str) -> Optional[PNode]:
        person_dn = self._person_dns.get(user_id)
        profile_dn = self._profile_dns.get(user_id)
        if person_dn is None and profile_dn is None:
            return None
        root = self._user_root(user_id)
        if person_dn is not None:
            entry = self.server.entry(person_dn)
            self.native_bytes_read += entry.byte_size()
            root.append(self._person_to_self(entry))
        if profile_dn is not None:
            entry = self.server.entry(profile_dn)
            # Opaque blob: the whole object moves, regardless of what
            # part of the address book the request wants.
            self.native_bytes_read += entry.byte_size()
            book = self._blob_to_book(entry)
            if book is not None:
                root.append(book)
        return root

    @staticmethod
    def _person_to_self(entry: LdapEntry) -> PNode:
        self_el = PNode("self")
        cn = entry.first("cn")
        if cn:
            self_el.append(PNode("name", text=cn))
        for mail in entry.values("mail"):
            self_el.append(
                PNode("email", {"type": "corporate"}, mail)
            )
        for number in entry.values("telephoneNumber"):
            self_el.append(PNode("number", {"type": "work"}, number))
        for number in entry.values("mobile"):
            self_el.append(PNode("number", {"type": "cell"}, number))
        ou = entry.first("ou")
        if ou:
            self_el.append(PNode("employer", text=ou))
        return self_el

    @staticmethod
    def _blob_to_book(entry: LdapEntry) -> Optional[PNode]:
        blob = entry.first("profileBlob")
        if not blob:
            return None
        try:
            parsed = parse(blob)
        except ParseError as err:
            raise AdapterError(
                "roaming blob of %r is not parseable: %s"
                % (entry.dn, err)
            ) from err
        if parsed.tag != "address-book":
            raise AdapterError(
                "roaming blob of %r is not an address book" % entry.dn
            )
        return parsed

    # -- import ----------------------------------------------------------------

    def write_attr(
        self, user_id: str, attr: str, values: List[str]
    ) -> None:
        """Attribute-granular write to the person entry (the
        federation write seam, DESIGN.md §4.10).

        Error taxonomy matches the read path: every failure surfaces
        as :class:`~repro.errors.AdapterError` — unknown user, missing
        entry, schema violation — never a raw backing-store error. A
        rejected write leaves the entry exactly as it was (the server
        mutates before validating, so this rolls back)."""
        dn = self._person_dns.get(user_id)
        if dn is None:
            raise AdapterError(
                "no person entry mapped for %r at %s"
                % (user_id, self.store_id)
            )
        try:
            entry = self.server.entry(dn)
        except StoreError as err:
            raise AdapterError(
                "person entry %r vanished from %s: %s"
                % (dn, self.store_id, err)
            ) from err
        previous = entry.attrs.get(attr.lower())
        try:
            self.server.modify(dn, attr, values)
        except StoreError as err:
            if previous is None:
                entry.attrs.pop(attr.lower(), None)
            else:
                entry.attrs[attr.lower()] = previous
            raise AdapterError(
                "%s rejected write of %r to %r: %s"
                % (self.store_id, attr, dn, err)
            ) from err

    def apply_component(
        self, user_id: str, component: str, fragment: PNode
    ) -> None:
        if component != "address-book":
            raise AdapterError(
                "LDAP adapter only writes the roaming address book"
            )
        dn = self._profile_dns.get(user_id)
        if dn is None:
            raise AdapterError("no roaming profile for %r" % user_id)
        # Whole-object update: serialize the complete new blob.
        entry = self.server.entry(dn)
        self.native_bytes_read += entry.byte_size()
        try:
            self.server.modify(dn, "profileBlob", [fragment.serialize()])
        except StoreError as err:  # pragma: no cover - defensive
            raise AdapterError(str(err)) from err
