"""Composite adapter: one GUP store id fronting several native stores.

Real operators run many systems behind one brand — the paper's
``gup.spcs.com`` serves Arnaud's address book *and* game scores *and*
presence, which inside SprintPCS live in different boxes. A
:class:`CompositeAdapter` unifies child adapters under a single store
id: exports are deep-unioned, writes are routed to whichever child
accepts the component.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import AdapterError
from repro.pxml import PNode
from repro.pxml.merge import GUP_KEYSPEC, merge_all
from repro.adapters.base import GupAdapter

__all__ = ["CompositeAdapter"]


class CompositeAdapter(GupAdapter):
    """One GUP store id fronting several native stores; exports
    are deep-unioned, writes route to the child that accepts the
    component."""

    def __init__(
        self,
        store_id: str,
        children: Sequence[GupAdapter],
        region: str = "core",
    ):
        super().__init__(store_id, region=region)
        if not children:
            raise ValueError("composite needs at least one child")
        self.children = list(children)

    @property
    def COMPONENTS(self):  # type: ignore[override]
        merged: List[str] = []
        for child in self.children:
            for tag in child.COMPONENTS:
                if tag not in merged:
                    merged.append(tag)
        return tuple(merged)

    def users(self) -> List[str]:
        seen: List[str] = []
        for child in self.children:
            for user in child.users():
                if user not in seen:
                    seen.append(user)
        return sorted(seen)

    def export_user(self, user_id: str) -> Optional[PNode]:
        views = [
            view
            for view in (
                child.export_user(user_id) for child in self.children
            )
            if view is not None
        ]
        if not views:
            return None
        return merge_all(views, GUP_KEYSPEC)

    def apply_component(
        self, user_id: str, component: str, fragment: PNode
    ) -> None:
        errors = []
        for child in self.children:
            if component in child.COMPONENTS:
                try:
                    child.apply_component(user_id, component, fragment)
                    return
                except AdapterError as err:
                    errors.append(str(err))
        raise AdapterError(
            "no child of %s accepted <%s>%s"
            % (
                self.store_id,
                component,
                ": " + "; ".join(errors) if errors else "",
            )
        )
