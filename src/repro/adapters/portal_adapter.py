"""Adapter for web portals and enterprise servers (native records →
GUP XML and back). This is the workhorse adapter: address book,
calendar, game scores and bookmarks, with full write support."""

from __future__ import annotations

from typing import List, Optional

from repro.errors import AdapterError
from repro.pxml import PNode
from repro.adapters.base import GupAdapter
from repro.stores.webportal import (
    AppointmentRecord,
    ContactRecord,
    EnterpriseServer,
    WebPortal,
)

__all__ = ["PortalAdapter", "EnterpriseAdapter"]


class PortalAdapter(GupAdapter):
    """GUP-enables a :class:`~repro.stores.webportal.WebPortal`."""

    COMPONENTS = ("address-book", "calendar", "game-scores", "bookmarks")

    def __init__(self, store_id: str, portal: WebPortal):
        super().__init__(store_id, region=portal.region)
        self.portal = portal

    def users(self) -> List[str]:
        return self.portal.accounts()

    # -- export ----------------------------------------------------------------

    def export_user(self, user_id: str) -> Optional[PNode]:
        if not self.portal.has_account(user_id):
            return None
        root = self._user_root(user_id)
        contacts = self.portal.contacts(user_id)
        if contacts:
            book = root.append(PNode("address-book"))
            for record in sorted(contacts, key=lambda c: c.contact_id):
                book.append(_contact_to_item(record))
        appointments = self.portal.appointments(user_id)
        if appointments:
            calendar = root.append(PNode("calendar"))
            for appt in appointments:
                calendar.append(_appointment_to_xml(appt))
        scores = self.portal.scores(user_id)
        if scores:
            score_el = root.append(PNode("game-scores"))
            for game in sorted(scores):
                score_el.append(
                    PNode("score", {"game": game}, str(scores[game]))
                )
        bookmarks = self.portal.bookmarks(user_id)
        if bookmarks:
            marks = root.append(PNode("bookmarks"))
            for mark_id in sorted(bookmarks):
                marks.append(
                    PNode("bookmark", {"id": mark_id},
                          bookmarks[mark_id])
                )
        return root

    # -- import ----------------------------------------------------------------

    def apply_component(
        self, user_id: str, component: str, fragment: PNode
    ) -> None:
        if not self.portal.has_account(user_id):
            self.portal.create_account(user_id)
        if component == "address-book":
            self._apply_address_book(user_id, fragment)
        elif component == "calendar":
            self._apply_calendar(user_id, fragment)
        elif component == "game-scores":
            for score in fragment.children_named("score"):
                self.portal.set_score(
                    user_id, score.attrs["game"], int(score.text or "0")
                )
        elif component == "bookmarks":
            for mark in fragment.children_named("bookmark"):
                self.portal.add_bookmark(
                    user_id, mark.attrs["id"], mark.text or ""
                )
        else:  # pragma: no cover - guarded by GupAdapter.put
            raise AdapterError("unsupported component %r" % component)

    def _apply_address_book(self, user_id: str, book: PNode) -> None:
        existing = {
            c.contact_id for c in self.portal.contacts(user_id)
        }
        incoming = set()
        for item in book.children_named("item"):
            record = _item_to_contact(item)
            incoming.add(record.contact_id)
            self.portal.put_contact(user_id, record)
        for stale in existing - incoming:
            self.portal.delete_contact(user_id, stale)

    def _apply_calendar(self, user_id: str, calendar: PNode) -> None:
        for appt in calendar.children_named("appointment"):
            self.portal.put_appointment(user_id, _xml_to_appointment(appt))


class EnterpriseAdapter(PortalAdapter):
    """Adapter for the corporate intranet: serves only corporate data
    and tags exported items accordingly. Its coverage registrations are
    *slices* (Figure 9 style) because the enterprise never holds the
    personal half of anything."""

    COMPONENTS = ("address-book", "calendar")
    COMPONENT_SLICES = {
        "address-book": "/item[@type='corporate']",
        "calendar": "/appointment[@visibility='work']",
    }

    def __init__(self, store_id: str, server: EnterpriseServer):
        super().__init__(store_id, server)
        self.region = "enterprise"

    def apply_component(
        self, user_id: str, component: str, fragment: PNode
    ) -> None:
        """Writes crossing the firewall are filtered to the corporate
        slice — personal entries silently stay outside."""
        filtered = PNode(fragment.tag, dict(fragment.attrs))
        for child in fragment.children:
            if component == "address-book" and child.tag == "item":
                if child.attrs.get("type") != "corporate":
                    continue
            if component == "calendar" and child.tag == "appointment":
                if child.attrs.get("visibility") != "work":
                    continue
            filtered.append(child.copy())
        super().apply_component(user_id, component, filtered)

    def export_user(self, user_id: str) -> Optional[PNode]:
        root = super().export_user(user_id)
        if root is None:
            return None
        # Drop the portal-only components; stamp corporate type.
        for tag in ("game-scores", "bookmarks"):
            extra = root.child(tag)
            if extra is not None:
                root.remove(extra)
        book = root.child("address-book")
        if book is not None:
            for item in book.children:
                item.attrs.setdefault("type", "corporate")
        return root


# ---------------------------------------------------------------------------
# Record <-> XML translation
# ---------------------------------------------------------------------------

def _contact_to_item(record: ContactRecord) -> PNode:
    item = PNode(
        "item", {"id": record.contact_id, "type": record.kind}
    )
    item.append(PNode("name", text=record.display_name))
    for kind in sorted(record.phones):
        if record.phones[kind]:
            item.append(
                PNode("number", {"type": kind}, record.phones[kind])
            )
    for kind in sorted(record.emails):
        if record.emails[kind]:
            item.append(
                PNode("email", {"type": kind}, record.emails[kind])
            )
    return item


def _item_to_contact(item: PNode) -> ContactRecord:
    if "id" not in item.attrs:
        raise AdapterError("address-book item needs an id")
    name_el = item.child("name")
    # Empty values are dropped rather than stored: an empty <number>
    # would be schema-invalid when exported again.
    phones = {
        n.attrs.get("type", "cell"): n.text
        for n in item.children_named("number")
        if n.text
    }
    emails = {
        e.attrs.get("type", "personal"): e.text
        for e in item.children_named("email")
        if e.text
    }
    return ContactRecord(
        item.attrs["id"],
        name_el.text if name_el is not None and name_el.text else "",
        kind=item.attrs.get("type", "personal"),
        phones=phones,
        emails=emails,
    )


def _appointment_to_xml(appt: AppointmentRecord) -> PNode:
    node = PNode(
        "appointment",
        {"id": appt.appt_id, "visibility": appt.visibility},
    )
    node.append(PNode("start", text=appt.start))
    node.append(PNode("end", text=appt.end))
    node.append(PNode("subject", text=appt.subject))
    if appt.where:
        node.append(PNode("where", text=appt.where))
    return node


def _xml_to_appointment(node: PNode) -> AppointmentRecord:
    if "id" not in node.attrs:
        raise AdapterError("appointment needs an id")

    def text_of(tag: str, default: str = "") -> str:
        child = node.child(tag)
        return child.text if child is not None and child.text else default

    return AppointmentRecord(
        node.attrs["id"],
        text_of("start"),
        text_of("end"),
        text_of("subject"),
        where=text_of("where"),
        visibility=node.attrs.get("visibility", "private"),
    )
