"""Exporters: Chrome trace-event JSON, Prometheus text, JSON snapshot.

Three consumers, three formats:

* ``chrome://tracing`` / Perfetto loads :func:`to_chrome_trace` —
  every span a complete ("X") event, every span event an instant
  ("i"), one "process" per trace id and one "thread" per fork lane,
  so a degraded E16 chaining query renders as parallel referral
  lanes with the retry sweeps visible inside the dead store's lane.
* A metrics scraper reads :func:`to_prometheus` — the standard text
  exposition format (counters, gauges, cumulative ``_bucket`` lines
  for histograms).
* Benchmarks archive :func:`to_json_snapshot` next to their result
  tables (``benchmarks/results/*_metrics.json``).

:func:`expected_duration` / :func:`reconcile` implement the E18
acceptance check: a span tree must *explain* its trace's elapsed time
under the fork/join cost model (sequential children sum; children in
the same ``fork_group`` contribute their max).
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import Span, SpanRecorder

__all__ = [
    "expected_duration",
    "reconcile",
    "to_chrome_trace",
    "to_json_snapshot",
    "to_prometheus",
]


# ---------------------------------------------------------------------------
# Chrome trace-event JSON
# ---------------------------------------------------------------------------

def to_chrome_trace(recorder: SpanRecorder) -> Dict[str, object]:
    """The recorder's spans in Chrome trace-event JSON (object form).

    Timestamps are microseconds in the trace-event format; our spans
    are virtual milliseconds, so ``ts = start_ms * 1000``. ``pid`` is
    the trace id (one query per "process"), ``tid`` the fork lane.
    Unfinished spans export as zero-duration events flagged
    ``"unfinished": true`` rather than being dropped — a visible bug
    beats a hidden one.
    """
    events: List[Dict[str, object]] = []
    for span in recorder.spans:
        args: Dict[str, object] = dict(span.attrs)
        if not span.finished:
            args["unfinished"] = True
        events.append({
            "name": span.name,
            "ph": "X",
            "ts": span.start_ms * 1000.0,
            "dur": span.duration_ms * 1000.0,
            "pid": span.trace_id,
            "tid": span.tid,
            "args": args,
        })
        for ev in span.events:
            events.append({
                "name": ev.name,
                "ph": "i",
                "ts": ev.at_ms * 1000.0,
                "pid": span.trace_id,
                "tid": span.tid,
                "s": "t",
                "args": dict(ev.attrs),
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "virtual", "source": "repro.obs"},
    }


def write_chrome_trace(recorder: SpanRecorder, path: str) -> None:
    """Dump :func:`to_chrome_trace` to *path* (pretty-printed, stable
    key order — the file is diffed in CI artifacts)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(recorder), handle, indent=1,
                  sort_keys=True)
        handle.write("\n")


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

def _prom_name(name: str) -> str:
    """Dotted metric names → Prometheus identifiers."""
    out = []
    for ch in name:
        out.append(ch if (ch.isalnum() or ch == "_") else "_")
    sanitized = "".join(out)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_float(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == int(value):
        return str(int(value))
    return repr(value)


def to_prometheus(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format (0.0.4)."""
    lines: List[str] = []
    for name in registry.names():
        instrument = registry.get(name)
        prom = _prom_name(name)
        if instrument is None:  # pragma: no cover - names() is live
            continue
        if instrument.help:
            lines.append("# HELP %s %s" % (prom, instrument.help))
        if isinstance(instrument, Counter):
            lines.append("# TYPE %s counter" % prom)
            lines.append("%s_total %s" % (prom, instrument.value))
        elif isinstance(instrument, Gauge):
            lines.append("# TYPE %s gauge" % prom)
            lines.append("%s %s" % (prom, _prom_float(instrument.value)))
        elif isinstance(instrument, Histogram):
            lines.append("# TYPE %s histogram" % prom)
            for bound, cumulative in instrument.bucket_counts():
                lines.append(
                    '%s_bucket{le="%s"} %d'
                    % (prom, _prom_float(bound), cumulative)
                )
            lines.append("%s_sum %s" % (prom, _prom_float(instrument.sum)))
            lines.append("%s_count %d" % (prom, instrument.count))
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# JSON snapshot
# ---------------------------------------------------------------------------

def to_json_snapshot(
    registry: MetricsRegistry,
    recorder: Optional[SpanRecorder] = None,
) -> Dict[str, object]:
    """Registry snapshot (plus span totals when a recorder is given)
    in the shape ``benchmarks/results/*_metrics.json`` archives."""
    snapshot: Dict[str, object] = dict(registry.snapshot())
    if recorder is not None:
        snapshot["spans"] = {
            "recorded": len(recorder),
            "open": len(recorder.open_spans()),
            "by_name": [
                {"name": name, "count": count, "total_ms": total}
                for name, count, total in recorder.summary()
            ],
        }
    return snapshot


def write_json_snapshot(
    registry: MetricsRegistry,
    path: str,
    recorder: Optional[SpanRecorder] = None,
) -> None:
    """Dump :func:`to_json_snapshot` to *path* (sorted keys, so two
    runs of a deterministic benchmark produce identical bytes)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_json_snapshot(registry, recorder), handle,
                  indent=2, sort_keys=True)
        handle.write("\n")


# ---------------------------------------------------------------------------
# Reconciliation (the E18 acceptance check)
# ---------------------------------------------------------------------------

def expected_duration(recorder: SpanRecorder, span: Span) -> float:
    """The duration *implied* by a span's children under the Trace
    cost model: children sharing a ``fork_group`` attribute ran in
    parallel (contribute their max, per group); everything else ran
    sequentially (contributes its duration). A childless span explains
    itself.
    """
    children = recorder.children_of(span)
    if not children:
        return span.duration_ms
    total = 0.0
    groups: Dict[object, float] = {}
    for child in children:
        child_ms = expected_duration(recorder, child)
        group = child.attrs.get("fork_group")
        if group is None:
            total += child_ms
        else:
            groups[group] = max(groups.get(group, 0.0), child_ms)
    return total + sum(groups.values())


def reconcile(
    recorder: SpanRecorder,
    trace_id: int,
    rel_tol: float = 1e-9,
    abs_tol: float = 1e-6,
) -> List[Tuple[Span, float, float]]:
    """Check every finished span of a trace against its children's
    implied duration; return the mismatches as
    ``(span, actual_ms, expected_ms)``. Empty list == the tree fully
    explains where the time went (E18's acceptance criterion).

    Tolerances are float-telescoping slack, not a semantic fudge: a
    branch's absolute timestamps are ``base + elapsed``, and summing
    differences of those reintroduces rounding the Trace accumulator
    never sees.
    """
    mismatches: List[Tuple[Span, float, float]] = []
    for span in recorder.spans_for(trace_id):
        if not span.finished:
            continue
        expected = expected_duration(recorder, span)
        if not math.isclose(span.duration_ms, expected,
                            rel_tol=rel_tol, abs_tol=abs_tol):
            mismatches.append((span, span.duration_ms, expected))
    return mismatches
