"""Hierarchical spans over virtual time.

A :class:`Span` is one named, attributed interval on the simulator
clock — a hop across a link, a privacy-shield check, one retry sweep
of a resilience fetch, a whole chaining query. Spans nest: every span
but the root carries its parent's id, so a recorded trace reconstructs
the *tree* of where a query's latency went, which the flat
:class:`~repro.simnet.Trace` accumulator (totals only) cannot answer.

Design constraints, in order:

1. **Never perturb the simulation.** Spans carry virtual timestamps
   handed to them by the instrumented code; they never read any clock
   themselves, never round, never allocate ids from anything
   non-deterministic. With no recorder attached the instrumented code
   must not even construct them (that is the ``Trace`` layer's job —
   see the ``_rec is None`` fast paths).
2. **Parallel branches are first-class.** The ``Trace.fork()/join()``
   cost model charges the *max* of branch elapsed times; spans mirror
   that with a ``fork_group`` attribute stamped on each branch's root
   span at join time, so :func:`repro.obs.export.expected_duration`
   can reconcile a parent span against max-per-group + sequential-sum
   of its children.
3. **Cheap.** ``__slots__`` everywhere; attributes and events are
   created lazily.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "DEFAULT_MAX_SPANS", "Span", "SpanEvent", "SpanRecorder",
]

#: Default :class:`SpanRecorder` retention. Far above any single
#: experiment's span count, but finite: an always-on network with
#: tracing enabled must not accumulate spans forever.
DEFAULT_MAX_SPANS = 100_000


class SpanEvent:
    """A point-in-time annotation inside a span (a retry decision, a
    backoff expiry, a cache verdict) — exported as a Chrome "instant"
    event."""

    __slots__ = ("name", "at_ms", "attrs")

    def __init__(
        self,
        name: str,
        at_ms: float,
        attrs: Optional[Dict[str, object]] = None,
    ) -> None:
        self.name = name
        self.at_ms = at_ms
        self.attrs: Dict[str, object] = dict(attrs) if attrs else {}

    def __repr__(self) -> str:
        return "<SpanEvent %s @%.3f>" % (self.name, self.at_ms)


class Span:
    """One named interval of virtual time, with parentage and bag-of
    attributes. ``end_ms`` stays ``None`` until the span is finished;
    the span-balance gupcheck rule exists to make "never finished"
    a lint error rather than a silent hole in the export."""

    __slots__ = (
        "name", "span_id", "parent_id", "trace_id", "tid",
        "start_ms", "end_ms", "attrs", "events",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        start_ms: float,
        parent_id: Optional[int] = None,
        trace_id: int = 0,
        tid: int = 0,
        attrs: Optional[Dict[str, object]] = None,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        #: Export lane (Chrome "thread"); branches of a fork get their
        #: own lane so parallel work renders side by side.
        self.tid = tid
        self.start_ms = start_ms
        self.end_ms: Optional[float] = None
        self.attrs: Dict[str, object] = dict(attrs) if attrs else {}
        # gupcheck: bounded[span-lifetime] -- grows only while open; retention is the recorder cap
        self.events: List[SpanEvent] = []

    # -- mutation ----------------------------------------------------------

    def set(self, key: str, value: object) -> "Span":
        self.attrs[key] = value
        return self

    def event(
        self,
        name: str,
        at_ms: float,
        attrs: Optional[Dict[str, object]] = None,
    ) -> SpanEvent:
        ev = SpanEvent(name, at_ms, attrs)
        self.events.append(ev)
        return ev

    # -- reading -----------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.end_ms is not None

    @property
    def duration_ms(self) -> float:
        """Virtual duration; 0 for an unfinished span (exporters treat
        those as degenerate instants rather than crashing)."""
        if self.end_ms is None:
            return 0.0
        return self.end_ms - self.start_ms

    def __repr__(self) -> str:
        state = (
            "%.3f" % self.duration_ms if self.finished else "open"
        )
        return "<Span %s#%d %s>" % (self.name, self.span_id, state)


class SpanRecorder:
    """The sink spans are written into.

    One recorder serves a whole :class:`~repro.simnet.Network`; each
    top-level :class:`~repro.simnet.Trace` allocates a fresh
    ``trace_id`` so the recorder can hold many queries' trees at once
    (and the Chrome export renders each as its own "process").

    Ids are dense integers allocated in creation order — fully
    deterministic, and doubling as a stable sort key for exports.
    """

    __slots__ = (
        "spans", "max_spans", "dropped",
        "_next_span_id", "_next_trace_id", "_next_tid",
    )

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        if max_spans <= 0:
            raise ValueError("max_spans must be positive")
        self.spans: List[Span] = []
        #: Retention cap: starting a span past it evicts the oldest
        #: *finished* spans. Open spans are never evicted — they are
        #: still being written to and ``open_spans`` must see them.
        self.max_spans = max_spans
        #: Finished spans evicted by the retention cap.
        self.dropped = 0
        self._next_span_id = 1
        self._next_trace_id = 1
        self._next_tid = 1

    # -- id allocation -----------------------------------------------------

    def new_trace_id(self) -> int:
        trace_id = self._next_trace_id
        self._next_trace_id += 1
        return trace_id

    def next_tid(self) -> int:
        """A fresh export lane (for a fork branch)."""
        tid = self._next_tid
        self._next_tid += 1
        return tid

    # -- recording ---------------------------------------------------------

    def start(
        self,
        name: str,
        start_ms: float,
        parent_id: Optional[int] = None,
        trace_id: int = 0,
        tid: int = 0,
        attrs: Optional[Dict[str, object]] = None,
    ) -> Span:
        span = Span(
            name,
            self._next_span_id,
            start_ms,
            parent_id=parent_id,
            trace_id=trace_id,
            tid=tid,
            attrs=attrs,
        )
        self._next_span_id += 1
        self.spans.append(span)
        if len(self.spans) > self.max_spans:
            self._evict()
        return span

    def _evict(self) -> None:
        """Drop the oldest *finished* spans down to ``max_spans``.
        When more than ``max_spans`` spans are simultaneously open
        the list can exceed the cap — open spans are never dropped,
        and every one of them is finished (or leaked, which the
        span-balance rule catches) in bounded time."""
        overflow = len(self.spans) - self.max_spans
        doomed: set = set()
        for span in self.spans:
            if len(doomed) >= overflow:
                break
            if span.finished:
                doomed.add(span.span_id)
        if not doomed:
            return
        self.spans = [
            s for s in self.spans if s.span_id not in doomed
        ]
        self.dropped += len(doomed)

    def finish(self, span: Span, end_ms: float) -> Span:
        if span.end_ms is not None:
            raise ValueError("span %r already finished" % span.name)
        if end_ms < span.start_ms:
            raise ValueError(
                "span %r would end (%.3f) before it starts (%.3f)"
                % (span.name, end_ms, span.start_ms)
            )
        span.end_ms = end_ms
        return span

    def leaf(
        self,
        name: str,
        start_ms: float,
        end_ms: float,
        parent_id: Optional[int] = None,
        trace_id: int = 0,
        tid: int = 0,
        attrs: Optional[Dict[str, object]] = None,
    ) -> Span:
        """Record an already-elapsed interval (a hop, a compute charge)
        in one call — start and finish, no open state to balance."""
        span = self.start(
            name, start_ms,
            parent_id=parent_id, trace_id=trace_id, tid=tid, attrs=attrs,
        )
        span.end_ms = end_ms
        return span

    # -- reading -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    def spans_for(self, trace_id: int) -> List[Span]:
        return [s for s in self.spans if s.trace_id == trace_id]

    def roots(self, trace_id: Optional[int] = None) -> List[Span]:
        return [
            s for s in self.spans
            if s.parent_id is None
            and (trace_id is None or s.trace_id == trace_id)
        ]

    def children_of(self, span: Span) -> List[Span]:
        return [
            s for s in self.spans
            if s.parent_id == span.span_id
            and s.trace_id == span.trace_id
        ]

    def open_spans(self) -> List[Span]:
        """Spans never finished — should be empty after any query; the
        E18 benchmark asserts this."""
        return [s for s in self.spans if s.end_ms is None]

    def clear(self) -> None:
        """Drop recorded spans (id counters keep running, so ids stay
        unique across a benchmark's phases)."""
        del self.spans[:]

    def trace_ids(self) -> List[int]:
        seen: Dict[int, None] = {}
        for span in self.spans:
            seen.setdefault(span.trace_id, None)
        return sorted(seen)

    def summary(self) -> List[Tuple[str, int, float]]:
        """(name, count, total duration) per span name, sorted by
        total duration descending — the quick "where did it go" table
        the E18 report prints."""
        totals: Dict[str, Tuple[int, float]] = {}
        for span in self.spans:
            count, total = totals.get(span.name, (0, 0.0))
            totals[span.name] = (count + 1, total + span.duration_ms)
        return sorted(
            ((name, count, total)
             for name, (count, total) in totals.items()),
            key=lambda row: (-row[2], row[0]),
        )

    def __repr__(self) -> str:
        return "<SpanRecorder %d span(s)>" % len(self.spans)
