"""repro.obs — the observability layer (E18).

Hierarchical spans over virtual time (:mod:`repro.obs.spans`), a
metrics registry of named counters/gauges/histograms
(:mod:`repro.obs.metrics`), and exporters for Chrome trace-event
JSON, Prometheus text, and JSON snapshots (:mod:`repro.obs.export`).

The layer is strictly *under* the simulation: disabled (no recorder
attached, the default) it costs nothing and changes nothing — the
golden-latency gate in ``tests/test_obs_determinism.py`` holds the
sampled latencies of the E1/E7/E16 reference streams bit-identical
to their pre-observability fixtures.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.spans import Span, SpanEvent, SpanRecorder
from repro.obs.export import (
    expected_duration,
    reconcile,
    to_chrome_trace,
    to_json_snapshot,
    to_prometheus,
    write_chrome_trace,
    write_json_snapshot,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanEvent",
    "SpanRecorder",
    "expected_duration",
    "reconcile",
    "to_chrome_trace",
    "to_json_snapshot",
    "to_prometheus",
    "write_chrome_trace",
    "write_json_snapshot",
]
