"""Wall-clock spans next to the virtual ones (ROADMAP item 2).

The virtual-time span layer (:mod:`repro.obs.spans`) deliberately
never reads a clock — simulated code hands it virtual timestamps. The
serving layer needs the *same span tree shape* over real time, so this
module adds the one missing ingredient: a monotonic millisecond clock
(:class:`WallClock`), plus :class:`WallSpanScope`, the per-request
span-stack helper the real-transport driver uses where the simnet
driver uses ``Trace.span``.

Everything still writes into a plain
:class:`~repro.obs.spans.SpanRecorder`, so every exporter (Chrome
trace, summaries) works unchanged on wall-clock trees — the sim-vs-
real calibration in ``bench_e21_wire.py`` leans on exactly that.

:class:`ManualClock` is the deterministic stand-in for tests: wall
code paths can be exercised without real sleeps or flaky timing.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.obs.spans import Span, SpanRecorder

__all__ = [
    "Clock",
    "ManualClock",
    "NULL_SPAN_SCOPE",
    "NullSpanScope",
    "WallClock",
    "WallSpanScope",
]


class Clock:
    """Anything with a monotonic ``now_ms``."""

    def now_ms(self) -> float:  # pragma: no cover - interface
        raise NotImplementedError


class WallClock(Clock):
    """Monotonic wall time in milliseconds since construction."""

    __slots__ = ("_t0",)

    def __init__(self) -> None:
        self._t0 = time.perf_counter()

    def now_ms(self) -> float:
        return (time.perf_counter() - self._t0) * 1000.0


class ManualClock(Clock):
    """A clock tests advance by hand — wall code paths without wall
    time."""

    __slots__ = ("_now_ms",)

    def __init__(self, start_ms: float = 0.0) -> None:
        self._now_ms = start_ms

    def now_ms(self) -> float:
        return self._now_ms

    def advance(self, ms: float) -> float:
        if ms < 0:
            raise ValueError("clocks only move forward")
        self._now_ms += ms
        return self._now_ms


class NullSpanScope:
    """The free no-op scope used when no recorder is attached."""

    __slots__ = ()

    def open(
        self, name: str, attrs: Optional[Dict[str, object]] = None
    ) -> None:
        return None

    def set(self, key: str, value: object) -> None:
        return None

    def close(self) -> None:
        return None

    def unwind(self) -> None:
        return None

    def fork_child(self) -> "NullSpanScope":
        return self


NULL_SPAN_SCOPE = NullSpanScope()


class WallSpanScope:
    """A span stack over real time — the wall twin of the nesting the
    simnet driver gets from ``Trace.span(...)`` context managers.

    One scope covers one request (one ``trace_id``); each fork leg
    gets a :meth:`fork_child` scope sharing the trace id but running
    on its own lane (``tid``), mirroring how virtual fork branches
    render side by side in the Chrome export."""

    __slots__ = (
        "recorder", "clock", "trace_id", "tid", "_stack", "_parent_id",
    )

    def __init__(
        self,
        recorder: SpanRecorder,
        clock: Clock,
        trace_id: Optional[int] = None,
        tid: int = 0,
        parent: Optional[Span] = None,
    ) -> None:
        self.recorder = recorder
        self.clock = clock
        self.trace_id = (
            recorder.new_trace_id() if trace_id is None else trace_id
        )
        self.tid = tid
        #: The borrowed parent (a fork child's enclosing span) is an
        #: id only — this scope must never close it.
        self._parent_id = parent.span_id if parent is not None else None
        self._stack: List[Span] = []

    def open(
        self, name: str, attrs: Optional[Dict[str, object]] = None
    ) -> Span:
        parent_id = (
            self._stack[-1].span_id if self._stack else self._parent_id
        )
        span = self.recorder.start(
            name,
            self.clock.now_ms(),
            parent_id=parent_id,
            trace_id=self.trace_id,
            tid=self.tid,
            attrs=attrs,
        )
        self._stack.append(span)
        return span

    def set(self, key: str, value: object) -> None:
        if self._stack:
            self._stack[-1].set(key, value)

    def close(self) -> None:
        span = self._stack.pop()
        self.recorder.finish(span, self.clock.now_ms())

    def unwind(self) -> None:
        """Close every span this scope still has open (error paths);
        a fork child's borrowed parent is not on the stack and stays
        untouched."""
        while self._stack:
            span = self._stack.pop()
            if span.end_ms is None:
                self.recorder.finish(span, self.clock.now_ms())

    def fork_child(self) -> "WallSpanScope":
        return WallSpanScope(
            self.recorder,
            self.clock,
            trace_id=self.trace_id,
            tid=self.recorder.next_tid(),
            parent=self._stack[-1] if self._stack else None,
        )
