"""The metrics registry: named counters, gauges and histograms.

Before this module, operational counters were scattered as ad-hoc
integer attributes across :class:`~repro.simnet.ResilienceCounters`,
:class:`~repro.core.cache.ComponentCache` and
:class:`~repro.core.resilience.EndpointHealth` — each with its own
reset/reporting conventions, none exportable, and (as the E18 audit
showed) each hiding at least one accounting bug. The registry gives
every instrument a **name** in a dotted scheme (``net.retries``,
``cache.hits``, ``health.successes``, ``sub.delivery_latency_ms``), a
single snapshot/export surface (:mod:`repro.obs.export`), and — for
histograms — fixed buckets windowed on **virtual** time (the simulator
clock; nothing here ever reads the wall clock, per the determinism
rule).

The pre-existing attribute APIs (``cache.hits``,
``counters.retries``…) survive as *views*: properties reading the
registry-backed instrument, so every caller and test written against
the old counters keeps working unchanged.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "CounterView",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_MS",
]

#: Default fixed buckets for latency histograms (ms, virtual time).
DEFAULT_LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0,
)


class Counter:
    """A monotonically *usable* counter (reset/set exist only to back
    the legacy attribute views, which the old code wrote directly)."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        self._value += amount

    def set(self, value: int) -> None:
        """Legacy-view escape hatch (``counters.retries = 0``)."""
        self._value = value

    def reset(self) -> None:
        self._value = 0

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return "<Counter %s=%d>" % (self.name, self._value)


class Gauge:
    """A point-in-time value; optionally computed by a callback (e.g.
    live cache size), so the exporter always sees the truth without the
    instrumented object having to update the gauge on every mutation."""

    __slots__ = ("name", "help", "_value", "_fn")

    def __init__(
        self,
        name: str,
        help: str = "",
        fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ValueError("gauge %s is callback-backed" % self.name)
        self._value = value

    def bind(self, fn: Optional[Callable[[], float]]) -> None:
        """(Re)attach the value callback — used when an instrumented
        object re-homes onto a shared registry and must take over an
        existing gauge name."""
        self._fn = fn

    def inc(self, amount: float = 1.0) -> None:
        self.set(self._value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self._value - amount)

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value

    def reset(self) -> None:
        if self._fn is None:
            self._value = 0.0

    def __repr__(self) -> str:
        return "<Gauge %s=%s>" % (self.name, self.value)


class Histogram:
    """Fixed-bucket histogram over virtual time.

    ``buckets`` are inclusive upper bounds in ascending order; an
    implicit +inf bucket catches the rest. :meth:`observe` takes the
    observation *and* (optionally) the virtual timestamp it happened
    at; :meth:`reset_window` closes the current window (returning its
    snapshot) and starts a new one at the given virtual instant —
    that is how a benchmark reports per-phase latency distributions
    without a wall clock anywhere.
    """

    __slots__ = ("name", "help", "buckets", "_counts", "_sum", "_count",
                 "window_start_ms", "last_observed_at_ms")

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
        help: str = "",
    ) -> None:
        if not buckets:
            raise ValueError("histogram needs at least one bucket")
        ordered = tuple(sorted(float(b) for b in buckets))
        if len(set(ordered)) != len(ordered):
            raise ValueError("duplicate bucket bounds")
        self.name = name
        self.help = help
        self.buckets = ordered
        self._counts = [0] * (len(ordered) + 1)
        self._sum = 0.0
        self._count = 0
        #: Virtual instant the current window opened.
        self.window_start_ms = 0.0
        #: Virtual instant of the latest observation (for windowing).
        self.last_observed_at_ms = 0.0

    def observe(self, value: float, now: Optional[float] = None) -> None:
        index = bisect_left(self.buckets, value)
        self._counts[index] += 1
        self._sum += value
        self._count += 1
        if now is not None and now > self.last_observed_at_ms:
            self.last_observed_at_ms = now

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """(upper bound, cumulative count) pairs, Prometheus-style,
        ending with (+inf, total)."""
        pairs: List[Tuple[float, int]] = []
        cumulative = 0
        for bound, count in zip(self.buckets, self._counts):
            cumulative += count
            pairs.append((bound, cumulative))
        pairs.append((float("inf"), self._count))
        return pairs

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket containing the q-quantile (the
        standard fixed-bucket approximation); 0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        if not self._count:
            return 0.0
        target = q * self._count
        cumulative = 0
        for bound, count in zip(self.buckets, self._counts):
            cumulative += count
            if cumulative >= target:
                return bound
        return float("inf")

    def reset_window(self, now: float) -> Dict[str, object]:
        """Close the current window: return its snapshot and zero the
        histogram, stamping the new window's virtual start."""
        snapshot = self.to_dict()
        snapshot["window_start_ms"] = self.window_start_ms
        snapshot["window_end_ms"] = now
        self._counts = [0] * (len(self.buckets) + 1)
        self._sum = 0.0
        self._count = 0
        self.window_start_ms = now
        return snapshot

    def reset(self) -> None:
        self.reset_window(0.0)
        self.window_start_ms = 0.0
        self.last_observed_at_ms = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self._count,
            "sum": self._sum,
            "mean": self.mean,
            "buckets": {
                ("+inf" if bound == float("inf") else repr(bound)): n
                for bound, n in self.bucket_counts()
            },
        }

    def __repr__(self) -> str:
        return "<Histogram %s n=%d mean=%.2f>" % (
            self.name, self._count, self.mean,
        )


#: Any registered instrument.
Instrument = Union[Counter, Gauge, Histogram]


class CounterView:
    """Descriptor exposing a registry counter as a plain ``int``
    attribute — how the pre-registry accounting APIs
    (``cache.hits``, ``counters.retries``, ``health`` totals…) stay
    source-compatible: reads come from the instrument, writes
    (``cache.hits = 0`` in old tests) pass through to it.

    The host object must expose its registry under *registry_attr*
    (default ``"metrics"``)."""

    __slots__ = ("_metric", "_registry_attr")

    def __init__(self, metric: str, registry_attr: str = "metrics") -> None:
        self._metric = metric
        self._registry_attr = registry_attr

    def _registry(self, obj: object) -> "MetricsRegistry":
        registry = getattr(obj, self._registry_attr)
        assert isinstance(registry, MetricsRegistry)
        return registry

    def __get__(self, obj: object, objtype: object = None) -> int:
        if obj is None:
            raise AttributeError(self._metric)
        return self._registry(obj).counter(self._metric).value

    def __set__(self, obj: object, value: int) -> None:
        self._registry(obj).counter(self._metric).set(value)


class MetricsRegistry:
    """Name → instrument, with get-or-create semantics.

    Re-requesting a name returns the existing instrument (so views and
    exporters share state); re-requesting it as a *different kind* is a
    programming error and raises.
    """

    def __init__(self) -> None:
        # gupcheck: bounded[metric-vocab] -- keyed by metric name; the vocabulary is static code
        self._instruments: Dict[str, Instrument] = {}

    def _get_or_create(
        self, name: str, kind: type, factory: Callable[[], Instrument]
    ) -> Instrument:
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise ValueError(
                    "metric %r already registered as %s"
                    % (name, type(existing).__name__)
                )
            return existing
        instrument = factory()
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        instrument = self._get_or_create(
            name, Counter, lambda: Counter(name, help)
        )
        assert isinstance(instrument, Counter)
        return instrument

    def gauge(
        self,
        name: str,
        help: str = "",
        fn: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        instrument = self._get_or_create(
            name, Gauge, lambda: Gauge(name, help, fn)
        )
        assert isinstance(instrument, Gauge)
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
        help: str = "",
    ) -> Histogram:
        instrument = self._get_or_create(
            name, Histogram, lambda: Histogram(name, buckets, help)
        )
        assert isinstance(instrument, Histogram)
        return instrument

    # -- introspection ------------------------------------------------------

    def get(self, name: str) -> Optional[Instrument]:
        return self._instruments.get(name)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def reset(self) -> None:
        """Zero every instrument (callback gauges are left alone)."""
        for instrument in self._instruments.values():
            instrument.reset()

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """The JSON-ready state of every instrument, sorted by name —
        the format ``benchmarks/results/*_metrics.json`` records."""
        counters: Dict[str, object] = {}
        gauges: Dict[str, object] = {}
        histograms: Dict[str, object] = {}
        for name in self.names():
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                counters[name] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[name] = instrument.value
            else:
                histograms[name] = instrument.to_dict()
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def __repr__(self) -> str:
        return "<MetricsRegistry %d instrument(s)>" % len(self)
