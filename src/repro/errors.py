"""Exception hierarchy for the GUPster reproduction.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class. Sub-hierarchies mirror the major
subsystems (data model, coverage, access control, synchronization, ...).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - annotation-only, avoids a cycle
    from repro.core.resilience import PartStatus


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# --------------------------------------------------------------------------
# Profile XML data model
# --------------------------------------------------------------------------

class PXMLError(ReproError):
    """Base class for profile-XML data model errors."""


class ParseError(PXMLError):
    """Raised when XML text or an XPath expression cannot be parsed."""

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class PathSyntaxError(ParseError):
    """Raised when an XPath fragment expression is syntactically invalid."""


class UnsupportedPathError(PXMLError):
    """Raised when a path uses features outside the supported fragment."""


class SchemaError(PXMLError):
    """Raised when a document violates the GUP schema."""


class MergeConflictError(PXMLError):
    """Raised when a merge cannot reconcile two nodes under the policy."""


class ModelError(PXMLError, ValueError):
    """Raised when a profile-XML node or path is constructed or mutated
    inconsistently (invalid names, mixed content, out-of-range slices).

    Also subclasses :class:`ValueError` so pre-existing callers that
    caught the old bare ``ValueError`` keep working; new code should
    catch :class:`PXMLError`/:class:`ReproError` (the total surface the
    ``exception-totality`` gupcheck rule guarantees)."""


# --------------------------------------------------------------------------
# Stores / adapters / network
# --------------------------------------------------------------------------

class StoreError(ReproError):
    """Base class for native data-store errors."""


class UnknownSubscriberError(StoreError):
    """Raised when a store has no record for the requested subscriber."""


class ProvisioningDeniedError(StoreError):
    """Raised when a store rejects a provisioning operation (e.g. a PSTN
    switch that only accepts operator-initiated provisioning)."""


class AdapterError(ReproError):
    """Raised when a GUP adapter cannot translate a native record."""


class NetworkError(ReproError):
    """Base class for simulated-network errors."""


class NodeUnreachableError(NetworkError):
    """Raised when a message is sent to a failed or unknown node."""


class PacketLossError(NetworkError):
    """Raised when a message is dropped by injected link packet loss.

    Unlike :class:`NodeUnreachableError` (the endpoint is *down*), this
    is a transient fault: retrying the same endpoint after a backoff is
    a sensible recovery strategy."""


class TimeoutError_(NetworkError):
    """Raised when a simulated request exceeds its deadline."""


class PartialResultError(NetworkError):
    """Raised when every part of a degradable query failed — there is
    nothing to return, not even a partial merge. Carries the per-part
    status report assembled before giving up."""

    def __init__(
        self, message: str,
        part_status: Optional[Sequence["PartStatus"]] = None,
    ) -> None:
        super().__init__(message)
        self.part_status = list(part_status or [])


# --------------------------------------------------------------------------
# GUPster core
# --------------------------------------------------------------------------

class GupsterError(ReproError):
    """Base class for GUPster server errors."""


class CoverageError(GupsterError):
    """Raised on invalid coverage registrations."""


class NoCoverageError(GupsterError):
    """Raised when no registered store covers the requested component."""


class ResyncRequiredError(CoverageError):
    """Raised when a change-feed cursor has fallen behind the retained
    revision window and the subscriber must perform a full resync.

    A distinct subclass (rather than a bare :class:`CoverageError`) so
    transports can map it deliberately — HTTP serves it as 410 Gone,
    telling the client its cursor is unrecoverable, instead of a
    generic server error."""


class AccessDeniedError(GupsterError):
    """Raised when the privacy shield denies a request."""


class SignatureError(GupsterError):
    """Raised when a signed query fails verification at a data store."""


class StaleQueryError(SignatureError):
    """Raised when a signed query's timestamp is outside the freshness
    window accepted by the data store."""


class PolicyError(GupsterError):
    """Raised on malformed access-control policies."""


# --------------------------------------------------------------------------
# Federation (E22)
# --------------------------------------------------------------------------

class FederationError(ReproError):
    """Base class for GUP <-> foreign-directory federation errors."""


class ForeignUnavailableError(StoreError):
    """Raised when the foreign directory is offline (its own outage
    switch — distinct from a simulated-network node failure, which
    surfaces as :class:`NodeUnreachableError` on the wire)."""


class ForeignResyncRequiredError(FederationError):
    """Raised when a reconciler's change cursor has fallen behind the
    foreign directory's retained USN window: the incremental journal
    can no longer replay the gap and the reconciler must run a full
    state resync instead of silently syncing an incomplete feed."""


# --------------------------------------------------------------------------
# Synchronization / provisioning
# --------------------------------------------------------------------------

class SyncError(ReproError):
    """Base class for synchronization errors."""


class AnchorMismatchError(SyncError):
    """Raised when sync anchors do not line up and a slow sync is needed."""


class ValidationError(ReproError):
    """Raised when provisioning input violates schema constraints."""
