"""``python -m repro.serve [host] [port]`` — boot the demo world."""

import asyncio
import sys

from repro.serve.app import serve_forever


def main() -> None:
    """CLI entry point: ``python -m repro.serve [host [port]]``."""
    host = sys.argv[1] if len(sys.argv) > 1 else "127.0.0.1"
    port = int(sys.argv[2]) if len(sys.argv) > 2 else 8080
    try:
        asyncio.run(serve_forever(host, port))
    except KeyboardInterrupt:
        pass


if __name__ == "__main__":
    main()
