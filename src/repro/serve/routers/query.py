"""GET ``/v1/query`` — the server-mediated read patterns over HTTP.

The handler is thin by design: parse the path, build the shield
context from the identity headers, pick the Section 5.2 pattern
(``chaining`` or ``cached``), and hand the *same* sans-io program the
simulator runs to the :class:`~repro.serve.transport.WallTransport`.
All protocol behaviour — retry sweeps, failover order, degradation,
cache shield re-checks — lives in :mod:`repro.sansio.engine`; nothing
here may duplicate it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import UnsupportedPathError
from repro.pxml import parse_path
from repro.sansio.engine import QueryOutcome
from repro.serve.http import Request, Response
from repro.serve.middleware import context_from_headers

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.app import ServeWorld

__all__ = ["QueryRouter"]

_PATTERNS = ("chaining", "cached")


class QueryRouter:
    """Routes ``GET /v1/query`` to the sans-io query engine.

    Maps the ``pattern`` query parameter to an engine program
    (chaining or cached), runs it on the app's ``WallTransport``, and
    shapes the outcome into the JSON response envelope.
    """

    def __init__(self, world: "ServeWorld") -> None:
        self.world = world

    async def handle(self, request: Request) -> Response:
        raw_path = request.params.get("path")
        if not raw_path:
            raise UnsupportedPathError(
                "query needs a ?path=<xpath> parameter"
            )
        pattern = request.params.get("pattern", "chaining")
        if pattern not in _PATTERNS:
            raise UnsupportedPathError(
                "unknown query pattern %r (expected one of %s)"
                % (pattern, ", ".join(_PATTERNS))
            )
        if (
            pattern == "cached"
            and self.world.server.cache is None
        ):
            raise UnsupportedPathError(
                "server has no cache configured; use pattern=chaining"
            )
        path = parse_path(raw_path)
        context = context_from_headers(request)
        world = self.world
        now = world.now_ms()
        engine = world.engine
        program = (
            engine.cached(world.client_node, path, context, now)
            if pattern == "cached"
            else engine.chain(world.client_node, path, context, now)
        )
        outcome: QueryOutcome = await world.transport.run(program)
        fragment = outcome.fragment
        return Response.json({
            "path": str(path),
            "pattern": pattern,
            "fragment": (
                fragment.serialize() if fragment is not None else None
            ),
            "cache_hit": outcome.hit,
            "stale": outcome.stale,
            "degraded_parts": [
                str(s.path) for s in outcome.statuses if not s.ok
            ],
        })
