"""``/v1/subscriptions`` — change-bus subscriptions over HTTP.

HTTP is pull-shaped, the bus is push-shaped; the bridge is a
server-side :class:`~repro.bus.RecordingListener` per subscription:

* ``POST /v1/subscriptions`` body ``{"watch_path": "..."}`` attaches a
  listener (cursor starts at the log head — changes from now on) and
  returns its id;
* ``GET /v1/subscriptions/<id>`` drains the records delivered since
  the last poll;
* ``DELETE /v1/subscriptions/<id>`` detaches it.

The subscription count is bounded (``max_subscriptions``) — each one
holds a bus cursor and a retention window, and an HTTP client that
never comes back must not grow server state forever. 429 tells the
caller the table is full.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Dict

from repro.bus import RecordingListener
from repro.errors import UnsupportedPathError, ValidationError
from repro.serve.http import Request, Response

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.app import ServeWorld

__all__ = ["SubscriptionRouter"]


class _Subscription:
    __slots__ = ("sub_id", "watch_path", "listener", "drained")

    def __init__(
        self, sub_id: int, watch_path: str, listener: RecordingListener
    ) -> None:
        self.sub_id = sub_id
        self.watch_path = watch_path
        self.listener = listener
        #: How many of ``listener.received`` earlier polls consumed.
        self.drained = 0


class SubscriptionRouter:
    """CRUD for change-bus subscriptions plus delivery polling.

    Holds a bounded table of live subscriptions; each maps a
    subscriber identity to a bus cursor whose deliveries are drained
    by the background jobs and collected via ``GET .../deliveries``.
    """

    def __init__(
        self, world: "ServeWorld", max_subscriptions: int = 256
    ) -> None:
        self.world = world
        self.max_subscriptions = max_subscriptions
        self._ids = itertools.count(1)
        self._table: Dict[int, _Subscription] = {}

    # -- dispatch -----------------------------------------------------------

    async def handle(self, request: Request) -> Response:
        tail = request.path[len("/v1/subscriptions"):].strip("/")
        if not tail:
            if request.method == "POST":
                return self._create(request)
            return Response.json(
                {"error": "method-not-allowed",
                 "detail": "use POST to subscribe"},
                status=405,
            )
        try:
            sub_id = int(tail)
        except ValueError as err:
            raise ValidationError(
                "subscription ids are integers, got %r" % tail
            ) from err
        sub = self._table.get(sub_id)
        if sub is None:
            return Response.json(
                {"error": "unknown-subscription", "detail": tail},
                status=404,
            )
        if request.method == "GET":
            return self._poll(sub)
        if request.method == "DELETE":
            return self._cancel(sub)
        return Response.json(
            {"error": "method-not-allowed",
             "detail": "use GET to poll or DELETE to cancel"},
            status=405,
        )

    # -- operations ---------------------------------------------------------

    def _create(self, request: Request) -> Response:
        if self.world.bus is None:
            raise UnsupportedPathError(
                "this world runs no change bus; subscriptions are "
                "unavailable"
            )
        payload = request.json()
        if not isinstance(payload, dict):
            raise ValidationError("subscribe body must be an object")
        watch_path = payload.get("watch_path", "")
        if not isinstance(watch_path, str) or not watch_path:
            raise ValidationError(
                "subscribe body needs a 'watch_path'"
            )
        if len(self._table) >= self.max_subscriptions:
            return Response.json(
                {
                    "error": "too-many-subscriptions",
                    "detail": "subscription table is full (%d)"
                              % self.max_subscriptions,
                },
                status=429,
            )
        sub_id = next(self._ids)
        listener = _WatchingListener(
            "http-sub-%d" % sub_id, watch_path
        )
        self.world.bus.attach(listener)
        self._table[sub_id] = _Subscription(
            sub_id, watch_path, listener
        )
        return Response.json(
            {"id": sub_id, "watch_path": watch_path}, status=201
        )

    def _poll(self, sub: _Subscription) -> Response:
        listener = sub.listener
        # The retention window may have evicted records an earlier
        # poll never saw; surface that as `missed`, not silence.
        evicted = listener.dropped
        start = max(0, sub.drained - evicted)
        fresh = listener.received[start:]
        missed = max(0, evicted - sub.drained)
        sub.drained = evicted + len(listener.received)
        return Response.json({
            "id": sub.sub_id,
            "watch_path": sub.watch_path,
            "missed": missed,
            "deliveries": [
                {
                    "seq": record.seq,
                    "at": record.at,
                    "path": record.path,
                    "value": record.value,
                    "user_id": record.user_id,
                }
                for record in fresh
            ],
        })

    def _cancel(self, sub: _Subscription) -> Response:
        assert self.world.bus is not None
        self.world.bus.detach(sub.listener)
        del self._table[sub.sub_id]
        return Response.json({"id": sub.sub_id, "cancelled": True})

    def active_count(self) -> int:
        return len(self._table)


class _WatchingListener(RecordingListener):
    """A recording listener that only wants records under its watch
    path (plain string-prefix containment — the bus's own subscriber
    listeners do full shield enforcement; the HTTP bridge filters,
    the poller's shield check happened at subscribe time)."""

    def __init__(self, name: str, watch_path: str) -> None:
        super().__init__(name, node=None)
        self.watch_path = watch_path

    def wants(self, record: object) -> bool:
        path = getattr(record, "path", "")
        return path.startswith(self.watch_path)
