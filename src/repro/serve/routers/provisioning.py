"""POST ``/v1/provision`` — the enter-once write over HTTP.

Body: ``{"path": "<xpath>", "fragment": "<profile xml>"}``. The
fragment is parsed, fanned out through the sans-io ``provision``
program (resolve-for-update, per-store slicing, signed writes), and —
when the world runs a change bus — published as a change so caches,
mirrors and subscribers ride the same wave the simulated worlds do.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ValidationError
from repro.pxml import parse, parse_path
from repro.serve.http import Request, Response
from repro.serve.middleware import context_from_headers

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.app import ServeWorld

__all__ = ["ProvisioningRouter"]


class ProvisioningRouter:
    """Routes ``POST /v1/provision`` to the provisioner.

    Enter-once writes: the JSON body names a profile path and a pxml
    fragment, which is parsed and written through the provisioner
    under the caller's identity context.
    """

    def __init__(self, world: "ServeWorld") -> None:
        self.world = world

    async def handle(self, request: Request) -> Response:
        payload = request.json()
        if not isinstance(payload, dict):
            raise ValidationError("provision body must be an object")
        raw_path = payload.get("path")
        raw_fragment = payload.get("fragment")
        if not isinstance(raw_path, str) or not raw_path:
            raise ValidationError("provision body needs a 'path'")
        if not isinstance(raw_fragment, str) or not raw_fragment:
            raise ValidationError(
                "provision body needs a 'fragment' (profile XML)"
            )
        path = parse_path(raw_path)
        fragment = parse(raw_fragment)
        context = context_from_headers(request)
        world = self.world
        now = world.now_ms()
        await world.transport.run(
            world.engine.provision(
                world.client_node, path, fragment, context, now
            )
        )
        if world.bus is not None:
            world.bus.append(
                str(path), fragment.serialize(),
                user_id=path.user_id(),
            )
        return Response.json(
            {"ok": True, "path": str(path)}, status=201
        )
