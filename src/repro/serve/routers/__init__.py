"""Route handlers for the serving layer, one module per concern:

* :mod:`repro.serve.routers.query` — GET ``/v1/query`` (chaining and
  cached patterns over the sans-io engine);
* :mod:`repro.serve.routers.provisioning` — POST ``/v1/provision``
  (the enter-once write fan-out);
* :mod:`repro.serve.routers.subscription` — ``/v1/subscriptions``
  (cursor-backed change-bus subscriptions).
"""

from repro.serve.routers.provisioning import ProvisioningRouter
from repro.serve.routers.query import QueryRouter
from repro.serve.routers.subscription import SubscriptionRouter

__all__ = ["ProvisioningRouter", "QueryRouter", "SubscriptionRouter"]
