"""Request middleware: the onion around every route handler.

Order (outermost first) is load-bearing:

1. **Error mapping** — any :class:`~repro.errors.ReproError` becomes
   the deliberate JSON status from :mod:`repro.serve.status`; any
   other exception becomes an opaque 500. A traceback never reaches
   the wire in either case (satellite: no internal exception leaks).
2. **Request context** — one :class:`RequestSpanContext` per request:
   a request id, a wall-clock span tree scoped to the request
   (shield/span scoping), latency + status metrics.
3. **Admission** — the bounded-queue gate; shed requests get 503 +
   ``Retry-After`` *before* any protocol work happens.

Routers then read the caller's identity from ``X-Requester`` /
``X-Relationship`` / ``X-Purpose`` / ``X-Hour`` / ``X-Weekday``
headers via :func:`context_from_headers` — the privacy shield
evaluates the *claimed* requester exactly as the simulated worlds do
(GUPster's trust model authenticates at the transport edge; the repro
keeps that edge explicit and unauthenticated).
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.access.context import RequestContext
from repro.errors import PolicyError, ReproError
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanRecorder
from repro.obs.wallclock import (
    NULL_SPAN_SCOPE,
    Clock,
    WallClock,
    WallSpanScope,
)
from repro.serve.admission import AdmissionGate, AdmissionRejected
from repro.serve.http import (
    Handler,
    HttpProtocolError,
    Request,
    Response,
)
from repro.serve.status import status_for

__all__ = [
    "RequestPipeline",
    "context_from_headers",
    "error_payload",
]

#: Wall latency buckets (ms) — wider than the virtual defaults since
#: real scheduling noise lives here.
WALL_LATENCY_BUCKETS_MS = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0,
)


def error_payload(error: BaseException) -> Response:
    """The JSON body an error is served as. Message text comes from
    the exception (our own, deliberately phrased diagnostics); the
    traceback and any non-Repro internals stay inside the process."""
    if isinstance(error, HttpProtocolError):
        # Protocol errors carry their own status (413 for oversized
        # bodies, 400 otherwise) — they are about the bytes on the
        # wire, not the profile network.
        return Response.json(
            {"error": "protocol", "detail": str(error)},
            status=error.status,
        )
    status, slug = status_for(error)
    if isinstance(error, ReproError):
        detail = str(error)
    else:
        # Internal bug: the class name is as much as the wire gets.
        detail = "internal error (%s)" % type(error).__name__
    return Response.json(
        {"error": slug, "detail": detail}, status=status
    )


def context_from_headers(request: Request) -> RequestContext:
    """Build the shield's :class:`RequestContext` from the identity
    headers; malformed values surface as
    :class:`~repro.errors.PolicyError` (mapped to 400)."""
    requester = request.headers.get("x-requester", "anonymous")
    relationship = request.headers.get("x-relationship", "third-party")
    purpose = request.headers.get("x-purpose", "query")
    try:
        hour = int(request.headers.get("x-hour", "12"))
        weekday = int(request.headers.get("x-weekday", "0"))
    except ValueError as err:
        raise PolicyError("bad context header: %s" % err) from err
    return RequestContext(
        requester,
        relationship=relationship,
        purpose=purpose,
        hour=hour,
        weekday=weekday,
    )


class RequestPipeline:
    """Wraps a route handler in the error/span/metrics/admission
    onion; the result is still a plain :class:`Handler`."""

    def __init__(
        self,
        gate: Optional[AdmissionGate] = None,
        recorder: Optional[SpanRecorder] = None,
        clock: Optional[Clock] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.gate = gate
        self.recorder = recorder
        self.clock = clock if clock is not None else WallClock()
        self.metrics = (
            metrics if metrics is not None else MetricsRegistry()
        )
        self.metrics.counter(
            "serve.requests", help="Requests entering the pipeline."
        )
        self.metrics.counter(
            "serve.errors", help="Requests answered with a 4xx/5xx."
        )
        self.metrics.histogram(
            "serve.wall_latency_ms",
            buckets=WALL_LATENCY_BUCKETS_MS,
            help="Wall-clock request latency.",
        )
        self._request_ids = itertools.count(1)

    def wrap(self, handler: Handler) -> Handler:
        async def pipeline(request: Request) -> Response:
            request_id = next(self._request_ids)
            self.metrics.counter("serve.requests").inc()
            started_ms = self.clock.now_ms()
            scope = (
                WallSpanScope(self.recorder, self.clock)
                if self.recorder is not None
                else NULL_SPAN_SCOPE
            )
            # Hold the request span directly: if a handler leaks spans
            # they sit *above* it on the stack, and attributes must
            # still land on the request span, not the leak.
            request_span = scope.open("serve.request", {
                "request_id": request_id,
                "method": request.method,
                "path": request.path,
            })
            try:
                if self.gate is not None:
                    try:
                        async with self.gate:
                            response = await handler(request)
                    except AdmissionRejected as shed:
                        response = Response.json(
                            {
                                "error": "at-capacity",
                                "detail": "admission queue full",
                            },
                            status=503,
                            headers={
                                "retry-after":
                                    "%d" % max(1, round(
                                        shed.retry_after_s
                                    )),
                            },
                        )
                else:
                    response = await handler(request)
            except Exception as err:  # noqa: BLE001 - total by design
                response = error_payload(err)
            if request_span is not None:
                request_span.set("status", response.status)
            scope.unwind()  # closes leaked spans, then the request span
            latency_ms = self.clock.now_ms() - started_ms
            self.metrics.histogram(
                "serve.wall_latency_ms",
                buckets=WALL_LATENCY_BUCKETS_MS,
            ).observe(latency_ms)
            if response.status >= 400:
                self.metrics.counter("serve.errors").inc()
            response.headers.setdefault(
                "x-request-id", str(request_id)
            )
            return response

        return pipeline
