"""Background jobs: the serving process's housekeeping loops.

Two periodic asyncio tasks, owned by the app's lifespan:

* **bus drain** — the change bus schedules its delivery waves on the
  world's *virtual* simulator; a wall-clock process has to pump that
  simulator or appended changes sit in the log forever. Each tick
  kicks the bus (re-arming a wave if any listener has backlog) and
  drains the simulator, which delivers waves, invalidates caches and
  feeds subscription listeners.
* **cache sweep** — evicts expired component-cache corpses past their
  stale-serve grace (the TTL-boundary satellite added
  :meth:`~repro.core.cache.ComponentCache.sweep`); without it an
  always-on server retains every dead entry until capacity pressure
  happens to land on it.

Both loops swallow *nothing*: an exception cancels the task loudly
(visible in ``stats()``), because silent housekeeping death is how
"the cache stopped invalidating a week ago" incidents happen.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.app import ServeWorld

__all__ = ["BackgroundJobs"]


class BackgroundJobs:
    """Periodic asyncio tasks that keep a served world healthy.

    Drains the change bus into subscription deliveries and sweeps
    expired cache entries on fixed wall-clock intervals; ``start`` /
    ``stop`` bracket the app lifespan.
    """

    def __init__(
        self,
        world: "ServeWorld",
        bus_drain_interval_s: float = 0.05,
        cache_sweep_interval_s: float = 1.0,
    ) -> None:
        if bus_drain_interval_s <= 0 or cache_sweep_interval_s <= 0:
            raise ValueError("job intervals must be positive")
        self.world = world
        self.bus_drain_interval_s = bus_drain_interval_s
        self.cache_sweep_interval_s = cache_sweep_interval_s
        self._tasks: List["asyncio.Task[None]"] = []
        self.bus_drains = 0
        self.cache_sweeps = 0
        self.swept_entries = 0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self._tasks:
            raise RuntimeError("jobs already started")
        self._tasks.append(
            asyncio.get_running_loop().create_task(
                self._bus_drain_loop(), name="serve-bus-drain"
            )
        )
        self._tasks.append(
            asyncio.get_running_loop().create_task(
                self._cache_sweep_loop(), name="serve-cache-sweep"
            )
        )

    async def stop(self) -> None:
        tasks, self._tasks = self._tasks, []
        for task in tasks:
            task.cancel()
        for task in tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass

    def stats(self) -> dict:
        return {
            "running": [t.get_name() for t in self._tasks if not t.done()],
            "failed": [
                t.get_name() for t in self._tasks
                if t.done() and not t.cancelled() and t.exception()
            ],
            "bus_drains": self.bus_drains,
            "cache_sweeps": self.cache_sweeps,
            "swept_entries": self.swept_entries,
        }

    # -- the loops ----------------------------------------------------------

    def drain_bus_once(self) -> None:
        """One pump of the bus' virtual-time machinery (also called
        directly by tests and the synchronous smoke path)."""
        world = self.world
        if world.bus is not None:
            world.bus.kick()
            world.sim.run()
        self.bus_drains += 1

    def sweep_cache_once(self) -> int:
        world = self.world
        swept = 0
        if world.server.cache is not None:
            swept = world.server.cache.sweep(world.now_ms())
        self.cache_sweeps += 1
        self.swept_entries += swept
        return swept

    async def _bus_drain_loop(self) -> None:
        while True:
            await asyncio.sleep(self.bus_drain_interval_s)
            self.drain_bus_once()

    async def _cache_sweep_loop(self) -> None:
        while True:
            await asyncio.sleep(self.cache_sweep_interval_s)
            self.sweep_cache_once()
