"""Admission control: bounded concurrency + bounded wait queue.

An open-loop load generator (``bench_e21_wire.py``) does not slow down
when the server saturates — without admission control the process
accumulates unbounded pending requests, latency explodes unbounded,
and the p99 calibration against the E19 virtual-time model measures
queue depth instead of the protocol. The gate keeps the measured
system the one the model describes:

* at most ``max_inflight`` requests are being served at once;
* at most ``max_queued`` more may *wait* for a slot (bounded queue —
  this is the backpressure buffer, not an unbounded mailbox);
* everything beyond that is rejected immediately with 503 +
  ``Retry-After``, which an open-loop client counts as a shed request
  rather than a latency sample.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.obs.metrics import MetricsRegistry

__all__ = ["AdmissionGate", "AdmissionRejected"]


class AdmissionRejected(Exception):
    """Both the service slots and the wait queue are full. Not a
    :class:`~repro.errors.ReproError`: admission is a property of this
    process, not of the profile network, and the middleware maps it to
    503 + Retry-After itself."""

    def __init__(self, retry_after_s: float) -> None:
        super().__init__("server at capacity")
        self.retry_after_s = retry_after_s


class AdmissionGate:
    """A counting semaphore with a bounded waiting room."""

    def __init__(
        self,
        max_inflight: int = 64,
        max_queued: int = 128,
        retry_after_s: float = 1.0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("need at least one service slot")
        if max_queued < 0:
            raise ValueError("queue depth must be >= 0")
        self.max_inflight = max_inflight
        self.max_queued = max_queued
        self.retry_after_s = retry_after_s
        self._slots = asyncio.Semaphore(max_inflight)
        self._inflight = 0
        self._queued = 0
        self.metrics = (
            metrics if metrics is not None else MetricsRegistry()
        )
        self.metrics.counter(
            "serve.admitted", help="Requests that got a service slot."
        )
        self.metrics.counter(
            "serve.rejected", help="Requests shed at the admission gate."
        )
        self.metrics.gauge(
            "serve.inflight", help="Requests currently being served.",
            fn=lambda: float(self._inflight),
        ).bind(lambda: float(self._inflight))
        self.metrics.gauge(
            "serve.queued", help="Requests waiting for a slot.",
            fn=lambda: float(self._queued),
        ).bind(lambda: float(self._queued))

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def queued(self) -> int:
        return self._queued

    async def __aenter__(self) -> "AdmissionGate":
        await self.acquire()
        return self

    async def __aexit__(self, *exc: object) -> None:
        self.release()

    async def acquire(self) -> None:
        if self._inflight >= self.max_inflight:
            if self._queued >= self.max_queued:
                self.metrics.counter("serve.rejected").inc()
                raise AdmissionRejected(self.retry_after_s)
            self._queued += 1
            try:
                await self._slots.acquire()
            finally:
                self._queued -= 1
        else:
            await self._slots.acquire()
        self._inflight += 1
        self.metrics.counter("serve.admitted").inc()

    def release(self) -> None:
        self._inflight -= 1
        self._slots.release()
