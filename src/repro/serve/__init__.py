"""The real serving layer (ISSUE 9): GUPster over asyncio HTTP.

The sans-io refactor (:mod:`repro.sansio`) made the Section 5.2 query
patterns pure programs over typed I/O intents; this package is the
second consumer of those programs — a wall-clock asyncio front end
that serves them over real sockets:

* :mod:`~repro.serve.transport` — the async intent driver + fault plan
  mirroring the simulated network's impairments;
* :mod:`~repro.serve.http` — a minimal stdlib HTTP/1.1 layer;
* :mod:`~repro.serve.status` — the deliberate error → HTTP status map;
* :mod:`~repro.serve.middleware` — error/span/metrics/admission onion;
* :mod:`~repro.serve.admission` — bounded queues + backpressure;
* :mod:`~repro.serve.routers` — query / provisioning / subscription;
* :mod:`~repro.serve.jobs` — bus drain + cache sweep loops;
* :mod:`~repro.serve.app` — the factory tying it all together.

``python -m repro.serve`` boots the demo world on a local port;
``bench_e21_wire.py`` measures it against the E19 virtual-time
predictions.
"""

from repro.serve.admission import AdmissionGate, AdmissionRejected
from repro.serve.app import (
    App,
    AppServer,
    ServeWorld,
    build_demo_world,
    create_app,
)
from repro.serve.http import HttpServer, Request, Response
from repro.serve.jobs import BackgroundJobs
from repro.serve.middleware import RequestPipeline, context_from_headers
from repro.serve.status import status_for
from repro.serve.transport import FaultPlan, WallTransport

__all__ = [
    "AdmissionGate",
    "AdmissionRejected",
    "App",
    "AppServer",
    "BackgroundJobs",
    "FaultPlan",
    "HttpServer",
    "Request",
    "RequestPipeline",
    "Response",
    "ServeWorld",
    "WallTransport",
    "build_demo_world",
    "context_from_headers",
    "create_app",
    "status_for",
]
