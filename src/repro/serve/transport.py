"""The real-transport driver: sans-io programs under asyncio.

:class:`WallTransport` is the wall-clock twin of
:class:`repro.simnet.driver.SimnetDriver`. It consumes the identical
typed intent stream (:mod:`repro.sansio.intents`) but *performs* the
intents instead of charging them to a virtual trace:

* ``Send``/``Sleep`` become real (scaled, capped) ``asyncio.sleep``
  awaits — ``time_scale=0`` (the default) degenerates every delay to
  a bare yield point, so tests and the equivalence gate run at full
  speed while fork legs still interleave on the event loop;
* ``Fork`` becomes ``asyncio.gather`` — real concurrency where the
  simulator models max-of-branches;
* spans land in a :class:`~repro.obs.SpanRecorder` with wall-clock
  timestamps via :class:`~repro.obs.wallclock.WallSpanScope`;
* ``Mark``/``PartReport`` feed ``serve.*`` metrics counters.

Fault injection mirrors the simulated network's impairments so the
equivalence property test can inject the *same* failure schedule on
both sides: :class:`FaultPlan` carries failed nodes (source checked
before target, exactly like ``Trace._hop``), deterministic forced
drops with one shared per-link budget keyed like
``Network.force_drops``, and per-link slow-reply delays. Failure
detection costs a (scaled) ``detect_timeout_ms`` sleep before the
error is thrown into the program — the wall analogue of the charged
virtual timeout.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

from repro.errors import NodeUnreachableError, PacketLossError
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanRecorder
from repro.obs.wallclock import (
    NULL_SPAN_SCOPE,
    Clock,
    WallClock,
    WallSpanScope,
)
from repro.sansio.intents import (
    Compute,
    Fork,
    Intent,
    LegOutcome,
    Mark,
    PartReport,
    Program,
    Send,
    Sleep,
    SpanClose,
    SpanOpen,
    SpanSet,
    StoreGet,
    StorePut,
)

__all__ = ["FaultPlan", "WallTransport", "DEFAULT_DETECT_TIMEOUT_MS"]

#: Wall twin of ``Network.detect_timeout_ms`` — model milliseconds
#: spent noticing a dead peer before the transport error surfaces.
DEFAULT_DETECT_TIMEOUT_MS = 200.0

#: Hard ceiling on any single real sleep: whatever the model says, a
#: serving process must never block a request handler for longer.
DEFAULT_MAX_SLEEP_MS = 1_000.0

#: Per-mark metric names (``serve.*`` namespace).
_MARK_METRICS: Dict[str, str] = {
    "retry": "serve.retries",
    "failover": "serve.failovers",
    "stale_serve": "serve.stale_serves",
    "degraded": "serve.degraded_responses",
    "degraded_item": "serve.degraded_responses",
}


class FaultPlan:
    """Deterministic wall-side impairments, mirroring
    :class:`~repro.simnet.Network` fault semantics."""

    def __init__(self) -> None:
        self._failed: Set[str] = set()
        self._forced_drops: Dict[Tuple[str, str], int] = {}
        self._slow: Dict[Tuple[str, str], float] = {}

    def fail(self, node: str) -> None:
        self._failed.add(node)

    def restore(self, node: str) -> None:
        self._failed.discard(node)

    def is_failed(self, node: str) -> bool:
        return node in self._failed

    @staticmethod
    def _link(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def force_drops(self, a: str, b: str, count: int = 1) -> None:
        """Drop the next *count* sends on the link, either direction
        (one shared budget — identical to ``Network.force_drops``)."""
        if count < 0:
            raise ValueError("drop count must be >= 0")
        key = self._link(a, b)
        if count == 0:
            self._forced_drops.pop(key, None)
        else:
            self._forced_drops[key] = count

    def take_drop(self, src: str, dst: str) -> bool:
        """Consume one forced-drop decision for a send src→dst."""
        key = self._link(src, dst)
        budget = self._forced_drops.get(key, 0)
        if budget <= 0:
            return False
        if budget == 1:
            del self._forced_drops[key]
        else:
            self._forced_drops[key] = budget - 1
        return True

    def slow_link(self, a: str, b: str, extra_ms: float) -> None:
        """Add *extra_ms* (model time) to every send on the link —
        the slow-reply impairment. 0 clears."""
        if extra_ms < 0:
            raise ValueError("slow-link delay must be >= 0")
        key = self._link(a, b)
        if extra_ms == 0:
            self._slow.pop(key, None)
        else:
            self._slow[key] = extra_ms

    def slow_ms(self, src: str, dst: str) -> float:
        return self._slow.get(self._link(src, dst), 0.0)


class WallTransport:
    """Drives sans-io programs over real time on an asyncio loop."""

    def __init__(
        self,
        adapters: Mapping[str, Any],
        time_scale: float = 0.0,
        base_latency_ms: float = 0.0,
        bandwidth_bpms: float = 1250.0,
        detect_timeout_ms: float = DEFAULT_DETECT_TIMEOUT_MS,
        max_sleep_ms: float = DEFAULT_MAX_SLEEP_MS,
        faults: Optional[FaultPlan] = None,
        recorder: Optional[SpanRecorder] = None,
        clock: Optional[Clock] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if time_scale < 0:
            raise ValueError("time scale must be >= 0")
        self.adapters = adapters
        #: Real seconds slept per model millisecond × 1000 — i.e. a
        #: model delay of ``d`` ms sleeps ``d * time_scale`` real ms.
        #: 0 turns every delay into a bare yield point.
        self.time_scale = time_scale
        self.base_latency_ms = base_latency_ms
        self.bandwidth_bpms = bandwidth_bpms
        self.detect_timeout_ms = detect_timeout_ms
        self.max_sleep_ms = max_sleep_ms
        self.faults = faults
        self.recorder = recorder
        self.clock = clock if clock is not None else WallClock()
        self.metrics = (
            metrics if metrics is not None else MetricsRegistry()
        )
        for metric in sorted(set(_MARK_METRICS.values())):
            self.metrics.counter(metric)
        self.metrics.counter("serve.sends")
        self.metrics.counter("serve.send_failures")

    # -- timing --------------------------------------------------------------

    def send_delay_ms(self, nbytes: int) -> float:
        """Model latency of one send (before scaling)."""
        return self.base_latency_ms + nbytes / self.bandwidth_bpms

    async def _sleep_model_ms(self, model_ms: float) -> None:
        real_ms = min(model_ms * self.time_scale, self.max_sleep_ms)
        await asyncio.sleep(real_ms / 1000.0)

    # -- the driver loop -----------------------------------------------------

    async def run(
        self, program: Program, scope: Optional[Any] = None
    ) -> Any:
        """Drive *program* to completion; returns its return value.

        *scope* is the span sink (a
        :class:`~repro.obs.wallclock.WallSpanScope`); by default a
        fresh one is opened per run when a recorder is attached."""
        if scope is None:
            scope = (
                WallSpanScope(self.recorder, self.clock)
                if self.recorder is not None
                else NULL_SPAN_SCOPE
            )
        try:
            to_send: Any = None
            to_throw: Optional[BaseException] = None
            while True:
                try:
                    if to_throw is not None:
                        error, to_throw = to_throw, None
                        intent = program.throw(error)
                    else:
                        intent = program.send(to_send)
                except StopIteration as stop:
                    return stop.value
                to_send = None
                try:
                    to_send = await self._perform(intent, scope)
                except Exception as err:
                    to_throw = err
        except BaseException:
            scope.unwind()
            raise
        finally:
            program.close()

    async def _perform(self, intent: Intent, scope: Any) -> Any:
        if isinstance(intent, Send):
            await self._send(intent)
        elif isinstance(intent, Compute):
            # Real compute happens inline (the host calls the engine's
            # pure collaborators directly); the model charge needs no
            # extra wall delay.
            await asyncio.sleep(0)
        elif isinstance(intent, Sleep):
            await self._sleep_model_ms(intent.ms)
        elif isinstance(intent, StoreGet):
            return self.adapters[intent.store_id].get(intent.path)
        elif isinstance(intent, StorePut):
            adapter = self.adapters.get(intent.store_id)
            if adapter is not None:
                adapter.put(intent.path, intent.fragment)
        elif isinstance(intent, SpanOpen):
            scope.open(intent.name, intent.attrs)
        elif isinstance(intent, SpanSet):
            scope.set(intent.key, intent.value)
        elif isinstance(intent, SpanClose):
            scope.close()
        elif isinstance(intent, Mark):
            self.metrics.counter(
                _MARK_METRICS[intent.kind]
            ).inc(intent.count if intent.kind != "degraded" else 1)
        elif isinstance(intent, PartReport):
            pass  # statuses travel in the program's return value
        elif isinstance(intent, Fork):
            return await self._fork(intent, scope)
        else:  # pragma: no cover - new intents must be handled here
            raise TypeError("unknown intent %r" % (intent,))
        return None

    async def _send(self, intent: Send) -> None:
        self.metrics.counter("serve.sends").inc()
        plan = self.faults
        extra_ms = 0.0
        if plan is not None:
            if plan.is_failed(intent.src):
                self.metrics.counter("serve.send_failures").inc()
                raise NodeUnreachableError(
                    "source %r is down" % intent.src
                )
            if plan.is_failed(intent.dst):
                await self._sleep_model_ms(self.detect_timeout_ms)
                self.metrics.counter("serve.send_failures").inc()
                raise NodeUnreachableError(
                    "node %r is down" % intent.dst
                )
            if plan.take_drop(intent.src, intent.dst):
                await self._sleep_model_ms(self.detect_timeout_ms)
                self.metrics.counter("serve.send_failures").inc()
                raise PacketLossError(
                    "message %s -> %s lost" % (intent.src, intent.dst)
                )
            extra_ms = plan.slow_ms(intent.src, intent.dst)
        await self._sleep_model_ms(
            self.send_delay_ms(intent.nbytes) + extra_ms
        )

    async def _fork(self, intent: Fork, scope: Any) -> List[LegOutcome]:
        """Real concurrency: every leg runs as its own task; captured
        leg errors land in that leg's outcome, anything else cancels
        the gather and propagates into the parent program."""

        async def leg(program: Program) -> LegOutcome:
            child = scope.fork_child()
            try:
                value = await self.run(program, scope=child)
            except intent.capture as err:
                return LegOutcome(error=err)
            return LegOutcome(value=value)

        if not intent.programs:
            return []
        return list(
            await asyncio.gather(*(leg(p) for p in intent.programs))
        )
