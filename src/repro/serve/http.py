"""A minimal HTTP/1.1 layer over ``asyncio`` streams.

The container deliberately ships no web framework — the serving layer
(ISSUE 9) is stdlib-only, and this module is the whole wire protocol:
parse one request off a :class:`~asyncio.StreamReader`, hand the
handler a :class:`Request`, write its :class:`Response` back, close.

Scope is intentionally tiny (it serves the repo's own demo/benchmark
traffic, not the open internet): ``Content-Length`` bodies only (no
chunked uploads), one request per connection (``Connection: close``),
bounded header/body sizes so a misbehaving client cannot balloon the
process.
"""

from __future__ import annotations

import asyncio
import json
from typing import Awaitable, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.errors import ReproError

__all__ = [
    "HttpProtocolError",
    "HttpServer",
    "Request",
    "Response",
    "read_request",
    "write_response",
]

#: Largest accepted request head (request line + headers, bytes).
MAX_HEAD_BYTES = 16 * 1024
#: Largest accepted request body (bytes).
MAX_BODY_BYTES = 1024 * 1024

_REASONS = {
    200: "OK", 201: "Created", 202: "Accepted", 204: "No Content",
    400: "Bad Request", 401: "Unauthorized", 403: "Forbidden",
    404: "Not Found", 405: "Method Not Allowed", 409: "Conflict",
    410: "Gone", 413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 502: "Bad Gateway",
    503: "Service Unavailable", 504: "Gateway Timeout",
}


class HttpProtocolError(ReproError):
    """The bytes on the wire are not a request this layer accepts.
    Carries the status the connection should die with."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


class Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "path", "params", "headers", "body")

    def __init__(
        self,
        method: str,
        path: str,
        params: Optional[Dict[str, str]] = None,
        headers: Optional[Dict[str, str]] = None,
        body: bytes = b"",
    ) -> None:
        self.method = method
        #: Decoded path, query string stripped.
        self.path = path
        #: Query parameters (last occurrence wins).
        self.params: Dict[str, str] = dict(params or {})
        #: Header names lower-cased.
        self.headers: Dict[str, str] = dict(headers or {})
        self.body = body

    def json(self) -> object:
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as err:
            raise HttpProtocolError(
                "request body is not valid JSON: %s" % err
            ) from err

    def __repr__(self) -> str:
        return "<Request %s %s>" % (self.method, self.path)


class Response:
    """One HTTP response; :meth:`json` is the idiomatic constructor."""

    __slots__ = ("status", "headers", "body")

    def __init__(
        self,
        status: int = 200,
        body: bytes = b"",
        headers: Optional[Dict[str, str]] = None,
        content_type: str = "application/octet-stream",
    ) -> None:
        self.status = status
        self.body = body
        self.headers: Dict[str, str] = {"content-type": content_type}
        if headers:
            self.headers.update(
                (k.lower(), v) for k, v in headers.items()
            )

    @classmethod
    def json(
        cls,
        payload: object,
        status: int = 200,
        headers: Optional[Dict[str, str]] = None,
    ) -> "Response":
        body = (
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        ).encode("utf-8")
        return cls(
            status, body, headers=headers,
            content_type="application/json",
        )

    @classmethod
    def text(
        cls,
        payload: str,
        status: int = 200,
        content_type: str = "text/plain; charset=utf-8",
    ) -> "Response":
        return cls(
            status, payload.encode("utf-8"), content_type=content_type
        )

    def __repr__(self) -> str:
        return "<Response %d %d byte(s)>" % (self.status, len(self.body))


#: The handler signature the server dispatches to.
Handler = Callable[[Request], Awaitable[Response]]


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request; ``None`` when the peer closed the socket
    before sending anything."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as err:
        if not err.partial:
            return None
        raise HttpProtocolError("truncated request head") from err
    except asyncio.LimitOverrunError as err:
        raise HttpProtocolError(
            "request head too large", status=413
        ) from err
    if len(head) > MAX_HEAD_BYTES:
        raise HttpProtocolError("request head too large", status=413)

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpProtocolError("malformed request line: %r" % lines[0])
    method, target = parts[0].upper(), parts[1]

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpProtocolError("malformed header: %r" % line)
        headers[name.strip().lower()] = value.strip()

    split = urlsplit(target)
    params = dict(parse_qsl(split.query, keep_blank_values=True))

    body = b""
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError as err:
        raise HttpProtocolError(
            "bad content-length: %r" % length_text
        ) from err
    if length < 0 or length > MAX_BODY_BYTES:
        raise HttpProtocolError("body too large", status=413)
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as err:
            raise HttpProtocolError(
                "truncated request body"
            ) from err

    return Request(
        method, unquote(split.path), params=params,
        headers=headers, body=body,
    )


async def write_response(
    writer: asyncio.StreamWriter, response: Response
) -> None:
    """Serialize ``response`` onto ``writer`` as HTTP/1.1 and drain."""
    reason = _REASONS.get(response.status, "Unknown")
    head: List[str] = [
        "HTTP/1.1 %d %s" % (response.status, reason)
    ]
    headers = dict(response.headers)
    headers["content-length"] = str(len(response.body))
    headers["connection"] = "close"
    for name in sorted(headers):
        head.append("%s: %s" % (name, headers[name]))
    writer.write(
        ("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
    )
    writer.write(response.body)
    await writer.drain()


class HttpServer:
    """One handler behind ``asyncio.start_server``.

    The handler is total — it must return a :class:`Response` for any
    :class:`Request` (the app's middleware guarantees that); only
    protocol-level garbage is answered here directly.
    """

    def __init__(self, handler: Handler, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.handler = handler
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> Tuple[str, int]:
        """Bind and listen; returns the bound (host, port) — port 0
        picks a free one, which is how tests avoid collisions."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port,
            limit=MAX_HEAD_BYTES,
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    async def _serve_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            try:
                request = await read_request(reader)
            except HttpProtocolError as err:
                await write_response(writer, Response.json(
                    {"error": "protocol", "detail": str(err)},
                    status=err.status,
                ))
                return
            if request is None:
                return
            response = await self.handler(request)
            await write_response(writer, response)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - platform noise
                pass
