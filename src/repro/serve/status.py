"""Deliberate error → HTTP status mapping (ISSUE 9 satellite).

Every :class:`~repro.errors.ReproError` subclass maps to an explicit
(status, slug) pair here — the serving layer must never leak a raw
traceback, and a client must be able to tell "you asked wrong" (4xx)
from "the profile network is hurting" (5xx) without parsing prose.

The table is ordered most-derived-first and walked with ``isinstance``,
so a subclass both inherits its parent's mapping by default and can
override it by taking an earlier row (e.g.
:class:`~repro.errors.ResyncRequiredError` is a
:class:`~repro.errors.CoverageError`, but maps to 410 Gone — the
cursor is unrecoverable and retrying the same feed request is
pointless).

``tests/test_serve_status.py`` walks the entire exception hierarchy
and fails on any subclass that only reaches the generic fallback —
adding an error class without deciding its wire status is a test
failure, not a silent 500.
"""

from __future__ import annotations

from typing import Tuple, Type

from repro import errors

__all__ = ["status_for", "STATUS_TABLE"]

#: (exception class, HTTP status, machine-readable slug), walked in
#: order; keep subclasses strictly before their bases.
STATUS_TABLE: Tuple[Tuple[Type[BaseException], int, str], ...] = (
    # -- client-side: the request itself is the problem ---------------------
    (errors.ResyncRequiredError, 410, "resync-required"),
    (errors.StaleQueryError, 401, "stale-query"),
    (errors.SignatureError, 401, "bad-signature"),
    (errors.AccessDeniedError, 403, "access-denied"),
    (errors.ProvisioningDeniedError, 403, "provisioning-denied"),
    (errors.NoCoverageError, 404, "no-coverage"),
    (errors.UnknownSubscriberError, 404, "unknown-subscriber"),
    (errors.MergeConflictError, 409, "merge-conflict"),
    (errors.AnchorMismatchError, 409, "anchor-mismatch"),
    (errors.PathSyntaxError, 400, "bad-path"),
    (errors.ParseError, 400, "parse-error"),
    (errors.UnsupportedPathError, 400, "unsupported-path"),
    (errors.SchemaError, 400, "schema-violation"),
    (errors.ModelError, 400, "model-error"),
    (errors.PXMLError, 400, "pxml-error"),
    (errors.PolicyError, 400, "bad-policy"),
    (errors.ValidationError, 400, "validation-error"),
    # -- server-side: the converged network is the problem ------------------
    (errors.PartialResultError, 503, "all-parts-failed"),
    (errors.TimeoutError_, 504, "upstream-timeout"),
    (errors.NodeUnreachableError, 503, "node-unreachable"),
    (errors.PacketLossError, 503, "packet-loss"),
    (errors.NetworkError, 502, "network-error"),
    (errors.AdapterError, 502, "adapter-error"),
    (errors.StoreError, 502, "store-error"),
    (errors.ForeignResyncRequiredError, 410, "foreign-resync-required"),
    (errors.FederationError, 500, "federation-error"),
    (errors.CoverageError, 500, "coverage-error"),
    (errors.SyncError, 500, "sync-error"),
    # A bare GupsterError is a malformed use of the server API —
    # client-shaped, like the spurious-query diagnostics.
    (errors.GupsterError, 400, "bad-request"),
    (errors.ReproError, 500, "internal-error"),
)


def status_for(error: BaseException) -> Tuple[int, str]:
    """(HTTP status, slug) for *error*; non-Repro exceptions are a
    plain 500 — the middleware still never serializes the traceback."""
    for cls, status, slug in STATUS_TABLE:
        if isinstance(error, cls):
            return status, slug
    return 500, "internal-error"
