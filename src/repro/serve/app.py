"""The app factory: a GUPster world served over real HTTP.

:class:`ServeWorld` bundles everything one serving process owns — the
GUPster server and its adapters, the (virtual-time) change bus, the
sans-io engine + wall transport, clocks, spans and metrics.
:class:`App` mounts the routers behind the middleware pipeline and
exposes :meth:`App.handle` — a complete request → response function
that tests drive *without sockets*; :class:`AppServer` is the thin
``asyncio.start_server`` wrapper around it for real traffic
(``python -m repro.serve``).

:func:`build_demo_world` is the split-address-book world every
failure experiment uses (personal slice on alpha ∥ beta, corporate
slice only at corp) so the quickstart and ``bench_e21_wire.py``
exercise referral fan-out, merging and degradation out of the box.
"""

from __future__ import annotations

import asyncio
from typing import Optional, Tuple

from repro.core.cache import ComponentCache
from repro.core.resilience import RetryPolicy
from repro.core.server import GupsterServer
from repro.bus import CacheInvalidationListener, ChangeBus
from repro.obs.export import to_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanRecorder
from repro.obs.wallclock import Clock, WallClock
from repro.sansio.engine import SansIoQueryEngine, StandaloneQueryHost
from repro.serve.admission import AdmissionGate
from repro.serve.http import HttpServer, Request, Response
from repro.serve.jobs import BackgroundJobs
from repro.serve.middleware import RequestPipeline
from repro.serve.routers import (
    ProvisioningRouter,
    QueryRouter,
    SubscriptionRouter,
)
from repro.serve.transport import FaultPlan, WallTransport
from repro.simnet import Network, Simulator
from repro.workloads import SyntheticAdapter

__all__ = [
    "App",
    "AppServer",
    "ServeWorld",
    "build_demo_world",
    "create_app",
]


class ServeWorld:
    """Everything a serving process owns, wired once at boot."""

    def __init__(
        self,
        server: GupsterServer,
        client_node: str = "http-client",
        sim: Optional[Simulator] = None,
        network: Optional[Network] = None,
        bus: Optional[ChangeBus] = None,
        retry_policy: Optional[RetryPolicy] = None,
        faults: Optional[FaultPlan] = None,
        time_scale: float = 0.0,
        clock: Optional[Clock] = None,
        recorder: Optional[SpanRecorder] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.server = server
        self.client_node = client_node
        self.sim = sim if sim is not None else Simulator()
        self.network = network
        self.bus = bus
        self.clock = clock if clock is not None else WallClock()
        self.recorder = (
            recorder if recorder is not None else SpanRecorder()
        )
        self.metrics = (
            metrics if metrics is not None else MetricsRegistry()
        )
        server.bind_registry(self.metrics)
        self.host = StandaloneQueryHost(
            server, retry_policy=retry_policy
        )
        self.host.health.bind_registry(self.metrics)
        self.engine = SansIoQueryEngine(self.host)
        self.transport = WallTransport(
            server.adapters,
            time_scale=time_scale,
            faults=faults,
            recorder=self.recorder,
            clock=self.clock,
            metrics=self.metrics,
        )

    def now_ms(self) -> float:
        """The model timestamp stamped on requests: wall ms since this
        process booted (cache TTLs and signature freshness windows are
        measured against it)."""
        return self.clock.now_ms()


def build_demo_world(
    ttl_ms: float = 60_000.0,
    stale_grace_ms: float = 120_000.0,
    with_bus: bool = True,
    time_scale: float = 0.0,
    faults: Optional[FaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
) -> ServeWorld:
    """The split address-book world (bench_e16 shape): personal slice
    replicated on alpha ∥ beta, corporate slice only at corp."""
    network = Network(seed=16)
    for node, region in (
        ("gupster", "core"),
        ("http-client", "internet"),
        ("gup.alpha.com", "internet"),
        ("gup.beta.com", "core"),
        ("gup.corp.com", "enterprise"),
    ):
        network.add_node(node, region=region)
    server = GupsterServer(
        "gupster",
        cache=ComponentCache(
            capacity=256,
            default_ttl_ms=ttl_ms,
            stale_grace_ms=stale_grace_ms,
        ),
        enforce_policies=False,
    )
    book = "/user[@id='u1']/address-book"
    for store_id, seed in (
        ("gup.alpha.com", 5),
        ("gup.beta.com", 5),
        ("gup.corp.com", 9),
    ):
        adapter = SyntheticAdapter(store_id, seed=seed)
        adapter.add_user("u1", ["address-book"])
        server.join(adapter, user_ids=[])
    server.register_component(
        book + "/item[@type='personal']", "gup.alpha.com"
    )
    server.register_component(
        book + "/item[@type='personal']", "gup.beta.com"
    )
    server.register_component(
        book + "/item[@type='corporate']", "gup.corp.com"
    )
    sim = Simulator()
    bus: Optional[ChangeBus] = None
    if with_bus:
        bus = ChangeBus(sim, network, origin_node="gupster")
        if server.cache is not None:
            bus.attach(
                CacheInvalidationListener("serve-cache", server.cache)
            )
    return ServeWorld(
        server,
        sim=sim,
        network=network,
        bus=bus,
        retry_policy=retry_policy,
        faults=faults,
        time_scale=time_scale,
    )


class App:
    """Routes behind the middleware onion; socket-free by itself."""

    def __init__(
        self,
        world: ServeWorld,
        gate: Optional[AdmissionGate] = None,
        jobs: Optional[BackgroundJobs] = None,
    ) -> None:
        self.world = world
        self.gate = (
            gate if gate is not None
            else AdmissionGate(metrics=world.metrics)
        )
        self.jobs = jobs if jobs is not None else BackgroundJobs(world)
        self.query = QueryRouter(world)
        self.provisioning = ProvisioningRouter(world)
        self.subscriptions = SubscriptionRouter(world)
        self.pipeline = RequestPipeline(
            gate=self.gate,
            recorder=world.recorder,
            clock=world.clock,
            metrics=world.metrics,
        )
        self.handle = self.pipeline.wrap(self._route)

    async def _route(self, request: Request) -> Response:
        method, path = request.method, request.path
        if path == "/healthz" and method == "GET":
            return Response.json({
                "ok": True,
                "stores": sorted(self.world.server.adapters),
                "jobs": self.jobs.stats(),
            })
        if path == "/metrics" and method == "GET":
            return Response.text(
                to_prometheus(self.world.metrics),
                content_type="text/plain; version=0.0.4",
            )
        if path == "/v1/query" and method == "GET":
            return await self.query.handle(request)
        if path == "/v1/provision" and method == "POST":
            return await self.provisioning.handle(request)
        if path == "/v1/subscriptions" or path.startswith(
            "/v1/subscriptions/"
        ):
            return await self.subscriptions.handle(request)
        return Response.json(
            {"error": "not-found", "detail": path}, status=404
        )


class AppServer:
    """App + background jobs behind a real listening socket."""

    def __init__(
        self, app: App, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.app = app
        self.http = HttpServer(app.handle, host=host, port=port)

    async def start(self) -> Tuple[str, int]:
        self.app.jobs.start()
        return await self.http.start()

    async def stop(self) -> None:
        await self.app.jobs.stop()
        await self.http.stop()


def create_app(
    world: Optional[ServeWorld] = None,
    max_inflight: int = 64,
    max_queued: int = 128,
) -> App:
    """The factory: default world, bounded admission, jobs wired."""
    if world is None:
        world = build_demo_world()
    gate = AdmissionGate(
        max_inflight=max_inflight,
        max_queued=max_queued,
        metrics=world.metrics,
    )
    return App(world, gate=gate)


async def serve_forever(
    host: str = "127.0.0.1", port: int = 8080
) -> None:  # pragma: no cover - the __main__ path
    """Build a default app and serve it until cancelled."""
    server = AppServer(create_app(), host=host, port=port)
    bound_host, bound_port = await server.start()
    print("serving GUPster on http://%s:%d" % (bound_host, bound_port))
    try:
        await asyncio.Event().wait()
    finally:
        await server.stop()
