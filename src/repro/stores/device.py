"""End-user devices (paper Sections 2.1 and 3.1).

Alice's world: a SprintPCS cell phone with on-phone phone book, ring
tones, speed keys and WAP bookmarks; a Vodafone GSM phone whose
"European" phone book lives on the removable SIM card; a PDA whose
address book and calendar sync with a portal. Devices are profile
stores too (Figure 5: "end-user device"), and they are the primary
subjects of synchronization (requirement 7).

Each device keeps a monotonically increasing local change counter so
the sync layer can run SyncML-style fast syncs against it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import StoreError
from repro.stores.base import NativeStore

__all__ = ["SimCard", "PhoneBookEntry", "MobilePhone", "Pda"]


class PhoneBookEntry:
    """One on-device contact: name + a single number (devices store
    less than network books — a real constraint for reconciliation).
    The number's kind is kept so network syncs round-trip losslessly.
    """

    def __init__(
        self,
        entry_id: str,
        name: str,
        number: str,
        number_type: str = "cell",
    ):
        self.entry_id = entry_id
        self.name = name
        self.number = number
        self.number_type = number_type

    def as_tuple(self) -> Tuple[str, str, str]:
        return (self.entry_id, self.name, self.number)


class SimCard:
    """A removable SIM: identity plus its own phone book and prefs.

    The paper notes European users keep data on the SIM "that can be
    transparently exchanged between devices" — so the SIM, not the
    phone, owns this storage."""

    def __init__(self, imsi: str, msisdn: str, capacity: int = 100):
        self.imsi = imsi
        self.msisdn = msisdn
        self.capacity = capacity
        self.phonebook: Dict[str, PhoneBookEntry] = {}
        self.preferences: Dict[str, str] = {}

    def store_entry(self, entry: PhoneBookEntry) -> None:
        if (
            entry.entry_id not in self.phonebook
            and len(self.phonebook) >= self.capacity
        ):
            raise StoreError("SIM phone book full")
        self.phonebook[entry.entry_id] = entry


class MobilePhone(NativeStore):
    """A handset: on-phone storage plus an optional SIM slot."""

    PROFILE_DATA = (
        "phone book", "ring tones", "speed keys", "WAP bookmarks",
        "phone preferences",
    )

    def __init__(
        self,
        name: str,
        user_id: str,
        carrier: str,
        sim: Optional[SimCard] = None,
    ):
        super().__init__(name, network="Wireless", region="wireless")
        self.user_id = user_id
        self.carrier = carrier
        self.sim = sim
        self.phonebook: Dict[str, PhoneBookEntry] = {}
        self.preferences: Dict[str, str] = {}
        self.wap_bookmarks: Dict[str, str] = {}
        self.powered_on = False
        #: Monotone change counter for fast sync.
        self.change_counter = 0
        self._changes: List[Tuple[int, str, str]] = []  # (ctr, op, id)

    # -- power / SIM ----------------------------------------------------------

    def power_on(self) -> None:
        self.powered_on = True

    def power_off(self) -> None:
        self.powered_on = False

    def insert_sim(self, sim: SimCard) -> None:
        self.sim = sim

    def eject_sim(self) -> Optional[SimCard]:
        """The European trick: the SIM (and its phone book) walks away."""
        sim, self.sim = self.sim, None
        return sim

    # -- phone book -------------------------------------------------------------

    def _record_change(self, op: str, entry_id: str) -> None:
        self.change_counter += 1
        self._changes.append((self.change_counter, op, entry_id))

    def store_entry(self, entry: PhoneBookEntry, on_sim: bool = False) -> None:
        if on_sim:
            if self.sim is None:
                raise StoreError("no SIM inserted")
            self.sim.store_entry(entry)
        else:
            self.phonebook[entry.entry_id] = entry
        self._record_change("put", entry.entry_id)

    def delete_entry(self, entry_id: str) -> None:
        if entry_id in self.phonebook:
            del self.phonebook[entry_id]
        elif self.sim is not None and entry_id in self.sim.phonebook:
            del self.sim.phonebook[entry_id]
        else:
            raise StoreError("no entry %r" % entry_id)
        self._record_change("delete", entry_id)

    def all_entries(self) -> List[PhoneBookEntry]:
        """Phone + SIM books merged (SIM entries win id clashes, they
        are the user's 'portable truth')."""
        merged = dict(self.phonebook)
        if self.sim is not None:
            merged.update(self.sim.phonebook)
        return [merged[key] for key in sorted(merged)]

    def changes_since(self, counter: int) -> List[Tuple[int, str, str]]:
        return [c for c in self._changes if c[0] > counter]

    # -- preferences ---------------------------------------------------------

    def set_preference(self, name: str, value: str) -> None:
        self.preferences[name] = value
        self._record_change("pref", name)

    def add_wap_bookmark(self, mark_id: str, url: str) -> None:
        self.wap_bookmarks[mark_id] = url
        self._record_change("wap", mark_id)


class Pda(NativeStore):
    """A personal digital assistant with address book + calendar."""

    PROFILE_DATA = ("address book", "calendar", "memos")

    def __init__(self, name: str, user_id: str):
        super().__init__(name, network="Web", region="wireless")
        self.user_id = user_id
        self.contacts: Dict[str, PhoneBookEntry] = {}
        self.appointments: Dict[str, Tuple[str, str, str]] = {}
        self.change_counter = 0
        self._changes: List[Tuple[int, str, str]] = []

    def _record_change(self, op: str, item_id: str) -> None:
        self.change_counter += 1
        self._changes.append((self.change_counter, op, item_id))

    def store_contact(self, entry: PhoneBookEntry) -> None:
        self.contacts[entry.entry_id] = entry
        self._record_change("put-contact", entry.entry_id)

    def store_appointment(
        self, appt_id: str, start: str, end: str, subject: str
    ) -> None:
        self.appointments[appt_id] = (start, end, subject)
        self._record_change("put-appt", appt_id)

    def changes_since(self, counter: int) -> List[Tuple[int, str, str]]:
        return [c for c in self._changes if c[0] > counter]
