"""Supporting profile-bearing systems of Figure 5: AAA servers,
billing systems, and ISP session stores.

The paper's placement table lists these alongside the switches and
registrars:

* **AAA** (VoIP row; also §3.1.2 "authentication (using AAA servers)")
  — credentials and per-service authorization;
* **billing systems** (PSTN and Wireless rows) — call detail records
  and the post-paid invoice view;
* **ISP** (Web row: "cross network info: ISP info about a user being
  connected or not and its IP address and calling phone number") —
  dial-up session state, a presence-like signal the reach-me service
  could aggregate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import StoreError
from repro.stores.base import NativeStore

__all__ = ["AAAServer", "BillingSystem", "IspSessionStore"]


class AAAServer(NativeStore):
    """Authentication, Authorization, Accounting (RADIUS-style)."""

    PROFILE_DATA = (
        "credentials", "authorized services", "accounting records",
    )

    def __init__(self, name: str, network: str = "VoIP"):
        super().__init__(name, network=network, region="core")
        self._secrets: Dict[str, str] = {}
        self._services: Dict[str, set] = {}
        self._accounting: List[Tuple[str, str, float]] = []
        self.rejected = 0

    # -- provisioning ------------------------------------------------------

    def enroll(self, user_id: str, secret: str) -> None:
        if user_id in self._secrets:
            raise StoreError("user %r already enrolled" % user_id)
        self._secrets[user_id] = secret
        self._services[user_id] = set()

    def grant_service(self, user_id: str, service: str) -> None:
        if user_id not in self._services:
            raise StoreError("unknown user %r" % user_id)
        self._services[user_id].add(service)

    def revoke_service(self, user_id: str, service: str) -> None:
        self._services.get(user_id, set()).discard(service)

    # -- the three A's ---------------------------------------------------------

    def authenticate(self, user_id: str, secret: str) -> bool:
        ok = self._secrets.get(user_id) == secret
        if not ok:
            self.rejected += 1
        return ok

    def authorize(self, user_id: str, service: str) -> bool:
        ok = service in self._services.get(user_id, ())
        if not ok:
            self.rejected += 1
        return ok

    def account(
        self, user_id: str, event: str, at: float = 0.0
    ) -> None:
        self._accounting.append((user_id, event, at))

    def accounting_records(
        self, user_id: str
    ) -> List[Tuple[str, str, float]]:
        return [r for r in self._accounting if r[0] == user_id]


class BillingSystem(NativeStore):
    """Call-detail records and the post-paid invoice view."""

    PROFILE_DATA = (
        "call detail records", "billing plan", "invoice totals",
    )

    def __init__(self, name: str, network: str):
        if network not in ("PSTN", "Wireless"):
            raise StoreError(
                "billing systems belong to PSTN or Wireless"
            )
        super().__init__(name, network=network, region="core")
        #: user -> plan name ('flat', 'per-minute'...)
        self._plans: Dict[str, str] = {}
        #: (user, callee, minutes, cents)
        self._cdrs: List[Tuple[str, str, int, int]] = []

    def set_plan(self, user_id: str, plan: str) -> None:
        self._plans[user_id] = plan

    def plan_of(self, user_id: str) -> Optional[str]:
        return self._plans.get(user_id)

    def record_call(
        self, user_id: str, callee: str, minutes: int,
        rate_cents: int = 5,
    ) -> None:
        """Write one CDR; flat-plan calls rate to zero."""
        cents = (
            0 if self._plans.get(user_id) == "flat"
            else minutes * rate_cents
        )
        self._cdrs.append((user_id, callee, minutes, cents))

    def cdrs_for(
        self, user_id: str
    ) -> List[Tuple[str, str, int, int]]:
        return [r for r in self._cdrs if r[0] == user_id]

    def invoice_total(self, user_id: str) -> int:
        """Cents owed this cycle."""
        return sum(cents for _u, _c, _m, cents in self.cdrs_for(user_id))


class IspSessionStore(NativeStore):
    """Dial-up/broadband session state at the ISP (the Web row's
    "cross network info")."""

    PROFILE_DATA = (
        "connection state", "assigned IP address",
        "calling phone number",
    )

    def __init__(self, name: str):
        super().__init__(name, network="Web", region="internet")
        #: user -> (ip, calling number)
        self._sessions: Dict[str, Tuple[str, str]] = {}

    def connect(
        self, user_id: str, ip_address: str, calling_number: str = ""
    ) -> None:
        self._sessions[user_id] = (ip_address, calling_number)

    def disconnect(self, user_id: str) -> None:
        self._sessions.pop(user_id, None)

    def is_connected(self, user_id: str) -> bool:
        return user_id in self._sessions

    def session_of(
        self, user_id: str
    ) -> Optional[Tuple[str, str]]:
        return self._sessions.get(user_id)
