"""Native profile data stores of the four networks (paper Section 3.1):
PSTN switches, wireless HLR/VLR/MSC, SIP registrar/proxy, web portals,
presence servers, LDAP directories, and end-user devices."""

from repro.stores.base import NativeStore, StoreDirectory
from repro.stores.device import MobilePhone, Pda, PhoneBookEntry, SimCard
from repro.stores.directory import (
    STANDARD_CLASSES,
    DirectoryServer,
    Filter,
    LdapEntry,
    ObjectClass,
    parse_filter,
)
from repro.stores.hlr import HLR, MSC, VLR, SubscriberRecord
from repro.stores.presence import PresenceServer
from repro.stores.pstn import Class5Switch, LineRecord
from repro.stores.sharded import ShardedStore
from repro.stores.sip import Binding, SipProxy, SipRegistrar
from repro.stores.support import AAAServer, BillingSystem, IspSessionStore
from repro.stores.webportal import (
    AppointmentRecord,
    ContactRecord,
    EnterpriseServer,
    WebPortal,
)

__all__ = [
    "NativeStore", "StoreDirectory",
    "HLR", "VLR", "MSC", "SubscriberRecord",
    "Class5Switch", "LineRecord",
    "SipRegistrar", "SipProxy", "Binding",
    "AAAServer", "BillingSystem", "IspSessionStore",
    "WebPortal", "EnterpriseServer", "ContactRecord", "AppointmentRecord",
    "PresenceServer",
    "DirectoryServer", "LdapEntry", "ObjectClass", "Filter",
    "parse_filter", "STANDARD_CLASSES",
    "MobilePhone", "Pda", "SimCard", "PhoneBookEntry",
    "ShardedStore",
]
