"""PSTN class-5 switch (paper Section 3.1.1).

The switch is the multi-purpose box holding per-line service data:
call-forwarding numbers, barred numbers, the caller-id flag, 800-number
resolution. Two properties of the real thing are modelled faithfully
because the paper leans on them:

* profile data is **inside the switch**, "hard to access and extend" —
  there is no query interface beyond per-line feature reads;
* provisioning is **operator-mediated**: end users can self-provision
  only a small feature subset (call forwarding via the keypad), anything
  else raises :class:`~repro.errors.ProvisioningDeniedError`. The
  GUPster adapter (and experiment E11) quantifies the difference.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ProvisioningDeniedError, StoreError
from repro.stores.base import NativeStore

__all__ = ["LineRecord", "Class5Switch"]

#: Features an end user may set from the keypad (Section 3.1.1: "in some
#: cases (e.g., to set call forwarding numbers) the end-user can
#: self-provision through a phone's keypad").
SELF_PROVISIONABLE = frozenset({"call_forwarding"})


class LineRecord:
    """Service data for one directory number."""

    def __init__(self, number: str, user_id: str):
        self.number = number
        self.user_id = user_id
        self.call_forwarding: Optional[str] = None
        self.barred_numbers: List[str] = []
        self.caller_id_enabled: bool = True
        self.busy: bool = False


class Class5Switch(NativeStore):
    """A local exchange switch (5ESS-style) with its line database."""

    PROFILE_DATA = (
        "call forwarding number", "call barring numbers",
        "caller id flag", "800-number resolution", "call state",
    )

    def __init__(self, name: str):
        super().__init__(name, network="PSTN", region="core")
        self._lines: Dict[str, LineRecord] = {}
        self._tollfree: Dict[str, str] = {}
        self.calls_routed = 0
        self.calls_rejected = 0

    # -- line management (operator console) ----------------------------------

    def install_line(self, number: str, user_id: str) -> LineRecord:
        if number in self._lines:
            raise StoreError("line %r already installed" % number)
        record = LineRecord(number, user_id)
        self._lines[number] = record
        return record

    def line(self, number: str) -> LineRecord:
        record = self._lines.get(number)
        if record is None:
            raise StoreError("no line %r on this switch" % number)
        return record

    def has_line(self, number: str) -> bool:
        return number in self._lines

    def map_tollfree(self, tollfree: str, target: str) -> None:
        """800-number resolution entry (company profile data)."""
        self._tollfree[tollfree] = target

    # -- provisioning ----------------------------------------------------------

    def provision(
        self,
        number: str,
        feature: str,
        value,
        by_operator: bool = False,
    ) -> None:
        """Set a feature on a line.

        End users (``by_operator=False``) may only touch the
        self-provisionable subset; everything else needs the operator —
        the asymmetry the paper calls "quite cumbersome".
        """
        if not by_operator and feature not in SELF_PROVISIONABLE:
            raise ProvisioningDeniedError(
                "feature %r requires operator provisioning" % feature
            )
        record = self.line(number)
        if feature == "call_forwarding":
            record.call_forwarding = value
        elif feature == "barred_numbers":
            record.barred_numbers = list(value)
        elif feature == "caller_id_enabled":
            record.caller_id_enabled = bool(value)
        else:
            raise StoreError("unknown feature %r" % feature)

    # -- call processing ---------------------------------------------------------

    def route_call(self, caller: str, callee: str) -> str:
        """Route a call honoring line features.

        Returns ``'connected'``, ``'forwarded:<number>'``, ``'barred'``,
        ``'busy'``, or ``'no-such-line'``.
        """
        target = self._tollfree.get(callee, callee)
        record = self._lines.get(target)
        if record is None:
            self.calls_rejected += 1
            return "no-such-line"
        if caller in record.barred_numbers:
            self.calls_rejected += 1
            return "barred"
        if record.busy:
            if record.call_forwarding:
                self.calls_routed += 1
                return "forwarded:%s" % record.call_forwarding
            self.calls_rejected += 1
            return "busy"
        if record.call_forwarding:
            self.calls_routed += 1
            return "forwarded:%s" % record.call_forwarding
        self.calls_routed += 1
        return "connected"

    def set_busy(self, number: str, busy: bool) -> None:
        self.line(number).busy = busy

    def call_status(self, number: str) -> str:
        """The PSTN call-status signal the reach-me service aggregates."""
        return "busy" if self.line(number).busy else "idle"
