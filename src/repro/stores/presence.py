"""Instant-messaging presence server.

Presence is the most dynamic profile component the paper's reach-me
service aggregates ("presence information (e.g., IM status ...) from
the Internet"). The server keeps the current status per user and —
crucial for experiment E12 — supports **native push**: watchers are
called back on every status change, which GUPster's subscription layer
compares against polling.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.stores.base import NativeStore

__all__ = ["PresenceServer"]

Watcher = Callable[[str, str, str], None]  # (user_id, status, note)

VALID_STATUSES = ("available", "busy", "away", "offline")


class PresenceServer(NativeStore):
    """IM presence: status per user, with change notification."""

    PROFILE_DATA = ("presence status", "status note", "watcher lists")

    def __init__(self, name: str):
        super().__init__(name, network="Web", region="internet")
        self._status: Dict[str, Tuple[str, str]] = {}
        self._watchers: Dict[str, List[Watcher]] = {}
        #: user -> {buddy id: alias} (IM providers own the buddy list)
        self._buddies: Dict[str, Dict[str, str]] = {}
        self.notifications_sent = 0

    def set_status(
        self, user_id: str, status: str, note: str = ""
    ) -> None:
        if status not in VALID_STATUSES:
            raise ValueError("bad presence status %r" % status)
        previous = self._status.get(user_id)
        self._status[user_id] = (status, note)
        if previous != (status, note):
            for watcher in self._watchers.get(user_id, ()):  # push
                watcher(user_id, status, note)
                self.notifications_sent += 1

    def status(self, user_id: str) -> str:
        entry = self._status.get(user_id)
        return entry[0] if entry else "offline"

    def note(self, user_id: str) -> str:
        entry = self._status.get(user_id)
        return entry[1] if entry else ""

    def watch(self, user_id: str, watcher: Watcher) -> None:
        """Subscribe to status changes (native push)."""
        self._watchers.setdefault(user_id, []).append(watcher)

    def unwatch(self, user_id: str, watcher: Watcher) -> None:
        watchers = self._watchers.get(user_id, [])
        if watcher in watchers:
            watchers.remove(watcher)

    def watcher_count(self, user_id: str) -> int:
        return len(self._watchers.get(user_id, ()))

    # -- buddy lists -----------------------------------------------------------

    def add_buddy(
        self, user_id: str, buddy_id: str, alias: str = ""
    ) -> None:
        self._buddies.setdefault(user_id, {})[buddy_id] = alias

    def remove_buddy(self, user_id: str, buddy_id: str) -> None:
        self._buddies.get(user_id, {}).pop(buddy_id, None)

    def buddies(self, user_id: str) -> Dict[str, str]:
        """``{buddy id: alias}`` for one user."""
        return dict(self._buddies.get(user_id, {}))
