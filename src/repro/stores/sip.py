"""VoIP network elements: SIP registrar and proxy (paper Section 3.1.3).

"SIP registrars simply store a mapping between a SIP address (a VoIP
phone number) and the corresponding IP address of the endpoint. SIP
proxies are used for message routing and may store some user
information." Both are modelled: the registrar with expiring contact
bindings, the proxy with routing (and a hook for consulting profile
data, the "future SIP-based services" direction).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.stores.base import NativeStore

__all__ = ["Binding", "SipRegistrar", "SipProxy"]


class Binding:
    """One contact binding for an address-of-record."""

    def __init__(self, contact: str, expires_at: float, user_id: str):
        self.contact = contact
        self.expires_at = expires_at
        self.user_id = user_id


class SipRegistrar(NativeStore):
    """AOR → contact bindings with absolute expiry times.

    Expiry is evaluated against a caller-supplied ``now`` (virtual
    milliseconds), so the registrar composes with the simulator clock.
    """

    PROFILE_DATA = ("SIP address-of-record bindings",)

    def __init__(self, name: str):
        super().__init__(name, network="VoIP", region="internet")
        self._bindings: Dict[str, List[Binding]] = {}
        self.registrations = 0

    def register(
        self,
        aor: str,
        contact: str,
        user_id: str,
        now: float = 0.0,
        expires_ms: float = 3_600_000.0,
    ) -> Binding:
        binding = Binding(contact, now + expires_ms, user_id)
        bucket = self._bindings.setdefault(aor, [])
        bucket[:] = [b for b in bucket if b.contact != contact]
        bucket.append(binding)
        self.registrations += 1
        return binding

    def unregister(self, aor: str, contact: str) -> None:
        bucket = self._bindings.get(aor, [])
        bucket[:] = [b for b in bucket if b.contact != contact]

    def lookup(self, aor: str, now: float = 0.0) -> List[Binding]:
        """Live bindings for *aor* (expired ones are dropped)."""
        bucket = self._bindings.get(aor, [])
        bucket[:] = [b for b in bucket if b.expires_at > now]
        return list(bucket)

    def is_registered(self, aor: str, now: float = 0.0) -> bool:
        return bool(self.lookup(aor, now))


class SipProxy(NativeStore):
    """Routes SIP requests using the registrar's bindings."""

    PROFILE_DATA = ("message routing state", "user routing hints")

    def __init__(self, name: str, registrar: SipRegistrar):
        super().__init__(name, network="VoIP", region="internet")
        self.registrar = registrar
        #: Optional per-user routing hints (the profile data "future
        #: SIP-based services" would pull from other databases).
        self._hints: Dict[str, str] = {}
        self.routed = 0
        self.failed = 0

    def set_routing_hint(self, aor: str, hint: str) -> None:
        self._hints[aor] = hint

    def route(
        self, aor: str, now: float = 0.0
    ) -> Tuple[str, Optional[str]]:
        """Route a SIP INVITE. Returns ``(outcome, contact)`` where
        outcome is ``'proxied'``, ``'hinted'``, or ``'not-registered'``."""
        bindings = self.registrar.lookup(aor, now)
        if bindings:
            self.routed += 1
            return "proxied", bindings[-1].contact
        hint = self._hints.get(aor)
        if hint is not None:
            self.routed += 1
            return "hinted", hint
        self.failed += 1
        return "not-registered", None

    def call_status(self, aor: str, now: float = 0.0) -> str:
        """'online' when at least one live binding exists."""
        return (
            "online" if self.registrar.is_registered(aor, now)
            else "offline"
        )
