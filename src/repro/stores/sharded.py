"""Sharded GUP federation: one subscriber population, N replicas.

The paper's scalability story (Section 4, "GUPster can be built as a
family of mirrored servers"; Section 2's hundreds-of-millions-of-
subscribers HLRs) needs profile data *partitioned*, not just mirrored:
no single simulated store can hold a carrier population, but a fleet of
shards behind deterministic placement can.

:class:`ShardedStore` wraps that fleet. It looks like one logical
store — ``add_user`` / ``users`` / ``join(server)`` — but routes every
subscriber to one of N shard adapters through a
:class:`~repro.sharding.HashRing` (BLAKE2b placement, vnodes for
balance). Each shard is an ordinary :class:`~repro.adapters.base.
GupAdapter` with its own simnet endpoint, so the query engine needs
**no changes**: coverage registrations simply name the owning shard's
``store_id`` and referrals route there like to any other store.

``rebalance(new_shard_count)`` grows or shrinks the fleet, migrating
*only* the subscribers whose hash arc changed owner (the
:class:`~repro.sharding.RebalancePlan` contract — ≈ k/(n+k) of the
population for n → n+k growth) and patching coverage registrations
in place for every server the fleet has joined.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple,
)

from repro.adapters.base import GupAdapter
from repro.errors import AdapterError
from repro.sharding import HashRing, RebalancePlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bus import ChangeBus

__all__ = ["ShardedStore"]

#: Builds the adapter for one shard: factory(shard_id, region).
AdapterFactory = Callable[[str, str], GupAdapter]


def _default_factory(shard_id: str, region: str) -> GupAdapter:
    # Local import: repro.workloads depends on repro.adapters, never on
    # repro.stores, so this edge is acyclic — but keeping it out of the
    # module top level means importing repro.stores does not drag the
    # workload generators in.
    from repro.workloads.synthetic import SyntheticAdapter

    return SyntheticAdapter(shard_id, region=region)


class ShardedStore:
    """A logical store partitioned over N shard adapters by a hash
    ring."""

    def __init__(
        self,
        base_id: str,
        shard_count: int,
        network: Optional[object] = None,
        region: str = "internet",
        adapter_factory: Optional[AdapterFactory] = None,
        vnodes: int = 64,
    ) -> None:
        if shard_count < 1:
            raise ValueError("need at least one shard")
        self.base_id = base_id
        self.region = region
        self._factory: AdapterFactory = (
            adapter_factory if adapter_factory is not None
            else _default_factory
        )
        #: shard id -> adapter, in ring registration order.
        self.shards: Dict[str, GupAdapter] = {}
        for index in range(shard_count):
            shard_id = self._shard_name(index)
            self.shards[shard_id] = self._factory(shard_id, region)
        self.ring = HashRing(list(self.shards), vnodes=vnodes)
        self._network = network
        if network is not None:
            self._attach_nodes(network, list(self.shards))
        #: Servers whose coverage maps name our shards (join() adds).
        self._servers: List[object] = []
        self.migrated_users = 0

    def _shard_name(self, index: int) -> str:
        return "%s-s%03d" % (self.base_id, index)

    def _attach_nodes(self, network: object, shard_ids: Sequence[str]) -> None:
        for shard_id in shard_ids:
            if not network.has_node(  # type: ignore[attr-defined]
                shard_id
            ):
                network.add_node(  # type: ignore[attr-defined]
                    shard_id, region=self.region
                )

    # -- the logical-store surface ------------------------------------------

    def __len__(self) -> int:
        return len(self.shards)

    def shard_for(self, user_id: str) -> str:
        """The shard id owning *user_id* (pure ring placement)."""
        return self.ring.place(user_id)

    def adapter_for(self, user_id: str) -> GupAdapter:
        """The shard adapter owning *user_id*."""
        return self.shards[self.ring.place(user_id)]

    def bind_bus(self, bus: "ChangeBus") -> None:
        """Route *bus* appends into per-shard change logs by ring
        placement — each shard keeps its own monotonic sequence, so
        E20's write fan-out partitions exactly like the data does."""
        bus.use_shard_router(self.shard_for, shard_ids=list(self.shards))

    def add_user(self, user_id: str, components: Sequence[str]) -> str:
        """Place *user_id* on its owning shard; returns the shard id."""
        shard_id = self.ring.place(user_id)
        self.shards[shard_id].add_user(  # type: ignore[attr-defined]
            user_id, components
        )
        for server in self._servers:
            self._register_user(server, shard_id, user_id)
        return shard_id

    def users(self) -> List[str]:
        """Every subscriber across all shards, sorted."""
        merged: List[str] = []
        for adapter in self.shards.values():
            merged.extend(adapter.users())
        return sorted(merged)

    def user_counts(self) -> Dict[str, int]:
        """shard id -> resident subscriber count (balance check)."""
        return {
            shard_id: len(adapter.users())
            for shard_id, adapter in self.shards.items()
        }

    def get(self, path: object) -> object:
        """Route a read to the owning shard (convenience for direct
        use; the query engine goes through referrals instead)."""
        from repro.pxml import parse_path

        parsed = parse_path(path)  # type: ignore[arg-type]
        user_id = parsed.user_id()
        if user_id is None:
            raise AdapterError(
                "sharded get must identify the user: %s" % parsed
            )
        return self.shards[self.ring.place(user_id)].get(parsed)

    # -- community membership ------------------------------------------------

    def join(self, server: object, user_ids: Optional[List[str]] = None) -> int:
        """Every shard joins *server*; registrations land under the
        owning shard's store id. Returns total registrations."""
        count = 0
        for adapter in self.shards.values():
            count += server.join(  # type: ignore[attr-defined]
                adapter, user_ids=user_ids
            )
        if server not in self._servers:
            self._servers.append(server)
        return count

    def _register_user(
        self, server: object, shard_id: str, user_id: str
    ) -> None:
        adapter = self.shards[shard_id]
        for path in adapter.coverage_paths(user_id):
            server.coverage.register(  # type: ignore[attr-defined]
                path, shard_id
            )

    def _unregister_user(
        self, server: object, shard_id: str, user_id: str,
        paths: Sequence[str],
    ) -> None:
        for path in paths:
            server.coverage.unregister(  # type: ignore[attr-defined]
                path, shard_id
            )

    # -- membership changes ---------------------------------------------------

    def rebalance(self, new_shard_count: int) -> RebalancePlan:
        """Grow/shrink the fleet to *new_shard_count* shards, migrating
        only the subscribers whose arc changed owner.

        Coverage registrations at every joined server are patched for
        exactly the moved subscribers; nobody else's referrals change.
        Returns the ring's :class:`~repro.sharding.RebalancePlan`."""
        if new_shard_count < 1:
            raise ValueError("need at least one shard")
        target_ids = [
            self._shard_name(index) for index in range(new_shard_count)
        ]
        plan = self.ring.rebalance(target_ids)
        # Create adapters (and simnet endpoints) for added shards first
        # so migrations have a destination.
        for shard_id in plan.added:
            self.shards[shard_id] = self._factory(shard_id, self.region)
        if self._network is not None and plan.added:
            self._attach_nodes(self._network, plan.added)
        # Migrate every user the plan moved. Users on *removed* shards
        # always move; users on surviving shards move only when an
        # added shard's vnode landed inside their old arc.
        moved: List[Tuple[str, str, str]] = []  # (user, frm, to)
        for shard_id in list(self.shards):
            if shard_id in plan.added:
                continue  # freshly created, holds nobody yet
            adapter = self.shards[shard_id]
            for user_id in adapter.users():
                target = self.ring.place(user_id)
                if target != shard_id:
                    moved.append((user_id, shard_id, target))
        for user_id, frm, to in moved:
            self._migrate_user(user_id, frm, to)
        self.migrated_users += len(moved)
        # Removed shards must now be empty; drop them (and leave any
        # servers they joined).
        for shard_id in plan.removed:
            adapter = self.shards.pop(shard_id)
            leftover = adapter.users()
            if leftover:  # pragma: no cover - migration is total
                raise AdapterError(
                    "rebalance left %d user(s) on removed shard %s"
                    % (len(leftover), shard_id)
                )
            for server in self._servers:
                server.adapters.pop(  # type: ignore[attr-defined]
                    shard_id, None
                )
        # Advertise the new shards' adapters to the joined servers.
        for server in self._servers:
            for shard_id in plan.added:
                server.adapters[  # type: ignore[index]
                    shard_id
                ] = self.shards[shard_id]
        return plan

    def _migrate_user(self, user_id: str, frm: str, to: str) -> None:
        source = self.shards[frm]
        dest = self.shards[to]
        old_paths = source.coverage_paths(user_id)
        holdings = getattr(source, "holdings", None)
        remove = getattr(source, "remove_user", None)
        add = getattr(dest, "add_user", None)
        if holdings is not None and remove is not None and add is not None:
            # Fast path (SyntheticAdapter and friends): move the
            # component inventory plus any written overrides without
            # materializing the generated profile.
            components = holdings(user_id)
            overrides = remove(user_id)
            add(user_id, components)
            for component, fragment in overrides.items():
                dest.apply_component(user_id, component, fragment)
        else:  # pragma: no cover - generic adapters in future PRs
            view = source.export_user(user_id)
            if view is None:
                raise AdapterError(
                    "cannot migrate %s: %s exports nothing"
                    % (user_id, frm)
                )
            for child in view.children:
                dest.apply_component(user_id, child.tag, child)
        for server in self._servers:
            self._unregister_user(server, frm, user_id, old_paths)
            self._register_user(server, to, user_id)

    # -- introspection --------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        counts = self.user_counts()
        return {
            "shards": len(self.shards),
            "vnodes": self.ring.vnodes,
            "users": sum(counts.values()),
            "min_shard_users": min(counts.values()) if counts else 0,
            "max_shard_users": max(counts.values()) if counts else 0,
            "migrated_users": self.migrated_users,
        }

    def __repr__(self) -> str:
        return "<ShardedStore %s x%d shard(s)>" % (
            self.base_id, len(self.shards),
        )
