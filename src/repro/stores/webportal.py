"""Web-side profile stores: internet portal and enterprise intranet
(paper Section 3.1.4).

The portal (think Yahoo!) holds address books, calendars, game scores
and bookmarks in its own record format; the enterprise server (think
the Lucent intranet) holds the corporate address book and calendar
behind a firewall flag. Neither speaks XML natively — the portal
adapter does the GUP translation.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import StoreError
from repro.stores.base import NativeStore

__all__ = ["ContactRecord", "AppointmentRecord", "WebPortal",
           "EnterpriseServer"]


class ContactRecord:
    """Native address-book entry (flat record, portal style)."""

    def __init__(
        self,
        contact_id: str,
        display_name: str,
        kind: str = "personal",
        phones: Optional[Dict[str, str]] = None,
        emails: Optional[Dict[str, str]] = None,
    ):
        if kind not in ("personal", "corporate"):
            raise StoreError("bad contact kind %r" % kind)
        self.contact_id = contact_id
        self.display_name = display_name
        self.kind = kind
        self.phones = dict(phones or {})
        self.emails = dict(emails or {})


class AppointmentRecord:
    """Native calendar entry."""

    def __init__(
        self,
        appt_id: str,
        start: str,
        end: str,
        subject: str,
        where: str = "",
        visibility: str = "private",
    ):
        self.appt_id = appt_id
        self.start = start
        self.end = end
        self.subject = subject
        self.where = where
        self.visibility = visibility


class WebPortal(NativeStore):
    """An internet portal hosting per-user profile slices."""

    PROFILE_DATA = (
        "address book", "calendar", "game scores", "bookmarks",
        "e-commerce profile",
    )

    def __init__(self, name: str, region: str = "internet"):
        super().__init__(name, network="Web", region=region)
        self._contacts: Dict[str, Dict[str, ContactRecord]] = {}
        self._calendar: Dict[str, Dict[str, AppointmentRecord]] = {}
        self._scores: Dict[str, Dict[str, int]] = {}
        self._bookmarks: Dict[str, Dict[str, str]] = {}
        self.reads = 0
        self.writes = 0

    # -- accounts ----------------------------------------------------------

    def create_account(self, user_id: str) -> None:
        if user_id in self._contacts:
            raise StoreError("account %r exists" % user_id)
        self._contacts[user_id] = {}
        self._calendar[user_id] = {}
        self._scores[user_id] = {}
        self._bookmarks[user_id] = {}

    def has_account(self, user_id: str) -> bool:
        return user_id in self._contacts

    def accounts(self) -> List[str]:
        return sorted(self._contacts)

    def _require(self, user_id: str) -> None:
        if user_id not in self._contacts:
            raise StoreError("no account %r" % user_id)

    # -- address book ---------------------------------------------------------

    def put_contact(self, user_id: str, record: ContactRecord) -> None:
        self._require(user_id)
        self._contacts[user_id][record.contact_id] = record
        self.writes += 1

    def delete_contact(self, user_id: str, contact_id: str) -> None:
        self._require(user_id)
        self._contacts[user_id].pop(contact_id, None)
        self.writes += 1

    def contacts(self, user_id: str) -> List[ContactRecord]:
        self._require(user_id)
        self.reads += 1
        return list(self._contacts[user_id].values())

    # -- calendar ----------------------------------------------------------------

    def put_appointment(
        self, user_id: str, record: AppointmentRecord
    ) -> None:
        self._require(user_id)
        self._calendar[user_id][record.appt_id] = record
        self.writes += 1

    def appointments(self, user_id: str) -> List[AppointmentRecord]:
        self._require(user_id)
        self.reads += 1
        return sorted(
            self._calendar[user_id].values(), key=lambda a: a.start
        )

    # -- game scores / bookmarks ---------------------------------------------------

    def set_score(self, user_id: str, game: str, score: int) -> None:
        self._require(user_id)
        self._scores[user_id][game] = score
        self.writes += 1

    def scores(self, user_id: str) -> Dict[str, int]:
        self._require(user_id)
        self.reads += 1
        return dict(self._scores[user_id])

    def add_bookmark(self, user_id: str, mark_id: str, url: str) -> None:
        self._require(user_id)
        self._bookmarks[user_id][mark_id] = url
        self.writes += 1

    def bookmarks(self, user_id: str) -> Dict[str, str]:
        self._require(user_id)
        self.reads += 1
        return dict(self._bookmarks[user_id])


class EnterpriseServer(WebPortal):
    """Corporate intranet server: same record model as a portal, but
    only *corporate* data, behind a firewall (the adapter refuses
    personal entries and external callers must be authorized)."""

    PROFILE_DATA = ("corporate address book", "corporate calendar",
                    "employee directory entry")

    def __init__(self, name: str, company: str):
        super().__init__(name, region="enterprise")
        self.company = company

    def put_contact(self, user_id: str, record: ContactRecord) -> None:
        if record.kind != "corporate":
            raise StoreError(
                "enterprise server only stores corporate contacts"
            )
        super().put_contact(user_id, record)
