"""A miniature LDAP directory server (paper Section 6, "LDAP-based
approaches").

Implements just enough of LDAP to make the paper's XML-vs-LDAP
comparison runnable rather than rhetorical:

* a DIT of entries addressed by distinguished names,
* object classes with required/optional attributes ("objects are
  modeled with 'aspects' and can always implement a new objectclass"),
* flat entries — each attribute maps to a *list of atomic values*
  ("LDAP objects are very simple (and flat)"),
* a search filter language ``(&(objectClass=person)(uid=a*))``,
* **opaque blobs**, the Netscape roaming-profile workaround: nested
  data (address book, bookmarks) stored as a single binary value that
  "can only be accessed (retrieved or updated) as a whole",
* subtree referral to another server, LDAP's scaling advantage
  ("straightforward to move arbitrary sub-trees to different servers").

Experiment E9 drives all of this against the GUP XML equivalent.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.errors import StoreError
from repro.stores.base import NativeStore

__all__ = [
    "ObjectClass", "LdapEntry", "Filter", "parse_filter",
    "DirectoryServer", "STANDARD_CLASSES",
]


# ---------------------------------------------------------------------------
# Schema: object classes
# ---------------------------------------------------------------------------

class ObjectClass:
    """An LDAP object class: required (must) and optional (may) attrs."""

    def __init__(
        self,
        name: str,
        must: Sequence[str] = (),
        may: Sequence[str] = (),
    ):
        self.name = name
        self.must = tuple(must)
        self.may = tuple(may)


#: A small cut of the standard + DEN-ish classes the paper mentions.
STANDARD_CLASSES: Dict[str, ObjectClass] = {
    oc.name: oc
    for oc in (
        ObjectClass("top", may=("description",)),
        ObjectClass(
            "person",
            must=("cn", "sn"),
            may=("telephoneNumber", "userPassword", "seeAlso"),
        ),
        ObjectClass(
            "organizationalPerson",
            may=("title", "ou", "postalAddress", "mail"),
        ),
        ObjectClass(
            "inetOrgPerson",
            may=("uid", "mail", "mobile", "employeeNumber",
                 "preferredLanguage"),
        ),
        ObjectClass("organizationalUnit", must=("ou",)),
        ObjectClass("organization", must=("o",)),
        # The Netscape roaming-profile style container: one opaque blob.
        ObjectClass(
            "roamingProfileObject",
            must=("profileName", "profileBlob"),
        ),
        # DEN-ish device class.
        ObjectClass(
            "networkDevice",
            must=("deviceId",),
            may=("deviceType", "carrier", "capability"),
        ),
    )
}


# ---------------------------------------------------------------------------
# Entries
# ---------------------------------------------------------------------------

def _normalize_dn(dn: str) -> str:
    return ",".join(part.strip() for part in dn.split(",")).lower()


class LdapEntry:
    """One DIT entry: a flat bag of (attribute, [values])."""

    def __init__(
        self,
        dn: str,
        object_classes: Sequence[str],
        attrs: Dict[str, List[str]],
    ):
        self.dn = _normalize_dn(dn)
        self.object_classes: Set[str] = set(object_classes)
        self.attrs: Dict[str, List[str]] = {
            key.lower(): list(values) for key, values in attrs.items()
        }

    def values(self, attr: str) -> List[str]:
        return self.attrs.get(attr.lower(), [])

    def first(self, attr: str) -> Optional[str]:
        values = self.values(attr)
        return values[0] if values else None

    def byte_size(self) -> int:
        """Wire size of the whole entry (LDAP returns whole objects)."""
        total = len(self.dn)
        for key, values in self.attrs.items():
            for value in values:
                total += len(key) + len(value) + 2
        return total

    def parent_dn(self) -> Optional[str]:
        if "," not in self.dn:
            return None
        return self.dn.split(",", 1)[1]


# ---------------------------------------------------------------------------
# Search filters
# ---------------------------------------------------------------------------

class Filter:
    """Parsed LDAP search filter (eq / prefix / presence / and/or/not)."""

    def __init__(self, kind: str, attr: str = "", value: str = "",
                 children: Sequence["Filter"] = ()):
        self.kind = kind
        self.attr = attr.lower()
        self.value = value
        self.children = list(children)

    def matches(self, entry: LdapEntry) -> bool:
        if self.kind == "and":
            return all(c.matches(entry) for c in self.children)
        if self.kind == "or":
            return any(c.matches(entry) for c in self.children)
        if self.kind == "not":
            return not self.children[0].matches(entry)
        values = entry.values(self.attr)
        if self.attr == "objectclass":
            values = sorted(entry.object_classes)
        if self.kind == "present":
            return bool(values)
        if self.kind == "eq":
            return any(v.lower() == self.value.lower() for v in values)
        if self.kind == "prefix":
            return any(
                v.lower().startswith(self.value.lower()) for v in values
            )
        raise StoreError("unknown filter kind %r" % self.kind)


def parse_filter(text: str) -> Filter:
    """Parse an RFC-2254-style filter string."""
    parser = _FilterParser(text.strip())
    result = parser.parse()
    if parser.pos != len(parser.text):
        raise StoreError("trailing characters in filter %r" % text)
    return result


class _FilterParser:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def parse(self) -> Filter:
        if not self._consume("("):
            raise StoreError("filter must start with '('")
        ch = self._peek()
        if ch == "&":
            self.pos += 1
            return self._composite("and")
        if ch == "|":
            self.pos += 1
            return self._composite("or")
        if ch == "!":
            self.pos += 1
            inner = self.parse()
            if not self._consume(")"):
                raise StoreError("unterminated (!...) filter")
            return Filter("not", children=[inner])
        return self._simple()

    def _composite(self, kind: str) -> Filter:
        children = []
        while self._peek() == "(":
            children.append(self.parse())
        if not self._consume(")"):
            raise StoreError("unterminated composite filter")
        if not children:
            raise StoreError("empty composite filter")
        return Filter(kind, children=children)

    def _simple(self) -> Filter:
        eq = self.text.find("=", self.pos)
        close = self.text.find(")", self.pos)
        if eq < 0 or close < 0 or eq > close:
            raise StoreError("malformed simple filter")
        attr = self.text[self.pos : eq].strip()
        value = self.text[eq + 1 : close]
        self.pos = close + 1
        if not attr:
            raise StoreError("empty attribute in filter")
        if value == "*":
            return Filter("present", attr)
        if value.endswith("*") and "*" not in value[:-1]:
            return Filter("prefix", attr, value[:-1])
        if "*" in value:
            raise StoreError("only trailing-* substring supported")
        return Filter("eq", attr, value)

    def _peek(self) -> Optional[str]:
        return self.text[self.pos] if self.pos < len(self.text) else None

    def _consume(self, token: str) -> bool:
        if self.text.startswith(token, self.pos):
            self.pos += len(token)
            return True
        return False


# ---------------------------------------------------------------------------
# The server
# ---------------------------------------------------------------------------

class DirectoryServer(NativeStore):
    """A mini LDAP server over one DIT (or a subtree of one)."""

    PROFILE_DATA = (
        "employee directory entries", "roaming profile blobs",
        "device records",
    )

    def __init__(
        self,
        name: str,
        suffix: str,
        classes: Optional[Dict[str, ObjectClass]] = None,
        region: str = "enterprise",
    ):
        super().__init__(name, network="Web", region=region)
        self.suffix = _normalize_dn(suffix)
        self.classes = dict(classes or STANDARD_CLASSES)
        self._entries: Dict[str, LdapEntry] = {}
        #: Subtrees delegated to other servers: dn-suffix -> server name.
        self._referrals: Dict[str, str] = {}
        self.searches = 0

    # -- updates ------------------------------------------------------------

    def add(self, entry: LdapEntry) -> None:
        if not entry.dn.endswith(self.suffix):
            raise StoreError(
                "dn %r outside suffix %r" % (entry.dn, self.suffix)
            )
        if entry.dn in self._entries:
            raise StoreError("entry %r exists" % entry.dn)
        self._validate(entry)
        self._entries[entry.dn] = entry

    def modify(self, dn: str, attr: str, values: List[str]) -> None:
        entry = self.entry(dn)
        entry.attrs[attr.lower()] = list(values)
        self._validate(entry)

    def delete(self, dn: str) -> None:
        dn = _normalize_dn(dn)
        if dn not in self._entries:
            raise StoreError("no entry %r" % dn)
        del self._entries[dn]

    def entry(self, dn: str) -> LdapEntry:
        found = self._entries.get(_normalize_dn(dn))
        if found is None:
            raise StoreError("no entry %r" % dn)
        return found

    def has_entry(self, dn: str) -> bool:
        return _normalize_dn(dn) in self._entries

    def _validate(self, entry: LdapEntry) -> None:
        for class_name in entry.object_classes:
            decl = self.classes.get(class_name)
            if decl is None:
                raise StoreError("unknown objectClass %r" % class_name)
            for must in decl.must:
                if not entry.values(must):
                    raise StoreError(
                        "entry %r missing required %r of %r"
                        % (entry.dn, must, class_name)
                    )
        allowed = {"objectclass"}
        for class_name in entry.object_classes:
            decl = self.classes[class_name]
            allowed.update(a.lower() for a in decl.must)
            allowed.update(a.lower() for a in decl.may)
        for attr in entry.attrs:
            if attr not in allowed:
                raise StoreError(
                    "attribute %r not allowed by object classes of %r"
                    % (attr, entry.dn)
                )

    # -- search ------------------------------------------------------------

    def search(
        self,
        base: str,
        scope: str = "sub",
        filter_text: str = "(objectClass=*)",
    ) -> List[LdapEntry]:
        """LDAP search. ``scope`` is ``'base'``, ``'one'`` or ``'sub'``."""
        if scope not in ("base", "one", "sub"):
            raise StoreError("bad scope %r" % scope)
        self.searches += 1
        base = _normalize_dn(base)
        parsed = parse_filter(filter_text)
        results = []
        for dn, entry in self._entries.items():
            if scope == "base":
                in_scope = dn == base
            elif scope == "one":
                in_scope = entry.parent_dn() == base
            else:
                in_scope = dn == base or dn.endswith("," + base)
            if in_scope and parsed.matches(entry):
                results.append(entry)
        return sorted(results, key=lambda e: e.dn)

    # -- subtree delegation ---------------------------------------------------

    def delegate_subtree(self, subtree_dn: str, server_name: str) -> None:
        """Record that *subtree_dn* now lives on another server (the
        LDAP scaling move the paper credits)."""
        self._referrals[_normalize_dn(subtree_dn)] = server_name

    def referral_for(self, dn: str) -> Optional[str]:
        dn = _normalize_dn(dn)
        for subtree, server in self._referrals.items():
            if dn == subtree or dn.endswith("," + subtree):
                return server
        return None

    def export_subtree(self, subtree_dn: str) -> List[LdapEntry]:
        """Entries of a subtree (used when moving it to a new server)."""
        subtree_dn = _normalize_dn(subtree_dn)
        return [
            entry
            for dn, entry in sorted(self._entries.items())
            if dn == subtree_dn or dn.endswith("," + subtree_dn)
        ]

    @property
    def entry_count(self) -> int:
        return len(self._entries)
