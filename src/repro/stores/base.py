"""Base class and registry for native profile data stores.

Section 3.1 of the paper surveys where profile data lives today: PSTN
class-5 switches, wireless HLR/VLR/MSC, SIP registrars/proxies, web
portals, enterprise directories, and end-user devices. Each concrete
store in this package models one of those locations **in its native
data model** (feature bitmaps in switches, records in the HLR, bindings
in registrars, dicts in portals, DIT entries in LDAP) — deliberately
*not* XML, because the whole point of GUP adapters is bridging that
heterogeneity (requirement 3).

:class:`NativeStore` also carries the metadata that regenerates the
paper's Figure 5 table ("where profile data is stored"): each store
declares its network and the kinds of profile data it holds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["NativeStore", "StoreDirectory"]


class NativeStore:
    """A profile-bearing element of some network.

    Parameters
    ----------
    name:
        Unique node name (also the simulated-network node name).
    network:
        One of ``'PSTN'``, ``'Wireless'``, ``'VoIP'``, ``'Web'`` —
        the rows of Figure 5.
    region:
        Latency region for the network simulator.
    """

    #: Human-readable kinds of profile data this store class holds
    #: (column 2 of Figure 5). Subclasses override.
    PROFILE_DATA: Tuple[str, ...] = ()

    def __init__(self, name: str, network: str, region: str):
        self.name = name
        self.network = network
        self.region = region

    def profile_data_kinds(self) -> Tuple[str, ...]:
        return self.PROFILE_DATA

    def __repr__(self) -> str:
        return "<%s %s (%s)>" % (
            type(self).__name__, self.name, self.network,
        )


class StoreDirectory:
    """Registry of the native stores in one simulated world.

    Used by the Figure 5 bench to regenerate the placement table, and by
    scenario builders to wire adapters to stores.
    """

    def __init__(self):
        self._stores: Dict[str, NativeStore] = {}

    def add(self, store: NativeStore) -> NativeStore:
        if store.name in self._stores:
            raise ValueError("store %r already registered" % store.name)
        self._stores[store.name] = store
        return store

    def get(self, name: str) -> Optional[NativeStore]:
        return self._stores.get(name)

    def all(self) -> List[NativeStore]:
        return list(self._stores.values())

    def by_network(self, network: str) -> List[NativeStore]:
        return [
            s for s in self._stores.values() if s.network == network
        ]

    def placement_table(self) -> List[Tuple[str, List[str]]]:
        """Rows of Figure 5: (network, sorted location kinds)."""
        table: Dict[str, set] = {}
        for store in self._stores.values():
            bucket = table.setdefault(store.network, set())
            bucket.add(type(store).__name__)
        return [
            (network, sorted(kinds))
            for network, kinds in sorted(table.items())
        ]
