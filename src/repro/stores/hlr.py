"""Wireless network elements: HLR, VLR, MSC (paper Section 3.1.2).

The Home Location Register holds each subscriber's permanent profile
(identity, numbers, service settings like forwarding/barring/roaming)
plus the dynamic location pointer (which VLR currently serves them).
Visitor Location Registers cache a snapshot of the profile for
subscribers roaming in their area; Mobile Switching Centers interrogate
the HLR for call delivery, exactly as the paper describes:

    "When a user moves from one cell to another, a different VLR may be
    used. The new VLR will send this new location information to the
    HLR ... The HLR will cancel the location information in the old
    VLR after it receives new location information."

The records are plain Python objects — the native (non-XML) data model
that :mod:`repro.adapters.hlr_adapter` later exports as GUP components.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import StoreError, UnknownSubscriberError
from repro.stores.base import NativeStore

__all__ = ["SubscriberRecord", "HLR", "VLR", "MSC"]


class SubscriberRecord:
    """Permanent subscriber data held in the HLR."""

    def __init__(self, msisdn: str, imsi: str, user_id: str):
        #: Telephone number.
        self.msisdn = msisdn
        #: SIM identity (authentication key surrogate).
        self.imsi = imsi
        #: Converged-network user identity (links records across stores).
        self.user_id = user_id
        # Service settings (the "subscriber profile" of Section 3.1.2).
        self.call_forwarding: Optional[str] = None
        self.barred_numbers: List[str] = []
        self.roaming_allowed: bool = True
        self.caller_id_enabled: bool = True
        self.prepaid: bool = False
        self.services: Dict[str, str] = {}
        # Dynamic data.
        self.current_vlr: Optional[str] = None
        self.current_cell: Optional[str] = None
        self.on_air: bool = False

    def snapshot(self) -> "SubscriberRecord":
        """Copy for VLR caching (the 'temporary information')."""
        dup = SubscriberRecord(self.msisdn, self.imsi, self.user_id)
        dup.call_forwarding = self.call_forwarding
        dup.barred_numbers = list(self.barred_numbers)
        dup.roaming_allowed = self.roaming_allowed
        dup.caller_id_enabled = self.caller_id_enabled
        dup.prepaid = self.prepaid
        dup.services = dict(self.services)
        dup.current_vlr = self.current_vlr
        dup.current_cell = self.current_cell
        dup.on_air = self.on_air
        return dup


class HLR(NativeStore):
    """Home Location Register: the master wireless profile store."""

    PROFILE_DATA = (
        "subscriber identity", "telephone numbers", "call forwarding",
        "call barring", "roaming settings", "location", "service list",
    )

    def __init__(self, name: str, carrier: str):
        super().__init__(name, network="Wireless", region="core")
        self.carrier = carrier
        self._by_msisdn: Dict[str, SubscriberRecord] = {}
        self._by_user: Dict[str, SubscriberRecord] = {}
        #: VLR name -> VLR object; registered via attach_vlr.
        self._vlrs: Dict[str, "VLR"] = {}
        # Operation counters (benchmarks read these).
        self.lookups = 0
        self.updates = 0

    # -- provisioning --------------------------------------------------------

    def provision_subscriber(
        self, msisdn: str, imsi: str, user_id: str
    ) -> SubscriberRecord:
        if msisdn in self._by_msisdn:
            raise StoreError("msisdn %r already provisioned" % msisdn)
        record = SubscriberRecord(msisdn, imsi, user_id)
        self._by_msisdn[msisdn] = record
        self._by_user[user_id] = record
        self.updates += 1
        return record

    def remove_subscriber(self, msisdn: str) -> None:
        record = self._record(msisdn)
        del self._by_msisdn[msisdn]
        self._by_user.pop(record.user_id, None)
        self.updates += 1

    def set_call_forwarding(
        self, msisdn: str, target: Optional[str]
    ) -> None:
        self._record(msisdn).call_forwarding = target
        self.updates += 1
        self._refresh_vlr(msisdn)

    def set_barring(self, msisdn: str, barred: List[str]) -> None:
        self._record(msisdn).barred_numbers = list(barred)
        self.updates += 1
        self._refresh_vlr(msisdn)

    # -- queries ------------------------------------------------------------

    def subscriber(self, msisdn: str) -> SubscriberRecord:
        self.lookups += 1
        return self._record(msisdn)

    def subscriber_by_user(self, user_id: str) -> SubscriberRecord:
        self.lookups += 1
        record = self._by_user.get(user_id)
        if record is None:
            raise UnknownSubscriberError("no subscriber for %r" % user_id)
        return record

    def has_subscriber(self, msisdn: str) -> bool:
        return msisdn in self._by_msisdn

    def all_subscribers(self) -> List[SubscriberRecord]:
        return list(self._by_msisdn.values())

    def user_ids(self) -> List[str]:
        return sorted(self._by_user)

    def routing_info(self, msisdn: str) -> Optional[str]:
        """The MSC/VLR currently able to deliver a call (None if the
        subscriber is detached) — the per-call HLR interrogation."""
        record = self.subscriber(msisdn)
        if not record.on_air or record.current_vlr is None:
            return None
        return record.current_vlr

    # -- mobility ----------------------------------------------------------

    def attach_vlr(self, vlr: "VLR") -> None:
        self._vlrs[vlr.name] = vlr

    def location_update(
        self, msisdn: str, vlr_name: str, cell: str
    ) -> None:
        """Process a location-update request from a VLR: point the master
        record at the new VLR, push a profile snapshot there, and cancel
        the old VLR's copy."""
        if vlr_name not in self._vlrs:
            raise StoreError("unknown VLR %r" % vlr_name)
        record = self._record(msisdn)
        old_vlr = record.current_vlr
        record.current_vlr = vlr_name
        record.current_cell = cell
        record.on_air = True
        self.updates += 1
        self._vlrs[vlr_name].install(record.snapshot())
        if old_vlr is not None and old_vlr != vlr_name:
            self._vlrs[old_vlr].cancel(msisdn)

    def detach(self, msisdn: str) -> None:
        record = self._record(msisdn)
        if record.current_vlr is not None:
            self._vlrs[record.current_vlr].cancel(msisdn)
        record.current_vlr = None
        record.on_air = False
        self.updates += 1

    # -- internals ------------------------------------------------------------

    def _record(self, msisdn: str) -> SubscriberRecord:
        record = self._by_msisdn.get(msisdn)
        if record is None:
            raise UnknownSubscriberError("unknown msisdn %r" % msisdn)
        return record

    def _refresh_vlr(self, msisdn: str) -> None:
        """Keep the serving VLR's snapshot coherent after profile edits."""
        record = self._by_msisdn[msisdn]
        if record.current_vlr is not None:
            self._vlrs[record.current_vlr].install(record.snapshot())


class VLR(NativeStore):
    """Visitor Location Register: temporary snapshots for visitors."""

    PROFILE_DATA = ("visiting-subscriber snapshot", "current cell")

    def __init__(self, name: str, served_cells: List[str]):
        super().__init__(name, network="Wireless", region="core")
        self.served_cells = list(served_cells)
        self._visitors: Dict[str, SubscriberRecord] = {}

    def serves(self, cell: str) -> bool:
        return cell in self.served_cells

    def install(self, snapshot: SubscriberRecord) -> None:
        self._visitors[snapshot.msisdn] = snapshot

    def cancel(self, msisdn: str) -> None:
        self._visitors.pop(msisdn, None)

    def visitor(self, msisdn: str) -> Optional[SubscriberRecord]:
        return self._visitors.get(msisdn)

    @property
    def visitor_count(self) -> int:
        return len(self._visitors)


class MSC(NativeStore):
    """Mobile Switching Center: call control, gateway to the PSTN."""

    PROFILE_DATA = ("transient call state",)

    def __init__(self, name: str, hlr: HLR, vlr: VLR):
        super().__init__(name, network="Wireless", region="core")
        self.hlr = hlr
        self.vlr = vlr
        self.delivered = 0
        self.rejected = 0

    def handle_power_on(self, msisdn: str, cell: str) -> None:
        """Device registration: triggers the location-update flow."""
        if not self.vlr.serves(cell):
            raise StoreError(
                "%s does not serve cell %r" % (self.vlr.name, cell)
            )
        self.hlr.location_update(msisdn, self.vlr.name, cell)

    def deliver_call(self, caller: str, callee_msisdn: str) -> str:
        """Call delivery per Section 3.1.2: interrogate the HLR, apply
        barring/forwarding, route to the serving VLR/MSC.

        Returns a routing decision string: ``'vlr:<name>'``,
        ``'forwarded:<number>'``, ``'barred'``, or ``'unavailable'``.
        """
        record = self.hlr.subscriber(callee_msisdn)
        if caller in record.barred_numbers:
            self.rejected += 1
            return "barred"
        routing = self.hlr.routing_info(callee_msisdn)
        if routing is not None:
            self.delivered += 1
            return "vlr:%s" % routing
        if record.call_forwarding:
            self.delivered += 1
            return "forwarded:%s" % record.call_forwarding
        self.rejected += 1
        return "unavailable"
