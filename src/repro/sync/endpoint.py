"""Syncable replicas with change logs.

Requirement 7 (Data Synchronization): cached/replicated profile data —
most visibly the phone's address book vs the network's copy — needs
change tracking so a fast sync can ship only deltas. A
:class:`SyncEndpoint` wraps one keyed item collection (address-book
items, calendar appointments) with a monotone sequence number, a change
log, and virtual-time update stamps (for last-writer-wins
reconciliation).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import SyncError
from repro.pxml import PNode

__all__ = ["Change", "SyncEndpoint"]


class Change:
    """One logged modification."""

    __slots__ = ("seq", "op", "item_id", "payload", "at")

    def __init__(
        self,
        seq: int,
        op: str,
        item_id: str,
        payload: Optional[PNode],
        at: float,
    ):
        self.seq = seq
        self.op = op  # 'put' | 'delete'
        self.item_id = item_id
        self.payload = payload
        self.at = at

    def byte_size(self) -> int:
        base = len(self.item_id) + 16
        if self.payload is not None:
            base += self.payload.byte_size()
        return base

    def __repr__(self) -> str:
        return "<Change #%d %s %s>" % (self.seq, self.op, self.item_id)


class SyncEndpoint:
    """A replica of one component's keyed items."""

    def __init__(
        self,
        name: str,
        component: str = "address-book",
        item_tag: str = "item",
    ):
        self.name = name
        self.component = component
        self.item_tag = item_tag
        self._items: Dict[str, PNode] = {}
        self._updated_at: Dict[str, float] = {}
        self.seq = 0
        self._log: List[Change] = []

    # -- mutation ------------------------------------------------------------

    def put_item(self, item: PNode, now: float = 0.0) -> None:
        if item.tag != self.item_tag:
            raise SyncError(
                "expected <%s>, got <%s>" % (self.item_tag, item.tag)
            )
        item_id = item.attrs.get("id")
        if not item_id:
            raise SyncError("items must carry an id for syncing")
        existing = self._items.get(item_id)
        if existing is not None and existing.deep_equal(item):
            return  # no-op writes don't pollute the log
        self._items[item_id] = item.copy()
        self._updated_at[item_id] = now
        self.seq += 1
        self._log.append(
            Change(self.seq, "put", item_id, item.copy(), now)
        )

    def delete_item(self, item_id: str, now: float = 0.0) -> None:
        if item_id not in self._items:
            raise SyncError("no item %r at %s" % (item_id, self.name))
        del self._items[item_id]
        self._updated_at.pop(item_id, None)
        self.seq += 1
        self._log.append(Change(self.seq, "delete", item_id, None, now))

    def apply_change(self, change: Change, now: float) -> None:
        """Apply a remote change without re-logging a conflict storm:
        the local log still records it (so third replicas hear about
        it), stamped with the remote's original time."""
        if change.op == "put" and change.payload is not None:
            self._items[change.item_id] = change.payload.copy()
            self._updated_at[change.item_id] = change.at
            self.seq += 1
            self._log.append(
                Change(self.seq, "put", change.item_id,
                       change.payload.copy(), change.at)
            )
        elif change.op == "delete":
            if change.item_id in self._items:
                del self._items[change.item_id]
                self._updated_at.pop(change.item_id, None)
                self.seq += 1
                self._log.append(
                    Change(self.seq, "delete", change.item_id, None,
                           change.at)
                )

    # -- queries ------------------------------------------------------------

    def item(self, item_id: str) -> Optional[PNode]:
        found = self._items.get(item_id)
        return found.copy() if found is not None else None

    def item_ids(self) -> List[str]:
        return sorted(self._items)

    def updated_at(self, item_id: str) -> float:
        return self._updated_at.get(item_id, 0.0)

    def changes_since(self, seq: int) -> List[Change]:
        """Net changes after *seq*: per item, only the latest wins."""
        latest: Dict[str, Change] = {}
        for change in self._log:
            if change.seq > seq:
                latest[change.item_id] = change
        return sorted(latest.values(), key=lambda c: c.seq)

    def snapshot(self) -> PNode:
        """The full component as a GUP fragment."""
        root = PNode(self.component)
        for item_id in sorted(self._items):
            root.append(self._items[item_id].copy())
        return root

    def load_snapshot(self, component: PNode, now: float = 0.0) -> None:
        """Replace contents from a component fragment (initial load)."""
        if component.tag != self.component:
            raise SyncError(
                "expected <%s> snapshot" % self.component
            )
        self._items.clear()
        self._updated_at.clear()
        for item in component.children_named(self.item_tag):
            self.put_item(item, now)

    @property
    def item_count(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        return "<SyncEndpoint %s: %d items, seq=%d>" % (
            self.name, len(self._items), self.seq,
        )
