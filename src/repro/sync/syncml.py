"""SyncML-style two-way synchronization sessions.

The GUP group "has already identified SyncML as the protocol for
synchronization" (Section 3.2.2), but "SyncML is only a transport
protocol. Issues like synchronization semantics need to be addressed"
(Section 5.3). This module implements both halves:

* the transport shape — anchor exchange, then change batches in both
  directions, with per-message byte accounting;
* the semantics — **fast sync** (deltas since the stored sequence
  marks, valid only when anchors line up) vs **slow sync** (full
  snapshot comparison after an anchor mismatch, e.g. a device reset),
  plus conflict detection and pluggable reconciliation
  (:mod:`repro.sync.reconcile`).

Experiment E8 measures messages/bytes of fast vs slow sync as a
function of change rate — the shape that justifies anchors.

Accounting (E18 audit): per-run numbers stay on :class:`SyncReport`
(the E8 API), but each :meth:`SyncSession.run` also folds its totals
into registry-backed ``sync.*`` counters so a session's lifetime cost
exports alongside net.*/cache.*/sub.* from one snapshot. The session
starts with a private registry and can be re-homed onto a shared world
registry via :meth:`SyncSession.bind_registry`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import SyncError
from repro.obs.metrics import CounterView, MetricsRegistry
from repro.pxml import PNode
from repro.sync.endpoint import Change, SyncEndpoint
from repro.sync.reconcile import Conflict, Reconciler

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.access.context import RequestContext
    from repro.access.infrastructure import PolicyEnforcementPoint

__all__ = ["SyncReport", "SyncSession"]

#: Fixed framing overhead per SyncML message.
MESSAGE_OVERHEAD_BYTES = 120


class SyncReport:
    """What one sync session did."""

    def __init__(self, mode: str):
        self.mode = mode  # 'fast' | 'slow'
        self.messages = 0
        self.bytes = 0
        self.sent_to_server = 0
        self.sent_to_client = 0
        #: Items the privacy shield refused to release to the device
        #: this run (shield-mediated sessions only).
        self.withheld = 0
        self.conflicts: List[Conflict] = []

    def add_message(self, payload_bytes: int) -> None:
        self.messages += 1
        self.bytes += payload_bytes + MESSAGE_OVERHEAD_BYTES

    def __repr__(self) -> str:
        return (
            "<SyncReport %s: %d msgs, %d B, c->s %d, s->c %d, "
            "%d withheld, %d conflicts>"
            % (self.mode, self.messages, self.bytes,
               self.sent_to_server, self.sent_to_client,
               self.withheld, len(self.conflicts))
        )


class SyncSession:
    """A persistent pairing of two endpoints (device <-> network).

    A session may be **shield-mediated**: when *owner*, *pep* and
    *context* are given, every item the network side would push down
    to the device first passes the privacy shield
    (``pep.enforce``) under the device's :class:`RequestContext`.
    Denied items are withheld — never serialized toward the client,
    never counted in the wire bytes — and tallied in
    :attr:`SyncReport.withheld`.  The device-to-network direction is
    an upload of the device's own data and is not shield-filtered.

    Sessions built without a shield (the E8 transport benchmarks, or
    two replicas inside one trust domain) behave exactly as before.
    """

    #: (attribute/metric suffix, help) pairs for the lifetime totals.
    COUNTER_FIELDS: Tuple[Tuple[str, str], ...] = (
        ("fast_syncs", "Sessions resolved by fast sync."),
        ("slow_syncs", "Sessions that fell back to slow sync."),
        ("messages", "SyncML messages exchanged, both directions."),
        ("bytes", "Wire bytes exchanged (payload + framing)."),
        ("conflicts", "Conflicting concurrent edits reconciled."),
        ("withheld_items", "Items the privacy shield withheld."),
    )

    fast_syncs = CounterView("sync.fast_syncs")
    slow_syncs = CounterView("sync.slow_syncs")
    messages = CounterView("sync.messages")
    bytes_exchanged = CounterView("sync.bytes")
    conflicts = CounterView("sync.conflicts")
    withheld_items = CounterView("sync.withheld_items")

    def __init__(
        self,
        client: SyncEndpoint,
        server: SyncEndpoint,
        reconciler: Optional[Reconciler] = None,
        owner: Optional[str] = None,
        pep: Optional["PolicyEnforcementPoint"] = None,
        context: Optional["RequestContext"] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        if pep is not None and (owner is None or context is None):
            raise SyncError(
                "shield-mediated sync needs owner, pep and context"
            )
        self.client = client
        self.server = server
        self.reconciler = (
            reconciler if reconciler is not None else Reconciler()
        )
        #: Profile owner whose component this session replicates
        #: (shield-mediated sessions only).
        self.owner = owner
        self.pep = pep
        self.context = context
        #: Total items withheld by the shield across all runs.
        self.withheld = 0
        #: Registry backing the lifetime ``sync.*`` totals (private
        #: until :meth:`bind_registry` re-homes it).
        self.metrics = (
            registry if registry is not None else MetricsRegistry()
        )
        self._register_instruments()
        # Per-run memo of shield decisions, item_id -> permit.
        self._decisions: Dict[str, bool] = {}
        # Anchors per SyncML: both sides remember the last agreed tag.
        self._client_anchor: Optional[str] = None
        self._server_anchor: Optional[str] = None
        self._sync_count = 0
        # High-water marks of each side's log at last sync.
        self._client_mark = 0
        self._server_mark = 0
        self._ever_synced = False

    # -- metrics ----------------------------------------------------------------

    def _register_instruments(self) -> None:
        """Ensure every ``sync.*`` counter exists in the registry."""
        for suffix, help_text in self.COUNTER_FIELDS:
            self.metrics.counter("sync." + suffix, help=help_text)

    def bind_registry(self, registry: MetricsRegistry) -> None:
        """Re-home onto a shared world registry, migrating totals
        (see :meth:`repro.core.cache.ComponentCache.bind_registry`)."""
        if registry is self.metrics:
            return
        previous = self.metrics
        self.metrics = registry
        self._register_instruments()
        for suffix, _help in self.COUNTER_FIELDS:
            carried = previous.counter("sync." + suffix).value
            if carried:
                registry.counter("sync." + suffix).inc(carried)

    def _tally(self, report: SyncReport) -> None:
        """Fold one run's :class:`SyncReport` into the lifetime
        ``sync.*`` counters."""
        if report.mode == "fast":
            self.fast_syncs += 1
        else:
            self.slow_syncs += 1
        self.messages += report.messages
        self.bytes_exchanged += report.bytes
        self.conflicts += len(report.conflicts)
        self.withheld_items += report.withheld

    # -- privacy shield ---------------------------------------------------------

    @property
    def shielded(self) -> bool:
        """True when network-to-device flow is shield-mediated."""
        return self.pep is not None

    def _item_path(self, item_id: str) -> str:
        return "/user[@id='%s']/%s/%s[@id='%s']" % (
            self.owner, self.server.component,
            self.server.item_tag, item_id,
        )

    def _permits(self, item_id: str) -> bool:
        """Shield verdict for releasing *item_id* to the device,
        memoized per run so fast- and slow-sync paths agree and each
        withheld item is counted once."""
        if self.pep is None or self.context is None:
            return True
        cached = self._decisions.get(item_id)
        if cached is None:
            decision = self.pep.enforce(
                self._item_path(item_id), self.context
            )
            cached = bool(decision.permit)
            self._decisions[item_id] = cached
        return cached

    # -- anchor management ------------------------------------------------------

    def corrupt_client_anchor(self) -> None:
        """Simulate a device reset / restore-from-backup."""
        self._client_anchor = "corrupt"

    @property
    def anchors_match(self) -> bool:
        return (
            self._ever_synced
            and self._client_anchor == self._server_anchor
        )

    # -- the session ---------------------------------------------------------------

    def run(self, now: float = 0.0) -> SyncReport:
        """One two-way synchronization. Chooses fast or slow sync by
        the anchor comparison, applies changes both ways, reconciles
        conflicts, and rolls the anchors forward."""
        self._decisions = {}
        if self.anchors_match:
            report = self._fast_sync(now)
        else:
            report = self._slow_sync(now)
        report.withheld = sum(
            1 for permit in self._decisions.values() if not permit
        )
        self.withheld += report.withheld
        self._tally(report)
        self._sync_count += 1
        anchor = "a%d" % self._sync_count
        self._client_anchor = anchor
        self._server_anchor = anchor
        self._client_mark = self.client.seq
        self._server_mark = self.server.seq
        self._ever_synced = True
        return report

    # -- fast sync ----------------------------------------------------------------

    def _fast_sync(self, now: float) -> SyncReport:
        report = SyncReport("fast")
        # Alert exchange (anchor comparison).
        report.add_message(32)
        report.add_message(32)
        client_changes = self.client.changes_since(self._client_mark)
        server_changes = self.server.changes_since(self._server_mark)
        self._exchange(client_changes, server_changes, report, now)
        # Map/ack message closing the session.
        report.add_message(16)
        return report

    # -- slow sync ----------------------------------------------------------------

    def _slow_sync(self, now: float) -> SyncReport:
        report = SyncReport("slow")
        report.add_message(32)  # alert: anchors mismatch -> slow
        report.add_message(32)
        # Both sides ship their full databases — the server side only
        # its shield-released slice when the session is mediated.
        client_snapshot = self.client.snapshot()
        server_snapshot = self._released_server_snapshot()
        report.add_message(client_snapshot.byte_size())
        report.add_message(server_snapshot.byte_size())
        # Synthesize changes from the snapshot diff, then reuse the
        # exchange machinery. A slow sync cannot distinguish "deleted
        # here" from "added there", so deletions do not propagate —
        # the documented SyncML slow-sync semantics.
        client_changes = [
            Change(0, "put", item_id, self.client.item(item_id),
                   self.client.updated_at(item_id))
            for item_id in self.client.item_ids()
        ]
        server_changes = [
            Change(0, "put", item_id, self.server.item(item_id),
                   self.server.updated_at(item_id))
            for item_id in self.server.item_ids()
        ]
        self._exchange(
            client_changes, server_changes, report, now,
            skip_identical=True,
        )
        report.add_message(16)
        return report

    def _released_server_snapshot(self) -> PNode:
        """The server database as serialized toward the device: the
        full snapshot for unshielded sessions, otherwise only the
        items the privacy shield releases."""
        if not self.shielded:
            return self.server.snapshot()
        root = PNode(self.server.component)
        for item_id in self.server.item_ids():
            if self._permits(item_id):
                item = self.server.item(item_id)
                if item is not None:
                    root.append(item)
        return root

    # -- shared exchange logic -------------------------------------------------------

    def _exchange(
        self,
        client_changes: List[Change],
        server_changes: List[Change],
        report: SyncReport,
        now: float,
        skip_identical: bool = False,
    ) -> None:
        by_id_server: Dict[str, Change] = {
            change.item_id: change for change in server_changes
        }
        conflict_ids = set()
        to_server: List[Change] = []
        to_client: List[Change] = []

        for change in client_changes:
            partner = by_id_server.get(change.item_id)
            if partner is None:
                to_server.append(change)
                continue
            conflict_ids.add(change.item_id)
            if (
                skip_identical
                and change.op == "put" and partner.op == "put"
                and change.payload.deep_equal(partner.payload)
            ):
                continue  # replicas already agree on this item
            apply_client, apply_server, conflict = (
                self.reconciler.resolve(change, partner)
            )
            to_client.extend(apply_client)
            to_server.extend(apply_server)
            report.conflicts.append(conflict)
        for change in server_changes:
            if change.item_id not in conflict_ids:
                to_client.append(change)

        # Privacy shield on the network->device direction: items the
        # device's context may not see never reach the wire.
        to_client = [
            change for change in to_client
            if self._permits(change.item_id)
        ]

        if to_server:
            report.add_message(
                sum(change.byte_size() for change in to_server)
            )
        if to_client:
            report.add_message(
                sum(change.byte_size() for change in to_client)
            )
        for change in to_server:
            self.server.apply_change(change, now)
        for change in to_client:
            self.client.apply_change(change, now)
        report.sent_to_server = len(to_server)
        report.sent_to_client = len(to_client)
