"""SyncML-style two-way synchronization sessions.

The GUP group "has already identified SyncML as the protocol for
synchronization" (Section 3.2.2), but "SyncML is only a transport
protocol. Issues like synchronization semantics need to be addressed"
(Section 5.3). This module implements both halves:

* the transport shape — anchor exchange, then change batches in both
  directions, with per-message byte accounting;
* the semantics — **fast sync** (deltas since the stored sequence
  marks, valid only when anchors line up) vs **slow sync** (full
  snapshot comparison after an anchor mismatch, e.g. a device reset),
  plus conflict detection and pluggable reconciliation
  (:mod:`repro.sync.reconcile`).

Experiment E8 measures messages/bytes of fast vs slow sync as a
function of change rate — the shape that justifies anchors.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sync.endpoint import Change, SyncEndpoint
from repro.sync.reconcile import Conflict, Reconciler

__all__ = ["SyncReport", "SyncSession"]

#: Fixed framing overhead per SyncML message.
MESSAGE_OVERHEAD_BYTES = 120


class SyncReport:
    """What one sync session did."""

    def __init__(self, mode: str):
        self.mode = mode  # 'fast' | 'slow'
        self.messages = 0
        self.bytes = 0
        self.sent_to_server = 0
        self.sent_to_client = 0
        self.conflicts: List[Conflict] = []

    def add_message(self, payload_bytes: int) -> None:
        self.messages += 1
        self.bytes += payload_bytes + MESSAGE_OVERHEAD_BYTES

    def __repr__(self) -> str:
        return (
            "<SyncReport %s: %d msgs, %d B, c->s %d, s->c %d, "
            "%d conflicts>"
            % (self.mode, self.messages, self.bytes,
               self.sent_to_server, self.sent_to_client,
               len(self.conflicts))
        )


class SyncSession:
    """A persistent pairing of two endpoints (device <-> network)."""

    def __init__(
        self,
        client: SyncEndpoint,
        server: SyncEndpoint,
        reconciler: Optional[Reconciler] = None,
    ):
        self.client = client
        self.server = server
        self.reconciler = (
            reconciler if reconciler is not None else Reconciler()
        )
        # Anchors per SyncML: both sides remember the last agreed tag.
        self._client_anchor: Optional[str] = None
        self._server_anchor: Optional[str] = None
        self._sync_count = 0
        # High-water marks of each side's log at last sync.
        self._client_mark = 0
        self._server_mark = 0
        self._ever_synced = False

    # -- anchor management ------------------------------------------------------

    def corrupt_client_anchor(self) -> None:
        """Simulate a device reset / restore-from-backup."""
        self._client_anchor = "corrupt"

    @property
    def anchors_match(self) -> bool:
        return (
            self._ever_synced
            and self._client_anchor == self._server_anchor
        )

    # -- the session ---------------------------------------------------------------

    def run(self, now: float = 0.0) -> SyncReport:
        """One two-way synchronization. Chooses fast or slow sync by
        the anchor comparison, applies changes both ways, reconciles
        conflicts, and rolls the anchors forward."""
        if self.anchors_match:
            report = self._fast_sync(now)
        else:
            report = self._slow_sync(now)
        self._sync_count += 1
        anchor = "a%d" % self._sync_count
        self._client_anchor = anchor
        self._server_anchor = anchor
        self._client_mark = self.client.seq
        self._server_mark = self.server.seq
        self._ever_synced = True
        return report

    # -- fast sync ----------------------------------------------------------------

    def _fast_sync(self, now: float) -> SyncReport:
        report = SyncReport("fast")
        # Alert exchange (anchor comparison).
        report.add_message(32)
        report.add_message(32)
        client_changes = self.client.changes_since(self._client_mark)
        server_changes = self.server.changes_since(self._server_mark)
        self._exchange(client_changes, server_changes, report, now)
        # Map/ack message closing the session.
        report.add_message(16)
        return report

    # -- slow sync ----------------------------------------------------------------

    def _slow_sync(self, now: float) -> SyncReport:
        report = SyncReport("slow")
        report.add_message(32)  # alert: anchors mismatch -> slow
        report.add_message(32)
        # Both sides ship their full databases.
        client_snapshot = self.client.snapshot()
        server_snapshot = self.server.snapshot()
        report.add_message(client_snapshot.byte_size())
        report.add_message(server_snapshot.byte_size())
        # Synthesize changes from the snapshot diff, then reuse the
        # exchange machinery. A slow sync cannot distinguish "deleted
        # here" from "added there", so deletions do not propagate —
        # the documented SyncML slow-sync semantics.
        client_changes = [
            Change(0, "put", item_id, self.client.item(item_id),
                   self.client.updated_at(item_id))
            for item_id in self.client.item_ids()
        ]
        server_changes = [
            Change(0, "put", item_id, self.server.item(item_id),
                   self.server.updated_at(item_id))
            for item_id in self.server.item_ids()
        ]
        self._exchange(
            client_changes, server_changes, report, now,
            skip_identical=True,
        )
        report.add_message(16)
        return report

    # -- shared exchange logic -------------------------------------------------------

    def _exchange(
        self,
        client_changes: List[Change],
        server_changes: List[Change],
        report: SyncReport,
        now: float,
        skip_identical: bool = False,
    ) -> None:
        by_id_server: Dict[str, Change] = {
            change.item_id: change for change in server_changes
        }
        conflict_ids = set()
        to_server: List[Change] = []
        to_client: List[Change] = []

        for change in client_changes:
            partner = by_id_server.get(change.item_id)
            if partner is None:
                to_server.append(change)
                continue
            conflict_ids.add(change.item_id)
            if (
                skip_identical
                and change.op == "put" and partner.op == "put"
                and change.payload.deep_equal(partner.payload)
            ):
                continue  # replicas already agree on this item
            apply_client, apply_server, conflict = (
                self.reconciler.resolve(change, partner)
            )
            to_client.extend(apply_client)
            to_server.extend(apply_server)
            report.conflicts.append(conflict)
        for change in server_changes:
            if change.item_id not in conflict_ids:
                to_client.append(change)

        if to_server:
            report.add_message(
                sum(change.byte_size() for change in to_server)
            )
        if to_client:
            report.add_message(
                sum(change.byte_size() for change in to_client)
            )
        for change in to_server:
            self.server.apply_change(change, now)
        for change in to_client:
            self.client.apply_change(change, now)
        report.sent_to_server = len(to_server)
        report.sent_to_client = len(to_client)
