"""Reconciliation policies for conflicting replicas (requirement 6).

"Profile management must include mechanisms for reconciliation of
slightly inconsistent data ... End-users should be able to provision
the policies used to reconcile profile data."

A conflict is the same item id modified on both replicas since the last
sync. The provisioning-visible policies:

* ``client-wins`` / ``server-wins`` — prioritize a site (Section 5.3:
  "reconciliation can be handled by prioritizing sites");
* ``last-writer-wins`` — compare the virtual update stamps;
* ``merge`` — field-level deep union of the two items (the "more
  sophisticated method");
* ``duplicate`` — keep both, suffixing the loser's id (never lose
  data; the user cleans up later).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import SyncError
from repro.pxml import PNode
from repro.pxml.merge import ConflictPolicy, GUP_KEYSPEC, deep_union
from repro.sync.endpoint import Change

__all__ = ["POLICIES", "Conflict", "Reconciler"]

POLICIES = (
    "client-wins", "server-wins", "last-writer-wins", "merge",
    "duplicate",
)


class Conflict:
    """Record of one reconciled conflict (reports feed E8)."""

    def __init__(
        self,
        item_id: str,
        policy: str,
        winner: str,
    ):
        self.item_id = item_id
        self.policy = policy
        self.winner = winner  # 'client' | 'server' | 'merged' | 'both'

    def __repr__(self) -> str:
        return "<Conflict %s -> %s (%s)>" % (
            self.item_id, self.winner, self.policy,
        )


class Reconciler:
    """Resolves conflicting changes under a named policy."""

    def __init__(self, policy: str = "merge"):
        if policy not in POLICIES:
            raise SyncError("unknown reconciliation policy %r" % policy)
        self.policy = policy

    def resolve(
        self,
        client_change: Change,
        server_change: Change,
    ) -> Tuple[List[Change], List[Change], Conflict]:
        """Resolve one conflict.

        Returns ``(apply_to_client, apply_to_server, report)`` — the
        change lists each side must apply to converge.
        """
        policy = self.policy
        if policy == "client-wins":
            return [], [client_change], Conflict(
                client_change.item_id, policy, "client"
            )
        if policy == "server-wins":
            return [server_change], [], Conflict(
                client_change.item_id, policy, "server"
            )
        if policy == "last-writer-wins":
            if client_change.at >= server_change.at:
                return [], [client_change], Conflict(
                    client_change.item_id, policy, "client"
                )
            return [server_change], [], Conflict(
                client_change.item_id, policy, "server"
            )
        if policy == "merge":
            merged = self._merge(client_change, server_change)
            if merged is None:
                # A delete vs an edit: the edit survives (data safety).
                surviving = (
                    client_change
                    if client_change.op == "put" else server_change
                )
                return (
                    [surviving] if surviving is server_change else [],
                    [surviving] if surviving is client_change else [],
                    Conflict(
                        client_change.item_id, policy,
                        "client" if surviving is client_change
                        else "server",
                    ),
                )
            at = max(client_change.at, server_change.at)
            merged_change = Change(
                0, "put", client_change.item_id, merged, at
            )
            return [merged_change], [merged_change], Conflict(
                client_change.item_id, policy, "merged"
            )
        # duplicate
        if client_change.op == "put" and server_change.op == "put":
            renamed = client_change.payload.copy()
            renamed.attrs["id"] = client_change.item_id + "-dup"
            dup_change = Change(
                0, "put", renamed.attrs["id"], renamed,
                client_change.at,
            )
            # Server's version keeps the id; the client's version is
            # renamed and installed on BOTH sides so replicas converge.
            return (
                [server_change, dup_change],
                [dup_change],
                Conflict(client_change.item_id, policy, "both"),
            )
        # delete vs put under 'duplicate': keep the put everywhere.
        surviving = (
            client_change if client_change.op == "put" else server_change
        )
        return (
            [surviving] if surviving is server_change else [],
            [surviving] if surviving is client_change else [],
            Conflict(client_change.item_id, policy, "both"),
        )

    @staticmethod
    def _merge(
        client_change: Change, server_change: Change
    ) -> Optional[PNode]:
        if client_change.op != "put" or server_change.op != "put":
            return None
        newer, older = (
            (client_change, server_change)
            if client_change.at >= server_change.at
            else (server_change, client_change)
        )
        return deep_union(
            newer.payload, older.payload, GUP_KEYSPEC,
            ConflictPolicy.PREFER_FIRST,
        )
