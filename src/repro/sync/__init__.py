"""Synchronization (requirements 6/7): syncable endpoints with change
logs, SyncML-style fast/slow sessions, and reconciliation policies."""

from repro.sync.endpoint import Change, SyncEndpoint
from repro.sync.reconcile import POLICIES, Conflict, Reconciler
from repro.sync.syncml import SyncReport, SyncSession

__all__ = [
    "Change",
    "SyncEndpoint",
    "Reconciler",
    "Conflict",
    "POLICIES",
    "SyncSession",
    "SyncReport",
]
