"""Self-provisioning (requirement 11): schema-generated forms with
constraint checking, and the enter-once write path."""

from repro.provisioning.forms import (
    FormField,
    ProvisioningForm,
    generate_form,
)
from repro.provisioning.provisioner import ProvisionReport, Provisioner

__all__ = [
    "FormField",
    "ProvisioningForm",
    "generate_form",
    "Provisioner",
    "ProvisionReport",
]
