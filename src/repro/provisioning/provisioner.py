"""Enter once, use everywhere: the provisioning front end.

The Provisioner ties the generated forms to the GUPster write path:
the user fills one form; the fragment is schema-checked; GUPster's
update referral fans the write out to **every** store holding the
component. The contrast class — :meth:`provision_manually` — is the
pre-GUPster world where the user provisions each store separately (and
forgets some, leaving replicas inconsistent); experiment E11 measures
the difference.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ValidationError
from repro.bus import ChangeBus
from repro.pxml import PNode
from repro.access import RequestContext
from repro.core.query import QueryExecutor
from repro.core.server import GupsterServer
from repro.provisioning.forms import ProvisioningForm, generate_form
from repro.simnet import Trace

__all__ = ["Provisioner", "ProvisionReport"]


class ProvisionReport:
    """What one provisioning action cost and touched."""

    def __init__(
        self,
        user_actions: int,
        stores_updated: List[str],
        trace: Optional[Trace],
    ):
        #: Distinct things the *human* had to do.
        self.user_actions = user_actions
        self.stores_updated = stores_updated
        self.trace = trace

    def __repr__(self) -> str:
        return "<ProvisionReport %d action(s) -> %s>" % (
            self.user_actions, self.stores_updated,
        )


class Provisioner:
    """Schema-driven self-provisioning through GUPster."""

    def __init__(
        self,
        server: GupsterServer,
        executor: QueryExecutor,
        bus: Optional[ChangeBus] = None,
    ):
        self.server = server
        self.executor = executor
        #: When set, every enter-once write is published as a change
        #: so caches, mirrors and subscribers ride the bus (E20) —
        #: an enter-once storm coalesces into waves instead of a
        #: per-update notification flood.
        self.bus = bus

    def form_for(self, component: str) -> ProvisioningForm:
        return generate_form(self.server.schema, component)

    # -- the GUPster way ---------------------------------------------------------

    def enter_once(
        self,
        client: str,
        user_id: str,
        component: str,
        entries: Sequence[Dict[str, str]],
        now: float = 0.0,
    ) -> ProvisionReport:
        """One user action: fill the form, write through GUPster."""
        form = self.form_for(component)
        fragment = form.fill(entries)  # raises ValidationError early
        self._check_against_schema(user_id, fragment)
        path = "/user[@id='%s']/%s" % (user_id, component)
        context = RequestContext(
            user_id, relationship="self", purpose="provision"
        )
        referral = self.server.resolve_for_update(path, context, now)
        stores = [part.store_ids[0] for part in referral.parts]
        trace = self.executor.provision(
            client, path, fragment, context, now
        )
        if self.bus is not None:
            self.bus.append(
                path, "%s" % (fragment.canonical_key(),),
                user_id=user_id,
            )
        return ProvisionReport(1, stores, trace)

    # -- the pre-GUPster way (E11 baseline) -----------------------------------------

    def provision_manually(
        self,
        client: str,
        user_id: str,
        component: str,
        entries: Sequence[Dict[str, str]],
        store_ids: Sequence[str],
        forget: Sequence[str] = (),
        now: float = 0.0,
    ) -> ProvisionReport:
        """The user logs into each store separately. Stores listed in
        *forget* are the ones the user never gets around to (the paper's
        'wasteful re-entry ... leads to inconsistencies')."""
        form = self.form_for(component)
        fragment = form.fill(entries)
        self._check_against_schema(user_id, fragment)
        path = "/user[@id='%s']/%s" % (user_id, component)
        updated: List[str] = []
        actions = 0
        trace = self.executor.network.trace()
        for store_id in store_ids:
            if store_id in forget:
                continue
            actions += 1  # a separate login + form per store
            adapter = self.server.adapters.get(store_id)
            if adapter is None:
                continue
            trace.round_trip(
                client, store_id,
                fragment.byte_size() + 80, 32,
                "manual provision",
            )
            adapter.put(path, fragment)
            updated.append(store_id)
        return ProvisionReport(actions, updated, trace)

    # -- divergence measurement --------------------------------------------------

    def replica_divergence(
        self, user_id: str, component: str, store_ids: Sequence[str]
    ) -> int:
        """Number of store pairs whose copies of the component differ —
        the inconsistency a forgotten manual update leaves behind."""
        path = "/user[@id='%s']/%s" % (user_id, component)
        copies: List[Tuple[str, Optional[PNode]]] = []
        for store_id in store_ids:
            adapter = self.server.adapters.get(store_id)
            if adapter is None:
                continue
            copies.append((store_id, adapter.get(path)))
        divergent = 0
        for index, (_sid_a, copy_a) in enumerate(copies):
            for _sid_b, copy_b in copies[index + 1:]:
                if copy_a is None or copy_b is None:
                    if copy_a is not copy_b:
                        divergent += 1
                elif copy_a.canonical_key() != copy_b.canonical_key():
                    divergent += 1
        return divergent

    def _check_against_schema(
        self, user_id: str, fragment: PNode
    ) -> None:
        """Constraint checking: wrap the fragment in a user document and
        run the full validator (requirement 11's 'guarantees')."""
        doc = PNode("user", {"id": user_id})
        doc.append(fragment.copy())
        violations = self.server.schema.validate(doc)
        if violations:
            raise ValidationError(
                "; ".join(
                    "%s: %s" % (v.path, v.message) for v in violations
                )
            )
