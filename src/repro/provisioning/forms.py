"""Auto-generated provisioning interfaces (requirement 11).

"Provisioning interfaces should be automatically generated and should
provide some guarantees (e.g., constraint checking)."

:func:`generate_form` walks the GUP schema declarations for one
component and produces a :class:`ProvisioningForm` — an ordered list of
typed fields a UI (web, WAP, voice) could render. ``fill`` turns user
input back into a schema-valid XML fragment, rejecting bad values with
field-level messages *before* anything touches the network.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ValidationError
from repro.pxml import PNode
from repro.pxml.schema import (
    AttrDecl,
    ElementDecl,
    Schema,
    ValueType,
)

__all__ = ["FormField", "ProvisioningForm", "generate_form"]


class FormField:
    """One input of a generated provisioning form."""

    def __init__(
        self,
        key: str,
        label: str,
        vtype: ValueType,
        required: bool = False,
        options: Optional[Tuple[str, ...]] = None,
        repeated: bool = False,
    ):
        #: Dotted location inside the component, e.g. ``item.name``
        #: or ``item.@type``.
        self.key = key
        self.label = label
        self.vtype = vtype
        self.required = required
        self.options = options
        self.repeated = repeated

    def check(self, value: str) -> Optional[str]:
        """Problem string for a bad value, else None."""
        if self.options is not None and value not in self.options:
            return "%s must be one of %s" % (self.key, list(self.options))
        if not self.vtype.is_valid(value):
            return "%s is not a valid %s" % (self.key, self.vtype.name)
        return None

    def __repr__(self) -> str:
        flags = []
        if self.required:
            flags.append("required")
        if self.repeated:
            flags.append("repeated")
        return "<FormField %s (%s)%s>" % (
            self.key, self.vtype.name,
            " " + ",".join(flags) if flags else "",
        )


class ProvisioningForm:
    """A renderable, checkable form for one component."""

    def __init__(
        self,
        component: str,
        entry_tag: Optional[str],
        fields: List[FormField],
        schema: Schema,
    ):
        self.component = component
        #: The repeated child (e.g. ``item``); None for scalar
        #: components like <presence>.
        self.entry_tag = entry_tag
        self.fields = fields
        self.schema = schema

    def field(self, key: str) -> Optional[FormField]:
        for candidate in self.fields:
            if candidate.key == key:
                return candidate
        return None

    def validate_entry(self, values: Dict[str, str]) -> List[str]:
        """All problems with one entry's input (empty = OK)."""
        problems = []
        for form_field in self.fields:
            provided = values.get(form_field.key)
            if provided is None or provided == "":
                if form_field.required:
                    problems.append("%s is required" % form_field.key)
                continue
            issue = form_field.check(provided)
            if issue is not None:
                problems.append(issue)
        for key in values:
            if self.field(key) is None:
                problems.append("unknown field %r" % key)
        return problems

    def fill(
        self, entries: Sequence[Dict[str, str]]
    ) -> PNode:
        """Build the component fragment from form input.

        Raises :class:`ValidationError` listing every problem.
        """
        problems: List[str] = []
        for index, entry in enumerate(entries):
            for issue in self.validate_entry(entry):
                problems.append("entry %d: %s" % (index, issue))
        if problems:
            raise ValidationError("; ".join(problems))
        component = PNode(self.component)
        for entry in entries:
            target = (
                component.append(PNode(self.entry_tag))
                if self.entry_tag is not None
                else component
            )
            for key, value in entry.items():
                if value == "":
                    continue
                self._place(target, key, value)
        return component

    def _place(self, target: PNode, key: str, value: str) -> None:
        parts = key.split(".")
        node = target
        for part in parts[:-1]:
            existing = node.child(part)
            node = existing if existing is not None else node.append(
                PNode(part)
            )
        leaf = parts[-1]
        if leaf.startswith("@"):
            node.attrs[leaf[1:]] = value
        else:
            form_field = self.field(key)
            child = PNode(leaf, text=value)
            if form_field is not None and form_field.options is not None:
                pass
            node.append(child)


def generate_form(schema: Schema, component: str) -> ProvisioningForm:
    """Generate the form for one component of the schema."""
    decl = schema.decl(component)
    if decl is None or not decl.component:
        raise ValidationError(
            "<%s> is not a profile component" % component
        )
    # A component is either a container of one repeated entry tag
    # (address-book/item) or a scalar record (presence).
    repeated = [
        child.tag for child in decl.children.values()
        if child.occurs == "many"
    ]
    if len(repeated) == 1:
        entry_tag = repeated[0]
        entry_decl = schema.decl(entry_tag)
        fields = _fields_for(schema, entry_decl, prefix="")
    else:
        entry_tag = None
        fields = _fields_for(schema, decl, prefix="", top=True)
    return ProvisioningForm(component, entry_tag, fields, schema)


def _fields_for(
    schema: Schema,
    decl: Optional[ElementDecl],
    prefix: str,
    top: bool = False,
    depth: int = 0,
) -> List[FormField]:
    if decl is None or depth > 3:
        return []
    fields: List[FormField] = []
    for attr in decl.attrs.values():
        fields.append(_attr_field(prefix, attr))
    if decl.text is not None and prefix:
        # The element itself is a leaf input (its key is the prefix
        # minus the trailing dot).
        pass
    for child in decl.children.values():
        child_decl = schema.decl(child.tag)
        key = prefix + child.tag
        if child_decl is not None and child_decl.text is not None:
            fields.append(
                FormField(
                    key,
                    child.tag.replace("-", " "),
                    child_decl.text,
                    required=(child.occurs == "one"),
                    repeated=(child.occurs == "many"),
                )
            )
            # Text children can still carry attributes (number/@type).
            for attr in child_decl.attrs.values():
                fields.append(_attr_field(key + ".", attr))
        else:
            fields.extend(
                _fields_for(
                    schema, child_decl, key + ".", depth=depth + 1
                )
            )
    return fields


def _attr_field(prefix: str, attr: AttrDecl) -> FormField:
    return FormField(
        prefix + "@" + attr.name,
        attr.name,
        attr.vtype,
        required=attr.required,
        options=attr.values,
    )
