"""The change-notification bus (E20): write-path fan-out at scale.

The paper's push-enabled GUPster (Section 5.2) needs profile updates
to reach subscribers, caches and mirrors without a per-update callback
storm. This package is the directory-listener-style answer: an
append-only per-shard :class:`~repro.bus.log.ChangeLog` (monotonic
sequence numbers over virtual time), a :class:`~repro.bus.bus.
ChangeBus` notifier that coalesces pending deltas per listener into
batched deliveries — one simulated round trip per (listener, wave),
mirroring the E19 batch wave model — and per-listener replay cursors
so a listener that was down or slow resumes from where it stopped
instead of losing changes.

The privacy-shield invariant holds per **delivery**, never per batch:
:class:`~repro.bus.listeners.SubscriberListener` re-checks
``pep.enforce`` for every coalesced delta, memoized within a single
wave only across identical (path, requester) pairs.
"""

from repro.bus.log import ChangeLog, ChangeRecord
from repro.bus.bus import BusListener, ChangeBus, DEFAULT_WAVE_MS
from repro.bus.push import PUSH_PAYLOAD_BYTES, PushForwarder
from repro.bus.listeners import (
    CacheInvalidationListener,
    MirrorRefreshListener,
    RecordingListener,
    SubscriberListener,
)

__all__ = [
    "ChangeLog",
    "ChangeRecord",
    "ChangeBus",
    "BusListener",
    "DEFAULT_WAVE_MS",
    "PUSH_PAYLOAD_BYTES",
    "PushForwarder",
    "SubscriberListener",
    "CacheInvalidationListener",
    "MirrorRefreshListener",
    "RecordingListener",
]
