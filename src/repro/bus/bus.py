"""The change bus: coalescing notifier with per-listener cursors.

``append`` is cheap bookkeeping (the write path already paid its
network cost); propagation happens in **waves**. A wave is armed when
a change arrives with listeners attached, fires ``wave_ms`` later, and
delivers to each listener *everything* logged since that listener's
cursor — one batched delivery charged **one simulated round trip per
(listener, wave)**, exactly the E19 batch-execution cost model applied
to the write path. Compute (shield checks, cache invalidation) stays
per delta; only the wire cost amortizes.

Cursors make delivery resumable: a listener whose node is failed at
flush time gets nothing and its cursor does not move, so the next wave
after recovery replays the whole backlog — no change is lost, none is
delivered twice. After every wave the bus compacts each shard log up
to the minimum cursor, bounding memory by the slowest listener.

Deliveries to one listener form a FIFO channel: a wave's batch never
*overtakes* an earlier wave's batch still in flight to the same
listener, even when the earlier payload is much larger (a fat
recovery replay transfers slowly at simulated bandwidth; without the
ordering floor, the next small wave would land first and the listener
would observe changes out of order — the E20 benchmark's crash/resume
gate caught exactly that).

Failure/retry semantics: the bus does not self-reschedule while a
listener is down (that would spin the event heap forever on an idle
simulation). The backlog drains at the next wave a fresh append arms,
or an explicit :meth:`ChangeBus.kick` after the operator restores the
node — both deterministic.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple,
)

from repro.bus.log import ChangeLog, ChangeRecord
from repro.obs.metrics import CounterView
from repro.simnet import Network, Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.access import Decision

__all__ = ["BusListener", "ChangeBus", "DEFAULT_WAVE_MS", "ShieldMemo"]

#: How long appended changes pool before a wave flushes them.
DEFAULT_WAVE_MS = 50.0

#: Fixed framing overhead of one wave message (mirrors the executor's
#: REQUEST_OVERHEAD_BYTES on the read path).
WAVE_OVERHEAD_BYTES = 80

#: Ack size for the delivery round trip.
ACK_BYTES = 32

#: Shard key used when no router is bound (single logical store).
DEFAULT_SHARD = "main"

#: Per-wave privacy-shield memo: identical (request, delta path,
#: requester, relationship, purpose) tuples within ONE wave share a
#: decision; the memo dies with the wave.
ShieldMemo = Dict[Tuple[str, str, str, str, str], "Decision"]


class BusListener:
    """Base class for bus consumers.

    ``node`` names the simnet endpoint the wave delivery travels to
    (one round trip per wave is charged); ``None`` marks an in-process
    listener (cache invalidation at the origin, mirror refresh) whose
    deliveries cost no wire."""

    def __init__(self, name: str, node: Optional[str] = None) -> None:
        self.name = name
        self.node = node

    def wants(self, record: ChangeRecord) -> bool:
        """Filter: does this listener care about *record*? Cursors
        advance past filtered records either way."""
        return True

    def deliver(
        self,
        records: List[ChangeRecord],
        now: float,
        bus: "ChangeBus",
        memo: ShieldMemo,
    ) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        where = self.node if self.node is not None else "in-process"
        return "<%s %s @%s>" % (type(self).__name__, self.name, where)


class ChangeBus:
    """Per-shard change logs + the coalescing wave notifier.

    Counters live in the network's shared metrics registry under
    ``bus.*`` (the integer attributes are views), alongside ``net.*``,
    ``cache.*`` and ``sub.*``."""

    appends = CounterView("bus.appends")
    waves = CounterView("bus.waves")
    messages = CounterView("bus.messages")
    deliveries = CounterView("bus.deliveries")
    delivery_failures = CounterView("bus.delivery_failures")
    records_delivered = CounterView("bus.records_delivered")
    records_compacted = CounterView("bus.records_compacted")

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        origin_node: str,
        wave_ms: float = DEFAULT_WAVE_MS,
    ) -> None:
        if wave_ms <= 0:
            raise ValueError("wave interval must be positive")
        self.sim = sim
        self.network = network
        self.origin_node = origin_node
        self.wave_ms = wave_ms
        self.metrics = network.metrics
        self.metrics.counter(
            "bus.appends", help="Changes appended to the bus logs.",
        )
        self.metrics.counter(
            "bus.waves", help="Coalescing waves flushed.",
        )
        self.metrics.counter(
            "bus.messages",
            help="Wire messages spent on wave deliveries (req+ack).",
        )
        self.metrics.counter(
            "bus.deliveries",
            help="Successful (listener, wave) batched deliveries.",
        )
        self.metrics.counter(
            "bus.delivery_failures",
            help="Waves skipped because the listener node was down "
                 "(cursor unmoved; backlog replays on recovery).",
        )
        self.metrics.counter(
            "bus.records_delivered",
            help="Change records handed to listeners.",
        )
        self.metrics.counter(
            "bus.records_compacted",
            help="Log records dropped once every cursor passed them.",
        )
        self.metrics.gauge(
            "bus.backlog",
            help="Change records retained across all shard logs.",
            fn=self._retained,
        ).bind(self._retained)
        # gupcheck: bounded[shard-vocab] -- one log per shard id, fixed at wiring time
        self._logs: Dict[str, ChangeLog] = {}
        self._router: Optional[Callable[[str], str]] = None
        # gupcheck: bounded[attach-detach] -- one entry per attached listener; detach() removes it
        self._listeners: List[BusListener] = []
        #: listener name -> shard -> last consumed sequence number.
        # gupcheck: bounded[attach-detach] -- keyed by attached listener; detach() deletes the entry
        self._cursors: Dict[str, Dict[str, int]] = {}
        #: listener name -> virtual instant its latest in-flight
        #: delivery arrives (the FIFO-per-listener ordering floor).
        # gupcheck: bounded[attach-detach] -- keyed by attached listener; detach() pops the entry
        self._last_arrival: Dict[str, float] = {}
        self._wave_armed = False

    # -- sharding -------------------------------------------------------------

    def use_shard_router(
        self,
        router: Callable[[str], str],
        shard_ids: Sequence[str] = (),
    ) -> None:
        """Route appends by ``router(user_id)`` into per-shard logs
        (pre-creating logs for *shard_ids* so cursors snapshot them)."""
        self._router = router
        for shard_id in shard_ids:
            self.log_for(shard_id)

    def log_for(self, shard_id: str) -> ChangeLog:
        log = self._logs.get(shard_id)
        if log is None:
            log = ChangeLog(shard_id)
            self._logs[shard_id] = log
        return log

    def _shard_key(self, user_id: Optional[str]) -> str:
        if self._router is not None and user_id is not None:
            return self._router(user_id)
        return DEFAULT_SHARD

    # -- the write side -------------------------------------------------------

    def append(
        self,
        path: str,
        value: str,
        user_id: Optional[str] = None,
    ) -> ChangeRecord:
        """Log one change at ``sim.now`` and arm the next wave. This is
        bookkeeping only — the write that produced the change already
        paid its own network cost."""
        log = self.log_for(self._shard_key(user_id))
        record = log.append(self.sim.now, path, value, user_id)
        self.appends += 1
        if self._listeners:
            self._arm_wave()
        else:
            # Nobody replays: keep only the latest-change index (the
            # poll path's question) and drop the history eagerly.
            self.records_compacted += log.compact(log.last_seq)
        return record

    # -- listeners ------------------------------------------------------------

    def attach(self, listener: BusListener) -> None:
        """Register *listener*; its cursors start at each shard log's
        current head, so it sees changes from now on."""
        if listener.name in self._cursors:
            raise ValueError(
                "listener %r already attached" % listener.name
            )
        self._listeners.append(listener)
        self._cursors[listener.name] = {
            shard_id: log.last_seq
            for shard_id, log in self._logs.items()
        }

    def detach(self, listener: BusListener) -> None:
        self._listeners.remove(listener)
        del self._cursors[listener.name]
        self._last_arrival.pop(listener.name, None)

    def cursor(self, listener_name: str) -> Dict[str, int]:
        """A copy of one listener's per-shard cursors."""
        return dict(self._cursors[listener_name])

    def pending_for(self, listener: BusListener) -> int:
        """Records logged past *listener*'s cursors — O(shards)."""
        cursors = self._cursors[listener.name]
        return sum(
            log.backlog(cursors.get(shard_id, 0))
            for shard_id, log in self._logs.items()
        )

    # -- the poll path's question ---------------------------------------------

    def changed_at(self, path: str, value: str) -> Optional[float]:
        """When the change producing *value* at *path* happened, or
        ``None`` when no log knows (never logged, or superseded)."""
        best: Optional[float] = None
        for log in self._logs.values():
            when = log.changed_at(path, value)
            if when is not None and (best is None or when > best):
                best = when
        return best

    # -- waves ----------------------------------------------------------------

    def kick(self) -> bool:
        """Arm a wave if any listener has backlog (used after a failed
        listener's node is restored). Returns whether one was armed."""
        if any(
            self.pending_for(listener) for listener in self._listeners
        ):
            self._arm_wave()
            return True
        return False

    def _arm_wave(self) -> None:
        if not self._wave_armed:
            self._wave_armed = True
            self.sim.schedule(self.wave_ms, self._flush)

    def _flush(self) -> None:
        """One wave: per listener, batch everything past its cursors
        into a single delivery (one round trip), then compact."""
        self._wave_armed = False
        self.waves += 1
        memo: ShieldMemo = {}
        for listener in self._listeners:
            cursors = self._cursors[listener.name]
            batch: List[ChangeRecord] = []
            advanced: Dict[str, int] = {}
            for shard_id in sorted(self._logs):
                pending = self._logs[shard_id].since(
                    cursors.get(shard_id, 0)
                )
                if pending:
                    advanced[shard_id] = pending[-1].seq
                    batch.extend(
                        record for record in pending
                        if listener.wants(record)
                    )
            if not advanced:
                continue
            if not batch:
                # Nothing this listener wants: advance past the
                # filtered records without charging any wire.
                cursors.update(advanced)
                continue
            if listener.node is not None \
                    and self.network.node(listener.node).failed:
                # Down at flush: deliver nothing, move no cursor. The
                # backlog replays whole once the node is back.
                self.delivery_failures += 1
                continue
            cursors.update(advanced)
            batch.sort(key=lambda r: (r.at, r.shard, r.seq))
            if listener.node is None:
                self._hand_over(listener, batch, memo)
            else:
                payload = WAVE_OVERHEAD_BYTES + sum(
                    record.byte_size() for record in batch
                )
                latency = self.network.sample_hop(
                    self.origin_node, listener.node, payload
                )
                # One round trip per (listener, wave): the batched
                # notification plus its ack. The ack's latency sits on
                # no caller's critical path, so only the message is
                # accounted.
                self.messages += 2
                # FIFO channel per listener: this batch must not land
                # before the previous one (a slow fat replay would
                # otherwise be overtaken by the next small wave). At
                # equal instants the event heap keeps schedule order.
                arrival = max(
                    self.sim.now + latency,
                    self._last_arrival.get(listener.name, 0.0),
                )
                self._last_arrival[listener.name] = arrival
                self.sim.schedule(
                    arrival - self.sim.now,
                    self._hand_over, listener, batch, memo,
                )
        self._compact()

    def _hand_over(
        self,
        listener: BusListener,
        batch: List[ChangeRecord],
        memo: ShieldMemo,
    ) -> None:
        listener.deliver(batch, self.sim.now, self, memo)
        self.deliveries += 1
        self.records_delivered += len(batch)

    def _compact(self) -> None:
        for shard_id, log in self._logs.items():
            if self._listeners:
                floor = min(
                    self._cursors[listener.name].get(shard_id, 0)
                    for listener in self._listeners
                )
            else:
                floor = log.last_seq
            self.records_compacted += log.compact(floor)

    # -- introspection --------------------------------------------------------

    def _retained(self) -> float:
        return float(sum(len(log) for log in self._logs.values()))

    @property
    def listeners(self) -> List[BusListener]:
        return list(self._listeners)

    def __repr__(self) -> str:
        return "<ChangeBus %s %d shard(s) %d listener(s)>" % (
            self.origin_node, len(self._logs), len(self._listeners),
        )
