"""Legacy native-watch push forwarding — the transport half.

Before E20, ``SubscriptionHub.start_push`` both *decided* (shield
re-check, delivery records, counters) and *drove the wire* (two
``sample_hop`` stages store → GUPster → client) inside ``core/``.
gupcheck v3's ``sans-io-purity`` rule flags exactly that: protocol
logic in ``core/`` must stay pure/virtual-time, with transport behind
an injected driver.

:class:`PushForwarder` is that driver.  The hub constructs one per
subscription, injecting its *decisions* as callbacks — note the
change, gate each delivery through the shield, count a wire message,
record the delivery — and hands the forwarder's bound
:meth:`PushForwarder.on_change` to the store's native watch hook.
The store then invokes the forwarder directly on each change, so the
wire work never appears on a ``core/`` call stack: core calls only
the constructor (pure) and passes a method *reference* (free).

The staging is bit-identical to the legacy inline closure — same
``sample_hop`` order (the deterministic RNG consumes draws in the
same sequence), same counter increments, same ``schedule`` calls —
which is what keeps every E12 golden fixture byte-stable across the
refactor.
"""

from __future__ import annotations

from typing import Callable

from repro.simnet import Network, Simulator

__all__ = ["PUSH_PAYLOAD_BYTES", "PushForwarder"]

#: Payload charged per forwarded change message (both hops).
PUSH_PAYLOAD_BYTES = 128


class PushForwarder:
    """Two-hop store → GUPster → client forwarding for one
    subscription.

    All policy lives in the injected callbacks; this class only moves
    bytes at sampled latencies:

    * ``note(value)`` — log the change (the hub appends to the bus);
    * ``gate()`` — per-delivery shield re-check at the forwarding
      point; ``False`` withholds (policy may have changed since
      subscribe time);
    * ``on_withheld()`` / ``on_message()`` — counters;
    * ``deliver(value, changed_at, now)`` — record the arrival.
    """

    __slots__ = (
        "sim", "network", "store_node", "server_node", "client_node",
        "_note", "_gate", "_deliver", "_on_withheld", "_on_message",
    )

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        store_node: str,
        server_node: str,
        client_node: str,
        note: Callable[[str], None],
        gate: Callable[[], bool],
        deliver: Callable[[str, float, float], None],
        on_withheld: Callable[[], None],
        on_message: Callable[[], None],
    ) -> None:
        self.sim = sim
        self.network = network
        self.store_node = store_node
        self.server_node = server_node
        self.client_node = client_node
        self._note = note
        self._gate = gate
        self._deliver = deliver
        self._on_withheld = on_withheld
        self._on_message = on_message

    # -- the store's native watch callback ------------------------------

    def on_change(self, value: str) -> None:
        """Forward one change: store → GUPster at a sampled hop, then
        (if the shield still permits) GUPster → client."""
        changed_at = self.sim.now
        self._note(value)
        to_gup = self.network.sample_hop(
            self.store_node, self.server_node, PUSH_PAYLOAD_BYTES
        )
        self._on_message()
        self.sim.schedule(to_gup, self._at_server, value, changed_at)

    def _at_server(self, value: str, changed_at: float) -> None:
        # Per-delivery shield re-check at the forwarding point:
        # policy may have changed since subscription.
        if not self._gate():
            self._on_withheld()
            return
        to_client = self.network.sample_hop(
            self.server_node, self.client_node, PUSH_PAYLOAD_BYTES
        )
        self._on_message()
        self.sim.schedule(
            to_client, self._at_client, value, changed_at
        )

    def _at_client(self, value: str, changed_at: float) -> None:
        self._deliver(value, changed_at, self.sim.now)

    def __repr__(self) -> str:
        return "<PushForwarder %s->%s->%s>" % (
            self.store_node, self.server_node, self.client_node,
        )
