"""Append-only per-shard change log with replay cursors in mind.

Every profile mutation becomes a :class:`ChangeRecord` with a
**monotonic sequence number** (per shard) and the virtual instant it
happened. Listeners replay ``since(cursor)`` and the bus compacts
records every listener has consumed — so the log is bounded by the
slowest cursor, not by history (the unbounded ``_change_log`` the old
SubscriptionHub kept was exactly that bug).

The log also answers the poll path's question — *when did the change
producing this value happen?* — from a **latest-change-per-path
index** maintained on append. The index survives compaction (it is
O(paths), not O(history)) and returns ``None`` when the value it holds
is not the one asked about, instead of the old fabricated
``sim.now`` fallback that recorded near-zero poll latencies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["ChangeLog", "ChangeRecord"]

#: Fixed per-record envelope (seq + timestamps + framing) used when a
#: wave's payload bytes are charged to the simulated network.
RECORD_OVERHEAD_BYTES = 64


class ChangeRecord:
    """One logged profile change."""

    __slots__ = ("seq", "at", "path", "value", "user_id", "shard")

    def __init__(
        self,
        seq: int,
        at: float,
        path: str,
        value: str,
        user_id: Optional[str],
        shard: str,
    ) -> None:
        self.seq = seq
        self.at = at
        self.path = path
        self.value = value
        self.user_id = user_id
        self.shard = shard

    def byte_size(self) -> int:
        """Wire size of this record inside a wave payload."""
        return RECORD_OVERHEAD_BYTES + len(self.path) + len(self.value)

    def __repr__(self) -> str:
        return "<ChangeRecord %s#%d %s=%r @%.1f>" % (
            self.shard, self.seq, self.path, self.value, self.at,
        )


class ChangeLog:
    """Append-only change history for one shard.

    Records are held in append order with **contiguous** sequence
    numbers starting at 1, so ``since(cursor)`` is an O(1) slice (no
    scan): the record with sequence ``s`` lives at offset
    ``s - head_seq``. :meth:`compact` drops the prefix every listener
    has consumed; the latest-change index is untouched by compaction.
    """

    def __init__(self, shard_id: str = "main") -> None:
        self.shard_id = shard_id
        self._records: List[ChangeRecord] = []
        #: Sequence number of ``_records[0]`` (when non-empty).
        self._head_seq = 1
        self.last_seq = 0
        #: path -> (value, at) of the *latest* change on that path.
        # gupcheck: bounded[distinct-paths] -- one entry per changed profile path; updated in place
        self._latest: Dict[str, Tuple[str, float]] = {}
        self.compacted_total = 0

    # -- writing -------------------------------------------------------------

    def append(
        self,
        at: float,
        path: str,
        value: str,
        user_id: Optional[str] = None,
    ) -> ChangeRecord:
        """Log one change at virtual instant *at*; returns the record."""
        self.last_seq += 1
        record = ChangeRecord(
            self.last_seq, at, path, value, user_id, self.shard_id
        )
        self._records.append(record)
        self._latest[path] = (value, at)
        return record

    # -- replay --------------------------------------------------------------

    def since(self, cursor: int) -> List[ChangeRecord]:
        """Every record with ``seq > cursor``, oldest first.

        A cursor below ``head_seq - 1`` would mean the bus compacted
        past an unconsumed record; the bus never does (compaction uses
        the minimum cursor), but the clamp keeps the slice safe."""
        if cursor >= self.last_seq:
            return []
        start = max(0, cursor + 1 - self._head_seq)
        return list(self._records[start:])

    def backlog(self, cursor: int) -> int:
        """How many records *cursor* still has to consume — O(1)."""
        return max(0, self.last_seq - max(cursor, self._head_seq - 1))

    # -- the poll path's question --------------------------------------------

    def changed_at(self, path: str, value: str) -> Optional[float]:
        """When the change that produced *value* at *path* happened —
        or ``None`` when that change was never logged (or has been
        superseded, so its instant is no longer known)."""
        latest = self._latest.get(path)
        if latest is not None and latest[0] == value:
            return latest[1]
        return None

    # -- compaction ----------------------------------------------------------

    def compact(self, min_cursor: int) -> int:
        """Drop every record with ``seq <= min_cursor`` (all consumed).
        Returns how many were dropped. The latest-change index is kept
        whole — it is bounded by distinct paths, not history."""
        if min_cursor < self._head_seq:
            return 0
        keep_from = min(min_cursor, self.last_seq) + 1 - self._head_seq
        if keep_from <= 0:
            return 0
        del self._records[:keep_from]
        self._head_seq += keep_from
        self.compacted_total += keep_from
        return keep_from

    # -- introspection -------------------------------------------------------

    @property
    def head_seq(self) -> int:
        """Sequence number of the oldest retained record."""
        return self._head_seq

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:
        return "<ChangeLog %s seq=%d retained=%d>" % (
            self.shard_id, self.last_seq, len(self._records),
        )
