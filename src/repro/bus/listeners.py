"""Bus consumers: subscriber fan-out, cache invalidation, mirror sync.

:class:`SubscriberListener` is the egress listener — profile values
leave the system toward a requester here, so **every** delta re-checks
``pep.enforce`` under the subscriber's own context before it is
forwarded (the per-delivery shield invariant; see DESIGN.md §4.6).
Within one wave, identical (request, path, requester) pairs share the
decision through the wave memo the bus hands in — the memo never
outlives its wave, so a revocation always takes effect by the next
wave at the latest.

The in-process listeners (``node=None`` — no wire charged) coalesce
write-path housekeeping: one cache-invalidation sweep per wave over
the *distinct* changed paths, one mirror gossip round per wave instead
of one per update.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Protocol, Union

from repro.access import Decision, PolicyEnforcementPoint, RequestContext
from repro.bus.bus import BusListener, ChangeBus, ShieldMemo
from repro.bus.log import ChangeRecord
from repro.pxml import Path, parse_path

__all__ = [
    "CacheInvalidationListener",
    "DEFAULT_MAX_RECORDS",
    "MirrorRefreshListener",
    "RecordingListener",
    "SubscriberListener",
]

#: Default :class:`RecordingListener` retention — roomy enough for
#: every bench, finite so an always-on recorder cannot grow forever.
DEFAULT_MAX_RECORDS = 65536

#: Called with (value, changed_at, delivered_at) for each permitted
#: delta reaching the subscriber.
DeliveryCallback = Callable[[str, float, float], None]
#: Called with the withheld record when the shield denies a delta.
WithheldCallback = Callable[[ChangeRecord], None]


class _Invalidatable(Protocol):  # pragma: no cover - typing only
    def invalidate(self, path: Union[str, Path]) -> int: ...


class _Replicable(Protocol):  # pragma: no cover - typing only
    def replicate(self) -> int: ...


class SubscriberListener(BusListener):
    """Shield-checked push fan-out to one subscriber.

    ``wants`` filters to the watched value path; delivery re-enforces
    the subscription request path for every delta under the
    subscriber's context (memoized only within the current wave on
    identical pairs), forwarding permitted values and reporting
    withheld ones."""

    def __init__(
        self,
        name: str,
        node: str,
        pep: PolicyEnforcementPoint,
        request: Union[str, Path],
        watch_path: str,
        context: RequestContext,
        on_delivery: DeliveryCallback,
        on_withheld: Optional[WithheldCallback] = None,
    ) -> None:
        super().__init__(name, node)
        self._pep = pep
        self._request = parse_path(request)
        self._request_key = str(self._request)
        self.watch_path = watch_path
        self._context = context
        self._on_delivery = on_delivery
        self._on_withheld = on_withheld
        self.delivered = 0
        self.withheld = 0

    def wants(self, record: ChangeRecord) -> bool:
        return record.path == self.watch_path

    def deliver(
        self,
        records: List[ChangeRecord],
        now: float,
        bus: ChangeBus,
        memo: ShieldMemo,
    ) -> None:
        self._deliver_records(records, now, memo, self._context)

    def _deliver_records(
        self,
        records: List[ChangeRecord],
        now: float,
        memo: ShieldMemo,
        context: RequestContext,
    ) -> None:
        """Forward each delta — shield first, per delivery, never per
        batch."""
        for record in records:
            key = (
                self._request_key, record.path, context.requester,
                context.relationship, context.purpose,
            )
            decision: Optional[Decision] = memo.get(key)
            if decision is None:
                decision = self._pep.enforce(self._request, context)
                memo[key] = decision
            if decision.permit:
                self.delivered += 1
                self._on_delivery(record.value, record.at, now)
            else:
                self.withheld += 1
                if self._on_withheld is not None:
                    self._on_withheld(record)


class CacheInvalidationListener(BusListener):
    """Invalidates a component cache once per *distinct* changed path
    per wave — the per-update invalidation storm collapses to one
    sweep per wave. In-process: runs at the cache's own node."""

    def __init__(self, name: str, cache: _Invalidatable) -> None:
        super().__init__(name, node=None)
        self.cache = cache
        self.sweeps = 0
        self.invalidated_paths = 0
        self.coalesced = 0

    def deliver(
        self,
        records: List[ChangeRecord],
        now: float,
        bus: ChangeBus,
        memo: ShieldMemo,
    ) -> None:
        distinct: List[str] = []
        seen = set()
        for record in records:
            if record.path not in seen:
                seen.add(record.path)
                distinct.append(record.path)
        self.sweeps += 1
        self.invalidated_paths += len(distinct)
        self.coalesced += len(records) - len(distinct)
        for path in distinct:
            self.cache.invalidate(parse_path(path))


class MirrorRefreshListener(BusListener):
    """Runs one constellation gossip round per wave with pending
    changes, instead of one replication per update."""

    def __init__(self, name: str, constellation: _Replicable) -> None:
        super().__init__(name, node=None)
        self.constellation = constellation
        self.refreshes = 0
        self.replicated = 0

    def deliver(
        self,
        records: List[ChangeRecord],
        now: float,
        bus: ChangeBus,
        memo: ShieldMemo,
    ) -> None:
        self.refreshes += 1
        self.replicated += self.constellation.replicate()


class RecordingListener(BusListener):
    """Test/bench helper: remembers the last *max_records* records it
    was handed (and when), dropping the oldest beyond the cap —
    ``dropped`` counts what the window lost. With a node, it pays
    wire like any remote listener."""

    def __init__(
        self,
        name: str,
        node: Optional[str] = None,
        max_records: int = DEFAULT_MAX_RECORDS,
    ) -> None:
        super().__init__(name, node)
        if max_records <= 0:
            raise ValueError("max_records must be positive")
        self.max_records = max_records
        self.received: List[ChangeRecord] = []
        self.delivered_at: List[float] = []
        #: Records evicted by the retention cap.
        self.dropped = 0

    def deliver(
        self,
        records: List[ChangeRecord],
        now: float,
        bus: ChangeBus,
        memo: ShieldMemo,
    ) -> None:
        self.received.extend(records)
        self.delivered_at.extend(now for _ in records)
        overflow = len(self.received) - self.max_records
        if overflow > 0:
            del self.received[:overflow]
            del self.delivered_at[:overflow]
            self.dropped += overflow
