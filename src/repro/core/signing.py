"""Signed, timestamped rewritten queries (paper Section 5.3).

    "When an application sends a request to GUPster for a given
    component, GUPster checks whether or not access is granted. It
    rewrites the query accordingly ... and signs it, including a
    timestamp. The application can send the rewritten and signed query
    to the corresponding data store(s). The store will check the
    time-stamp and the signature and eventually return the data. We
    assume that data store will only accept queries which have been
    signed by GUPster."

This is what lets enforcement stay centralized at GUPster without the
data stores holding any policies: a store only needs the verification
key and a freshness window. Signatures are HMAC-SHA256 over the
canonical query text, the requester identity and the timestamps.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Union

from repro.errors import SignatureError, StaleQueryError
from repro.pxml import Path, parse_path

__all__ = ["SignedQuery", "QuerySigner", "QueryVerifier"]

#: How long a signed query stays acceptable (virtual ms).
DEFAULT_FRESHNESS_MS = 5_000.0


class SignedQuery:
    """A rewritten query plus GUPster's signature."""

    def __init__(
        self,
        path: Path,
        requester: str,
        issued_at: float,
        expires_at: float,
        signature: str,
    ) -> None:
        self.path = path
        self.requester = requester
        self.issued_at = issued_at
        self.expires_at = expires_at
        self.signature = signature

    def payload(self) -> bytes:
        return _payload(
            self.path, self.requester, self.issued_at, self.expires_at
        )

    def byte_size(self) -> int:
        return len(str(self.path)) + len(self.requester) + 16 + len(
            self.signature
        )

    def __repr__(self) -> str:
        return "<SignedQuery %s by %s [%s..%s]>" % (
            self.path, self.requester, self.issued_at, self.expires_at,
        )


def _payload(
    path: Path, requester: str, issued_at: float, expires_at: float
) -> bytes:
    return (
        "%s|%s|%.3f|%.3f" % (path, requester, issued_at, expires_at)
    ).encode("utf-8")


class QuerySigner:
    """GUPster's signing side."""

    def __init__(
        self,
        secret: bytes = b"gupster-demo-key",
        freshness_ms: float = DEFAULT_FRESHNESS_MS,
    ) -> None:
        self._secret = secret
        self.freshness_ms = freshness_ms
        self.signed = 0

    def sign(
        self,
        path: Union[str, Path],
        requester: str,
        now: float,
    ) -> SignedQuery:
        parsed = parse_path(path)
        expires = now + self.freshness_ms
        signature = hmac.new(
            self._secret,
            _payload(parsed, requester, now, expires),
            hashlib.sha256,
        ).hexdigest()
        self.signed += 1
        return SignedQuery(parsed, requester, now, expires, signature)

    def verifier(self) -> "QueryVerifier":
        """The verification half handed to data stores."""
        return QueryVerifier(self._secret)


class QueryVerifier:
    """A data store's check of incoming signed queries."""

    def __init__(self, secret: bytes) -> None:
        self._secret = secret
        self.verified = 0
        self.rejected = 0

    def verify(self, query: SignedQuery, now: float) -> None:
        """Raises on forged or stale queries; returns None when OK."""
        expected = hmac.new(
            self._secret, query.payload(), hashlib.sha256
        ).hexdigest()
        if not hmac.compare_digest(expected, query.signature):
            self.rejected += 1
            raise SignatureError(
                "bad signature on query %s" % query.path
            )
        if not query.issued_at <= now <= query.expires_at:
            self.rejected += 1
            raise StaleQueryError(
                "query %s outside freshness window (now=%.1f)"
                % (query.path, now)
            )
        self.verified += 1
