"""The mirrored GUPster constellation (paper Section 4.2).

"'Central repository' has to be understood from a logical point of
view and may be implemented as a constellation of connected servers
... a family of mirrored servers hosted by a consortium of enterprises
and freely available to all users."

Unlike :class:`~repro.core.mdm.CentralizedMdm` (whose mirrors share one
server object — an idealized always-consistent constellation), a
:class:`MirrorConstellation` gives every mirror its **own** server
state, replicated asynchronously from wherever a registration arrived.
That makes the consistency question real: between a registration and
the next replication round, some mirrors return stale referrals. The
constellation experiment (E14) measures that window against the
replication traffic.

Reliability (requirement 12) follows from any-mirror reads; writes go
to the mirror the registrant reached and propagate via the coverage
changelog feed.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import GupsterError, NodeUnreachableError
from repro.pxml import Path, parse_path
from repro.access import RequestContext
from repro.core.referral import Referral
from repro.core.server import GupsterServer
from repro.simnet import Network, Trace
from repro.adapters.base import GupAdapter

__all__ = ["MirrorConstellation"]

ENTRY_BYTES = 96  # serialized coverage-change estimate
REQUEST_OVERHEAD_BYTES = 80
RESOLVE_COMPUTE_MS = 0.3


class MirrorConstellation:
    """A set of peer GUPster mirrors with asynchronous replication."""

    def __init__(
        self,
        network: Network,
        mirror_nodes: List[str],
        make_server: Optional[Callable[[str], GupsterServer]] = None,
    ) -> None:
        if len(mirror_nodes) < 1:
            raise ValueError("need at least one mirror")
        self.network = network
        self.mirror_nodes = list(mirror_nodes)
        factory = make_server or (
            lambda name: GupsterServer(name, enforce_policies=False)
        )
        self.servers: Dict[str, GupsterServer] = {
            node: factory(node) for node in mirror_nodes
        }
        #: (source, target) -> last revision target has seen of source.
        self._sync_marks: Dict[Tuple[str, str], int] = {}
        self.replication_messages = 0
        self.replication_bytes = 0

    # -- membership -----------------------------------------------------------

    def server_at(self, node: str) -> GupsterServer:
        return self.servers[node]

    def join_store(self, adapter: GupAdapter, via: str) -> int:
        """A data store registers at one mirror (the nearest one); the
        registration spreads on the next replication round. All
        mirrors need the adapter handle for chaining-mode fetches."""
        count = self.servers[via].join(adapter)
        for node, server in self.servers.items():
            if node != via:
                server.adapters[adapter.store_id] = adapter
        return count

    def register_component(
        self, path: Union[str, Path], store_id: str, via: str
    ) -> None:
        self.servers[via].register_component(path, store_id)

    # -- replication ------------------------------------------------------------

    def replicate(self, trace: Optional[Trace] = None) -> int:
        """One gossip round: every mirror ships its news to every
        other. Returns the number of change entries applied; charges
        messages/bytes to *trace* when given."""
        applied_total = 0
        for source in self.mirror_nodes:
            source_cov = self.servers[source].coverage
            for target in self.mirror_nodes:
                if source == target:
                    continue
                mark = self._sync_marks.get((source, target), 0)
                changes = source_cov.changes_since(mark)
                if changes:
                    payload = ENTRY_BYTES * len(changes)
                    if trace is not None:
                        trace.hop(source, target, payload,
                                  "replicate %d entries" % len(changes))
                    self.replication_messages += 1
                    self.replication_bytes += payload
                    applied_total += self._apply_foreign(
                        target, changes
                    )
                self._sync_marks[(source, target)] = (
                    source_cov.revision
                )
        return applied_total

    def _apply_foreign(
        self, target: str,
        changes: Sequence[Tuple[int, str, Path, str]],
    ) -> int:
        """Apply a peer's feed. Peer revisions live in a different
        sequence, so entries are re-played through the target's own
        register/unregister (idempotent for registers)."""
        target_cov = self.servers[target].coverage
        applied = 0
        for _revision, op, path, store_id in changes:
            if op == "register":
                before = target_cov.registrations
                target_cov.register(path, store_id)
                if target_cov.registrations != before:
                    applied += 1
            else:
                try:
                    target_cov.unregister(path, store_id)
                    applied += 1
                except GupsterError:
                    pass  # never had it — nothing to undo
        return applied

    # -- reads ------------------------------------------------------------------

    def resolve(
        self,
        client: str,
        request: Union[str, Path],
        context: RequestContext,
        now: float = 0.0,
        prefer: Optional[str] = None,
    ) -> Tuple[Referral, Trace, str]:
        """Resolve at the preferred (or first reachable) mirror.
        Returns (referral, trace, mirror used)."""
        path = parse_path(request)
        order = list(self.mirror_nodes)
        if prefer is not None and prefer in order:
            order.remove(prefer)
            order.insert(0, prefer)
        trace = self.network.trace()
        last_error: Optional[Exception] = None
        for node in order:
            request_bytes = (
                len(str(path)) + context.byte_size()
                + REQUEST_OVERHEAD_BYTES
            )
            try:
                trace.hop(client, node, request_bytes, "resolve")
            except NodeUnreachableError as err:
                last_error = err
                continue
            trace.compute(RESOLVE_COMPUTE_MS, "resolve")
            referral = self.servers[node].resolve(path, context, now)
            trace.hop(node, client,
                      referral.byte_size() + REQUEST_OVERHEAD_BYTES,
                      "referral")
            return referral, trace, node
        raise GupsterError(
            "no mirror reachable: %s" % last_error
        )

    # -- consistency measurement ---------------------------------------------------

    def consistent(self) -> bool:
        """Do all mirrors hold identical coverage right now?"""
        snapshots = []
        for node in self.mirror_nodes:
            coverage = self.servers[node].coverage
            snapshot = tuple(
                sorted(
                    (user, str(path), tuple(sorted(
                        coverage.stores_for(path)
                    )))
                    for user in coverage.users()
                    for path in coverage.paths_for_user(user)
                )
            )
            snapshots.append(snapshot)
        return all(s == snapshots[0] for s in snapshots)

    def stale_mirrors(
        self, request: Union[str, Path]
    ) -> List[str]:
        """Mirrors that currently cannot answer *request* although
        some mirror can."""
        path = parse_path(request)
        havers = []
        lackers = []
        for node in self.mirror_nodes:
            if self.servers[node].coverage.resolve(path).is_covered:
                havers.append(node)
            else:
                lackers.append(node)
        return lackers if havers else []
