"""Distributed query-processing patterns (paper Section 5.2).

"Offering a larger variety of distributed query patterns like chaining,
referral, recruiting (where the request is actually migrated to a
different node) will be needed."

:class:`QueryExecutor` runs one request end-to-end over the simulated
network under each pattern, charging every hop and compute step to a
:class:`~repro.simnet.Trace` so experiment E1 can compare them:

* **referral** (the default) — GUPster returns a signed referral; the
  client fetches fragments directly from stores and merges locally.
* **chaining** — GUPster fetches from the stores itself, merges, and
  returns data (for "a client application with very limited
  capabilities (e.g., a cell phone)").
* **recruiting** — GUPster migrates the query to one data store, which
  gathers the other parts, merges, and replies to the client directly.
* **direct** — the pre-GUPster baseline: the client must already know
  where everything is and speaks to stores without access control.
* **cached** — chaining through GUPster's component cache (E7).

Per-message sizes come from real serialized fragment/referral sizes;
per-step compute costs are explicit constants (class attributes) so
ablations can turn them up or down.

Failure awareness (requirement 13 / E16): every store fetch runs under
a :class:`~repro.core.resilience.RetryPolicy` — failover across the
referral's ``||`` choices, then backed-off re-sweeps — with
per-endpoint health feeding the choice order. The server-mediated
patterns (``chaining``/``cached``) degrade gracefully: parts whose
stores are all unreachable are reported in ``trace.part_status`` and
the *reachable* parts still merge into a partial answer; ``cached``
additionally serves a bounded-staleness cache entry when every store
is down. Only when nothing at all can be produced does the query raise
(:class:`~repro.errors.PartialResultError`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple, Union

from repro.errors import (
    NoCoverageError,
    PartialResultError,
)
from repro.pxml import PNode, Path, extract, parse_path
from repro.pxml.merge import GUP_KEYSPEC, merge_all
from repro.access import RequestContext
from repro.core.referral import Referral, ReferralPart
from repro.core.resilience import (
    TRANSIENT_ERRORS,
    EndpointHealth,
    PartStatus,
    RetryPolicy,
)
from repro.core.server import GupsterServer
from repro.simnet import Network, Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.core.provenance import ProvenanceTracker, SourceAnnotator

__all__ = ["QueryExecutor"]


class QueryExecutor:
    """Runs requests under the Section 5.2 query patterns."""

    #: Fixed protocol overhead per message (headers, framing).
    REQUEST_OVERHEAD_BYTES = 80
    #: GUPster-side compute: schema filter + policy + rewrite + sign.
    RESOLVE_COMPUTE_MS = 0.3
    #: Store-side compute: signature + timestamp verification.
    VERIFY_COMPUTE_MS = 0.1
    #: Store-side compute: evaluate the path over the native store.
    STORE_QUERY_COMPUTE_MS = 0.2
    #: Merge cost per fragment at whichever node merges.
    MERGE_COMPUTE_MS_PER_PART = 0.2
    #: Cache probe/store cost at GUPster (the probe includes the
    #: shield re-check on hits — both are in-memory lookups).
    CACHE_COMPUTE_MS = 0.05

    def __init__(
        self,
        network: Network,
        server: GupsterServer,
        server_node: Optional[str] = None,
        provenance: Optional[ProvenanceTracker] = None,
        annotator: Optional[SourceAnnotator] = None,
        retry_policy: Optional[RetryPolicy] = None,
        health: Optional[EndpointHealth] = None,
    ) -> None:
        self.network = network
        self.server = server
        self.server_node = server_node or server.name
        self.verifier = server.signer.verifier()
        #: Optional :class:`~repro.core.provenance.ProvenanceTracker`;
        #: when set, every resolve/fetch/update lands in the ledger.
        self.provenance = provenance
        #: Optional :class:`~repro.core.provenance.SourceAnnotator`;
        #: when set, fetched fragments are stamped with their origin
        #: store before merging.
        self.annotator = annotator
        #: Retry/backoff behaviour for store fetches. The default does
        #: one backed-off re-sweep; :meth:`RetryPolicy.none` restores
        #: strict first-error-wins.
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        #: Per-store health: recent failures sink a store to the back
        #: of its ``||`` choice list.
        self.health = health if health is not None else EndpointHealth()
        # Re-home every instrument onto the network's world registry so
        # one snapshot/export covers net.*, cache.*, health.* and
        # server.* (E18).
        self.health.bind_registry(network.metrics)
        server.bind_registry(network.metrics)

    # -- shared pieces -----------------------------------------------------------

    def _request_bytes(
        self, path: Path, context: RequestContext
    ) -> int:
        return (
            len(str(path))
            + context.byte_size()
            + self.REQUEST_OVERHEAD_BYTES
        )

    def _fetch_part_from(
        self,
        origin: str,
        part: ReferralPart,
        now: float,
        trace: Trace,
    ) -> Tuple[Optional[PNode], str]:
        """Fetch one referral part, surviving dead stores and lost
        messages when alternatives (or retry budget) remain.

        Returns (fragment, store used). Within one sweep the ``||``
        choices are tried in health-then-referral order; a failed store
        charges the detection timeout and the next choice is tried
        (failover). When a sweep ends with nothing, the retry policy
        may wait an exponential backoff and sweep again — a flapping
        store can come back. Raises the last transient error once the
        budget is exhausted."""
        last_error: Optional[Exception] = None
        policy = self.retry_policy
        for sweep in range(policy.max_attempts):
            if sweep:
                trace.wait(
                    policy.backoff_ms(sweep),
                    "backoff before retry sweep %d" % (sweep + 1),
                )
                trace.note_retry()
            candidates = [
                store_id
                for store_id in self.health.order(part.store_ids)
                if store_id in self.server.adapters
            ]
            if not candidates:
                break
            for index, store_id in enumerate(candidates):
                adapter = self.server.adapters[store_id]
                query_bytes = (
                    part.signed_query.byte_size()
                    + self.REQUEST_OVERHEAD_BYTES
                    if part.signed_query is not None
                    else len(str(part.path)) + self.REQUEST_OVERHEAD_BYTES
                )
                try:
                    with trace.span(
                        "fetch.store",
                        store=store_id, path=str(part.path), sweep=sweep,
                    ) as attempt:
                        trace.hop(origin, store_id, query_bytes,
                                  "query %s" % part.path)
                        if part.signed_query is not None:
                            self.verifier.verify(part.signed_query, now)
                            trace.compute(
                                self.VERIFY_COMPUTE_MS, "verify signature"
                            )
                        trace.compute(
                            self.STORE_QUERY_COMPUTE_MS, "evaluate path"
                        )
                        fragment = adapter.get(part.path)
                        if (
                            fragment is not None
                            and self.annotator is not None
                        ):
                            self.annotator.annotate(fragment, store_id)
                        response_bytes = (
                            fragment.byte_size()
                            if fragment is not None else 32
                        ) + self.REQUEST_OVERHEAD_BYTES
                        trace.hop(store_id, origin, response_bytes,
                                  "fragment")
                        attempt.set("status", "ok")
                except TRANSIENT_ERRORS as err:
                    last_error = err
                    self.health.failure(store_id)
                    if index + 1 < len(candidates):
                        trace.note_failover()
                    continue
                self.health.success(store_id)
                return fragment, store_id
        if last_error is not None:
            raise last_error
        raise NoCoverageError(
            "no adapter registered for any of %s" % part.store_ids
        )

    def _fetch_parts_degradable(
        self,
        origin: str,
        referral: Referral,
        now: float,
        trace: Trace,
    ) -> Tuple[List[Optional[PNode]], List[PartStatus]]:
        """Parallel part fan-out that records failures instead of
        raising: the caller decides whether a partial answer is
        acceptable. Statuses land on the parent trace."""
        fragments: List[Optional[PNode]] = []
        statuses: List[PartStatus] = []
        branches: List[Trace] = []
        for part in referral.parts:
            branch = trace.fork()
            try:
                fragment, store = self._fetch_part_from(
                    origin, part, now, branch
                )
            except TRANSIENT_ERRORS as err:
                statuses.append(
                    PartStatus(part.path, ok=False, error=err)
                )
            except NoCoverageError as err:
                statuses.append(
                    PartStatus(part.path, ok=False, error=err)
                )
            else:
                fragments.append(fragment)
                statuses.append(PartStatus(part.path, store=store))
            branches.append(branch)
        trace.join(branches)
        trace.part_status.extend(statuses)
        return fragments, statuses

    def _merge_at(
        self,
        fragments: List[PNode],
        trace: Trace,
        where: str,
    ) -> Optional[PNode]:
        fragments = [f for f in fragments if f is not None]
        if not fragments:
            return None
        if len(fragments) == 1:
            return fragments[0]
        trace.compute(
            self.MERGE_COMPUTE_MS_PER_PART * len(fragments),
            "merge %d fragments at %s" % (len(fragments), where),
        )
        return merge_all(fragments, GUP_KEYSPEC)

    def _resolve_tracked(
        self, path: Path, context: RequestContext, now: float
    ) -> Referral:
        """Resolve at the server, recording grants and denials in the
        provenance ledger when one is attached."""
        from repro.errors import AccessDeniedError

        try:
            referral = self.server.resolve(path, context, now)
        except AccessDeniedError:
            if self.provenance is not None:
                self.provenance.record(
                    now, context, path, [], "resolve", granted=False
                )
            raise
        if self.provenance is not None:
            stores = sorted(
                {s for part in referral.parts for s in part.store_ids}
            )
            self.provenance.record(
                now, context, path, stores, "resolve", granted=True
            )
        return referral

    # -- patterns ------------------------------------------------------------------

    def referral(
        self,
        client: str,
        request: Union[str, Path],
        context: RequestContext,
        now: float = 0.0,
        parallel: bool = True,
    ) -> Tuple[Optional[PNode], Trace]:
        """The default GUPster pattern: referral, then direct fetches.

        The client is assumed to want every part (it asked for the
        component): a part whose stores are all unreachable raises
        after retries/failovers, as before."""
        path = parse_path(request)
        trace = self.network.trace()
        with trace.span(
            "query.referral",
            path=str(path), scope=context.cache_scope(), client=client,
        ):
            trace.hop(client, self.server_node,
                      self._request_bytes(path, context),
                      "resolve request")
            trace.compute(self.RESOLVE_COMPUTE_MS, "rewrite+policy+sign")
            referral = self._resolve_tracked(path, context, now)
            trace.hop(self.server_node, client,
                      referral.byte_size() + self.REQUEST_OVERHEAD_BYTES,
                      "referral")
            fragments: List[Optional[PNode]] = []
            if parallel and len(referral.parts) > 1:
                branches = []
                for part in referral.parts:
                    branch = trace.fork()
                    fragment, _store = self._fetch_part_from(
                        client, part, now, branch
                    )
                    fragments.append(fragment)
                    branches.append(branch)
                trace.join(branches)
            else:
                for part in referral.parts:
                    fragment, _store = self._fetch_part_from(
                        client, part, now, trace
                    )
                    fragments.append(fragment)
            merged = self._merge_at(
                [f for f in fragments if f is not None], trace, client
            )
        return merged, trace

    def chaining(
        self,
        client: str,
        request: Union[str, Path],
        context: RequestContext,
        now: float = 0.0,
    ) -> Tuple[Optional[PNode], Trace]:
        """GUPster fetches and merges on the client's behalf.

        Degrades gracefully: unreachable parts are dropped from the
        merge and reported in ``trace.part_status`` /
        ``trace.degraded_parts``. Raises
        :class:`~repro.errors.PartialResultError` only when *every*
        part failed."""
        path = parse_path(request)
        trace = self.network.trace()
        with trace.span(
            "query.chaining",
            path=str(path), scope=context.cache_scope(), client=client,
        ) as pattern:
            trace.hop(client, self.server_node,
                      self._request_bytes(path, context),
                      "chained request")
            trace.compute(self.RESOLVE_COMPUTE_MS, "rewrite+policy+sign")
            referral = self._resolve_tracked(path, context, now)
            fragments, statuses = self._fetch_parts_degradable(
                self.server_node, referral, now, trace
            )
            failed = [s for s in statuses if not s.ok]
            if failed and not any(s.ok for s in statuses):
                raise PartialResultError(
                    "every part of %s is unreachable" % path, statuses
                )
            if failed:
                trace.note_degraded(len(failed))
                pattern.set("degraded_parts", len(failed))
            merged = self._merge_at(
                [f for f in fragments if f is not None],
                trace, self.server_node,
            )
            response_bytes = (
                merged.byte_size() if merged is not None else 32
            ) + self.REQUEST_OVERHEAD_BYTES
            trace.hop(self.server_node, client, response_bytes,
                      "merged result")
        return merged, trace

    def recruiting(
        self,
        client: str,
        request: Union[str, Path],
        context: RequestContext,
        now: float = 0.0,
    ) -> Tuple[Optional[PNode], Trace]:
        """GUPster migrates the query to a data store, which gathers the
        remaining parts and answers the client directly."""
        path = parse_path(request)
        trace = self.network.trace()
        with trace.span(
            "query.recruiting",
            path=str(path), scope=context.cache_scope(), client=client,
        ) as pattern:
            trace.hop(client, self.server_node,
                      self._request_bytes(path, context),
                      "recruited request")
            trace.compute(self.RESOLVE_COMPUTE_MS, "rewrite+policy+sign")
            referral = self._resolve_tracked(path, context, now)
            # Prefer a healthy recruit among the first part's choices.
            recruit = self.health.order(referral.parts[0].store_ids)[0]
            pattern.set("recruit", recruit)
            plan_bytes = (
                referral.byte_size() + self.REQUEST_OVERHEAD_BYTES
            )
            trace.hop(self.server_node, recruit, plan_bytes,
                      "migrate query plan")
            fragments: List[Optional[PNode]] = []
            # The recruit serves its own part locally...
            self.verifier.verify(referral.parts[0].signed_query, now)
            trace.compute(
                self.VERIFY_COMPUTE_MS + self.STORE_QUERY_COMPUTE_MS,
                "local part at recruit",
            )
            local_adapter = self.server.adapters.get(recruit)
            if local_adapter is not None:
                fragments.append(
                    local_adapter.get(referral.parts[0].path)
                )
            # ...and fetches the remaining parts from their stores.
            branches = []
            for part in referral.parts[1:]:
                branch = trace.fork()
                fragment, _store = self._fetch_part_from(
                    recruit, part, now, branch
                )
                fragments.append(fragment)
                branches.append(branch)
            trace.join(branches)
            merged = self._merge_at(
                [f for f in fragments if f is not None], trace, recruit
            )
            response_bytes = (
                merged.byte_size() if merged is not None else 32
            ) + self.REQUEST_OVERHEAD_BYTES
            trace.hop(recruit, client, response_bytes,
                      "result to client")
        return merged, trace

    def direct(
        self,
        client: str,
        targets: List[Tuple[str, Union[str, Path]]],
        now: float = 0.0,
    ) -> Tuple[Optional[PNode], Trace]:
        """Pre-GUPster baseline: the client already knows the stores and
        paths (no meta-data lookup, no access control, no signatures)."""
        trace = self.network.trace()
        with trace.span(
            "query.direct", client=client, targets=len(targets),
        ):
            fragments: List[Optional[PNode]] = []
            for store_id, raw_path in targets:
                path = parse_path(raw_path)
                part = ReferralPart(path, [store_id])
                fragment, _store = self._fetch_part_from(
                    client, part, now, trace
                )
                fragments.append(fragment)
            merged = self._merge_at(
                [f for f in fragments if f is not None], trace, client
            )
        return merged, trace

    def cached(
        self,
        client: str,
        request: Union[str, Path],
        context: RequestContext,
        now: float = 0.0,
    ) -> Tuple[Optional[PNode], Trace, bool]:
        """Chaining through GUPster's component cache.

        Returns (fragment, trace, was_hit).

        The cache sits *behind* the privacy shield: entries are keyed
        by the requester's privacy scope and the shield is re-checked
        on every hit, so requester A's permitted slice can never leak
        to requester B (the pre-fix behaviour). On total store failure
        the server may serve the requester's own last-known entry
        within the cache's stale grace (``was_hit`` is True and the
        trace records a stale serve); partial failures degrade like
        ``chaining`` and are never written back to the cache."""
        if self.server.cache is None:
            raise ValueError("server has no cache configured")
        path = parse_path(request)
        trace = self.network.trace()
        with trace.span(
            "query.cached",
            path=str(path), scope=context.cache_scope(), client=client,
        ) as pattern:
            trace.hop(client, self.server_node,
                      self._request_bytes(path, context),
                      "cached request")
            trace.compute(self.CACHE_COMPUTE_MS, "cache probe")
            cached = self.server.cache_lookup(path, context, now)
            if cached is not None:
                pattern.set("cache", "hit")
                trace.hop(
                    self.server_node, client,
                    cached.byte_size() + self.REQUEST_OVERHEAD_BYTES,
                    "cache hit",
                )
                return cached, trace, True
            pattern.set("cache", "miss")
            trace.compute(self.RESOLVE_COMPUTE_MS, "rewrite+policy+sign")
            referral = self._resolve_tracked(path, context, now)
            fragments, statuses = self._fetch_parts_degradable(
                self.server_node, referral, now, trace
            )
            failed = [s for s in statuses if not s.ok]
            if failed and not any(s.ok for s in statuses):
                stale = self.server.cache_stale_lookup(
                    path, context, now
                )
                if stale is not None:
                    pattern.set("cache", "stale_serve")
                    trace.note_stale_serve()
                    trace.note_degraded(len(failed))
                    trace.hop(
                        self.server_node, client,
                        stale.byte_size() + self.REQUEST_OVERHEAD_BYTES,
                        "stale cache serve",
                    )
                    return stale, trace, True
                raise PartialResultError(
                    "every part of %s is unreachable and no stale cache "
                    "entry survives" % path,
                    statuses,
                )
            if failed:
                trace.note_degraded(len(failed))
                pattern.set("degraded_parts", len(failed))
            merged = self._merge_at(
                [f for f in fragments if f is not None],
                trace, self.server_node,
            )
            if merged is not None and not failed:
                # Partial merges are never cached — a degraded answer
                # must not masquerade as the component once stores
                # recover.
                if self.server.cache_store(path, merged, context, now):
                    trace.compute(self.CACHE_COMPUTE_MS, "cache fill")
            response_bytes = (
                merged.byte_size() if merged is not None else 32
            ) + self.REQUEST_OVERHEAD_BYTES
            trace.hop(self.server_node, client, response_bytes,
                      "filled result")
        return merged, trace, False

    # -- writes ----------------------------------------------------------------

    def provision(
        self,
        client: str,
        request: Union[str, Path],
        fragment: PNode,
        context: RequestContext,
        now: float = 0.0,
    ) -> Trace:
        """Enter-once write: resolve for update, then fan the fragment
        out to every store holding the component."""
        path = parse_path(request)
        trace = self.network.trace()
        with trace.span(
            "query.provision",
            path=str(path), scope=context.cache_scope(), client=client,
        ):
            return self._provision_under_span(
                client, path, fragment, context, now, trace
            )

    def _provision_under_span(
        self,
        client: str,
        path: Path,
        fragment: PNode,
        context: RequestContext,
        now: float,
        trace: Trace,
    ) -> Trace:
        trace.hop(client, self.server_node,
                  self._request_bytes(path, context), "update resolve")
        trace.compute(self.RESOLVE_COMPUTE_MS, "rewrite+policy+sign")
        referral = self.server.resolve_for_update(path, context, now)
        if self.provenance is not None:
            stores = sorted(
                {s for part in referral.parts for s in part.store_ids}
            )
            self.provenance.record(
                now, context, path, stores, "update", granted=True
            )
        trace.hop(self.server_node, client,
                  referral.byte_size() + self.REQUEST_OVERHEAD_BYTES,
                  "update referral")
        # Wrap the new component state in a user document so each
        # store can be handed exactly its slice (a store registered
        # for item[@type='corporate'] must not receive — nor lose —
        # the personal half).
        if fragment.tag == "user":
            document = fragment.copy()
        else:
            document = PNode("user", {"id": path.user_id() or ""})
            document.append(fragment.copy())
        branches = []
        for part in referral.parts:
            branch = trace.fork()
            store_id = part.store_ids[0]
            component = part.path.steps[1].name
            sliced = extract(document, part.path.element_path())
            content = (
                sliced.child(component) if sliced is not None else None
            )
            if content is None:
                content = PNode(component)
            branch.hop(client, store_id,
                       content.byte_size() + self.REQUEST_OVERHEAD_BYTES,
                       "write %s" % part.path)
            if part.signed_query is not None:
                self.verifier.verify(part.signed_query, now)
                branch.compute(self.VERIFY_COMPUTE_MS, "verify")
            adapter = self.server.adapters.get(store_id)
            if adapter is not None:
                adapter.put(part.path.prefix(2), content)
            branch.hop(store_id, client, 32, "ack")
            branches.append(branch)
        trace.join(branches)
        return trace
