"""Distributed query-processing patterns (paper Section 5.2).

"Offering a larger variety of distributed query patterns like chaining,
referral, recruiting (where the request is actually migrated to a
different node) will be needed."

:class:`QueryExecutor` runs one request end-to-end over the simulated
network under each pattern, charging every hop and compute step to a
:class:`~repro.simnet.Trace` so experiment E1 can compare them:

* **referral** (the default) — GUPster returns a signed referral; the
  client fetches fragments directly from stores and merges locally.
* **chaining** — GUPster fetches from the stores itself, merges, and
  returns data (for "a client application with very limited
  capabilities (e.g., a cell phone)").
* **recruiting** — GUPster migrates the query to one data store, which
  gathers the other parts, merges, and replies to the client directly.
* **direct** — the pre-GUPster baseline: the client must already know
  where everything is and speaks to stores without access control.
* **cached** — chaining through GUPster's component cache (E7).

Per-message sizes come from real serialized fragment/referral sizes;
per-step compute costs are explicit constants (class attributes) so
ablations can turn them up or down.

Failure awareness (requirement 13 / E16): every store fetch runs under
a :class:`~repro.core.resilience.RetryPolicy` — failover across the
referral's ``||`` choices, then backed-off re-sweeps — with
per-endpoint health feeding the choice order. The server-mediated
patterns (``chaining``/``cached``) degrade gracefully: parts whose
stores are all unreachable are reported in ``trace.part_status`` and
the *reachable* parts still merge into a partial answer; ``cached``
additionally serves a bounded-staleness cache entry when every store
is down. Only when nothing at all can be produced does the query raise
(:class:`~repro.errors.PartialResultError`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import (
    AccessDeniedError,
    NoCoverageError,
    PartialResultError,
    ReproError,
)
from repro.pxml import PNode, Path, parse_path
from repro.pxml.merge import GUP_KEYSPEC, merge_all
from repro.access import RequestContext
from repro.core.referral import Referral, ReferralPart
from repro.core.resilience import (
    TRANSIENT_ERRORS,
    EndpointHealth,
    PartStatus,
    RetryPolicy,
)
from repro.core.server import GupsterServer

# Module-style import: repro.sansio.engine imports repro.core at its
# own import time, so a from-import here would deadlock whichever side
# loads second. The attribute is only resolved at call time.
import repro.sansio.engine as _sansio
from repro.simnet import Network, Trace
from repro.simnet.driver import SimnetDriver

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.core.provenance import ProvenanceTracker, SourceAnnotator

__all__ = ["BatchItemResult", "QueryBatch", "QueryExecutor"]


class BatchItemResult:
    """Outcome of one query inside a :class:`QueryBatch`.

    Mirrors what the equivalent *sequential* query would have produced:
    ``fragment`` is the merged answer (bit-identical to the sequential
    merge), ``error`` is the exception the sequential call would have
    raised (shield denial, spurious query, no coverage, total-failure
    :class:`~repro.errors.PartialResultError`), and ``statuses`` are
    the per-part :class:`~repro.core.resilience.PartStatus` reports in
    referral order."""

    __slots__ = ("path", "fragment", "hit", "stale", "statuses", "error")

    def __init__(
        self,
        path: Union[str, Path],
        fragment: Optional[PNode] = None,
        hit: bool = False,
        stale: bool = False,
        statuses: Optional[List[PartStatus]] = None,
        error: Optional[Exception] = None,
    ) -> None:
        self.path = path
        self.fragment = fragment
        self.hit = hit
        self.stale = stale
        self.statuses: List[PartStatus] = (
            statuses if statuses is not None else []
        )
        self.error = error

    @property
    def ok(self) -> bool:
        """True when the sequential equivalent would not have raised."""
        return self.error is None

    @property
    def degraded_parts(self) -> int:
        """Unreachable referral parts behind this (partial) answer."""
        return sum(1 for status in self.statuses if not status.ok)

    def __repr__(self) -> str:
        if self.error is not None:
            return "<BatchItemResult %s error=%s>" % (
                self.path, type(self.error).__name__,
            )
        flags = "".join(
            flag for flag, on in (
                ("H", self.hit), ("S", self.stale),
                ("D", self.degraded_parts > 0),
            ) if on
        )
        return "<BatchItemResult %s ok%s>" % (
            self.path, " " + flags if flags else "",
        )


class _BatchJob:
    """One (item, referral part) sub-fetch inside a batched fan-out."""

    __slots__ = (
        "item", "part_index", "part", "candidates", "next_index",
        "fragment", "store", "done", "last_error",
    )

    def __init__(
        self, item: int, part_index: int, part: ReferralPart
    ) -> None:
        self.item = item
        self.part_index = part_index
        self.part = part
        self.candidates: List[str] = []
        self.next_index = 0
        self.fragment: Optional[PNode] = None
        self.store: Optional[str] = None
        self.done = False
        self.last_error: Optional[Exception] = None


class QueryExecutor:
    """Runs requests under the Section 5.2 query patterns."""

    #: Fixed protocol overhead per message (headers, framing).
    REQUEST_OVERHEAD_BYTES = 80
    #: GUPster-side compute: schema filter + policy + rewrite + sign.
    RESOLVE_COMPUTE_MS = 0.3
    #: Store-side compute: signature + timestamp verification.
    VERIFY_COMPUTE_MS = 0.1
    #: Store-side compute: evaluate the path over the native store.
    STORE_QUERY_COMPUTE_MS = 0.2
    #: Merge cost per fragment at whichever node merges.
    MERGE_COMPUTE_MS_PER_PART = 0.2
    #: Cache probe/store cost at GUPster (the probe includes the
    #: shield re-check on hits — both are in-memory lookups).
    CACHE_COMPUTE_MS = 0.05

    def __init__(
        self,
        network: Network,
        server: GupsterServer,
        server_node: Optional[str] = None,
        provenance: Optional[ProvenanceTracker] = None,
        annotator: Optional[SourceAnnotator] = None,
        retry_policy: Optional[RetryPolicy] = None,
        health: Optional[EndpointHealth] = None,
    ) -> None:
        self.network = network
        self.server = server
        self.server_node = server_node or server.name
        self.verifier = server.signer.verifier()
        #: Optional :class:`~repro.core.provenance.ProvenanceTracker`;
        #: when set, every resolve/fetch/update lands in the ledger.
        self.provenance = provenance
        #: Optional :class:`~repro.core.provenance.SourceAnnotator`;
        #: when set, fetched fragments are stamped with their origin
        #: store before merging.
        self.annotator = annotator
        #: Retry/backoff behaviour for store fetches. The default does
        #: one backed-off re-sweep; :meth:`RetryPolicy.none` restores
        #: strict first-error-wins.
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        #: Per-store health: recent failures sink a store to the back
        #: of its ``||`` choice list.
        self.health = health if health is not None else EndpointHealth()
        # Re-home every instrument onto the network's world registry so
        # one snapshot/export covers net.*, cache.*, health.* and
        # server.* (E18).
        self.health.bind_registry(network.metrics)
        server.bind_registry(network.metrics)

    # -- shared pieces -----------------------------------------------------------

    def _request_bytes(
        self, path: Path, context: RequestContext
    ) -> int:
        return (
            len(str(path))
            + context.byte_size()
            + self.REQUEST_OVERHEAD_BYTES
        )

    def _fetch_part_from(
        self,
        origin: str,
        part: ReferralPart,
        now: float,
        trace: Trace,
    ) -> Tuple[Optional[PNode], str]:
        """Fetch one referral part, surviving dead stores and lost
        messages when alternatives (or retry budget) remain.

        Returns (fragment, store used). Within one sweep the ``||``
        choices are tried in health-then-referral order; a failed store
        charges the detection timeout and the next choice is tried
        (failover). When a sweep ends with nothing, the retry policy
        may wait an exponential backoff and sweep again — a flapping
        store can come back. Raises the last transient error once the
        budget is exhausted."""
        last_error: Optional[Exception] = None
        policy = self.retry_policy
        for sweep in range(policy.max_attempts):
            if sweep:
                trace.wait(
                    policy.backoff_ms(sweep),
                    "backoff before retry sweep %d" % (sweep + 1),
                )
                trace.note_retry()
            candidates = [
                store_id
                for store_id in self.health.order(part.store_ids)
                if store_id in self.server.adapters
            ]
            if not candidates:
                break
            for index, store_id in enumerate(candidates):
                adapter = self.server.adapters[store_id]
                query_bytes = (
                    part.signed_query.byte_size()
                    + self.REQUEST_OVERHEAD_BYTES
                    if part.signed_query is not None
                    else len(str(part.path)) + self.REQUEST_OVERHEAD_BYTES
                )
                try:
                    with trace.span(
                        "fetch.store",
                        store=store_id, path=str(part.path), sweep=sweep,
                    ) as attempt:
                        trace.hop(origin, store_id, query_bytes,
                                  "query %s" % part.path)
                        if part.signed_query is not None:
                            self.verifier.verify(part.signed_query, now)
                            trace.compute(
                                self.VERIFY_COMPUTE_MS, "verify signature"
                            )
                        trace.compute(
                            self.STORE_QUERY_COMPUTE_MS, "evaluate path"
                        )
                        fragment = adapter.get(part.path)
                        if (
                            fragment is not None
                            and self.annotator is not None
                        ):
                            self.annotator.annotate(fragment, store_id)
                        response_bytes = (
                            fragment.byte_size()
                            if fragment is not None else 32
                        ) + self.REQUEST_OVERHEAD_BYTES
                        trace.hop(store_id, origin, response_bytes,
                                  "fragment")
                        attempt.set("status", "ok")
                except TRANSIENT_ERRORS as err:
                    last_error = err
                    self.health.failure(store_id)
                    if index + 1 < len(candidates):
                        trace.note_failover()
                    continue
                self.health.success(store_id)
                return fragment, store_id
        if last_error is not None:
            raise last_error
        raise NoCoverageError(
            "no adapter registered for any of %s" % part.store_ids
        )

    def _merge_at(
        self,
        fragments: List[PNode],
        trace: Trace,
        where: str,
    ) -> Optional[PNode]:
        fragments = [f for f in fragments if f is not None]
        if not fragments:
            return None
        if len(fragments) == 1:
            return fragments[0]
        trace.compute(
            self.MERGE_COMPUTE_MS_PER_PART * len(fragments),
            "merge %d fragments at %s" % (len(fragments), where),
        )
        return merge_all(fragments, GUP_KEYSPEC)

    def _resolve_tracked(
        self, path: Path, context: RequestContext, now: float
    ) -> Referral:
        """Resolve at the server, recording grants and denials in the
        provenance ledger when one is attached."""
        from repro.errors import AccessDeniedError

        try:
            referral = self.server.resolve(path, context, now)
        except AccessDeniedError:
            if self.provenance is not None:
                self.provenance.record(
                    now, context, path, [], "resolve", granted=False
                )
            raise
        if self.provenance is not None:
            stores = sorted(
                {s for part in referral.parts for s in part.store_ids}
            )
            self.provenance.record(
                now, context, path, stores, "resolve", granted=True
            )
        return referral

    # -- patterns ------------------------------------------------------------------

    def referral(
        self,
        client: str,
        request: Union[str, Path],
        context: RequestContext,
        now: float = 0.0,
        parallel: bool = True,
    ) -> Tuple[Optional[PNode], Trace]:
        """The default GUPster pattern: referral, then direct fetches.

        The client is assumed to want every part (it asked for the
        component): a part whose stores are all unreachable raises
        after retries/failovers, as before."""
        path = parse_path(request)
        trace = self.network.trace()
        with trace.span(
            "query.referral",
            path=str(path), scope=context.cache_scope(), client=client,
        ):
            trace.hop(client, self.server_node,
                      self._request_bytes(path, context),
                      "resolve request")
            trace.compute(self.RESOLVE_COMPUTE_MS, "rewrite+policy+sign")
            referral = self._resolve_tracked(path, context, now)
            trace.hop(self.server_node, client,
                      referral.byte_size() + self.REQUEST_OVERHEAD_BYTES,
                      "referral")
            fragments: List[Optional[PNode]] = []
            if parallel and len(referral.parts) > 1:
                branches = []
                for part in referral.parts:
                    branch = trace.fork()
                    fragment, _store = self._fetch_part_from(
                        client, part, now, branch
                    )
                    fragments.append(fragment)
                    branches.append(branch)
                trace.join(branches)
            else:
                for part in referral.parts:
                    fragment, _store = self._fetch_part_from(
                        client, part, now, trace
                    )
                    fragments.append(fragment)
            merged = self._merge_at(
                [f for f in fragments if f is not None], trace, client
            )
        return merged, trace

    def chaining(
        self,
        client: str,
        request: Union[str, Path],
        context: RequestContext,
        now: float = 0.0,
    ) -> Tuple[Optional[PNode], Trace]:
        """GUPster fetches and merges on the client's behalf.

        Degrades gracefully: unreachable parts are dropped from the
        merge and reported in ``trace.part_status`` /
        ``trace.degraded_parts``. Raises
        :class:`~repro.errors.PartialResultError` only when *every*
        part failed.

        Since the sans-io refactor the protocol logic lives in
        :meth:`repro.sansio.SansIoQueryEngine.chain`; this method
        builds the program and drives it over the simulated network."""
        path = parse_path(request)
        trace = self.network.trace()
        engine = _sansio.SansIoQueryEngine(self)
        driver = SimnetDriver(self.server.adapters)
        outcome = driver.run(
            engine.chain(client, path, context, now), trace
        )
        return outcome.fragment, trace

    def recruiting(
        self,
        client: str,
        request: Union[str, Path],
        context: RequestContext,
        now: float = 0.0,
    ) -> Tuple[Optional[PNode], Trace]:
        """GUPster migrates the query to a data store, which gathers the
        remaining parts and answers the client directly."""
        path = parse_path(request)
        trace = self.network.trace()
        with trace.span(
            "query.recruiting",
            path=str(path), scope=context.cache_scope(), client=client,
        ) as pattern:
            trace.hop(client, self.server_node,
                      self._request_bytes(path, context),
                      "recruited request")
            trace.compute(self.RESOLVE_COMPUTE_MS, "rewrite+policy+sign")
            referral = self._resolve_tracked(path, context, now)
            # Prefer a healthy recruit among the first part's choices.
            recruit = self.health.order(referral.parts[0].store_ids)[0]
            pattern.set("recruit", recruit)
            plan_bytes = (
                referral.byte_size() + self.REQUEST_OVERHEAD_BYTES
            )
            trace.hop(self.server_node, recruit, plan_bytes,
                      "migrate query plan")
            fragments: List[Optional[PNode]] = []
            # The recruit serves its own part locally...
            self.verifier.verify(referral.parts[0].signed_query, now)
            trace.compute(
                self.VERIFY_COMPUTE_MS + self.STORE_QUERY_COMPUTE_MS,
                "local part at recruit",
            )
            local_adapter = self.server.adapters.get(recruit)
            if local_adapter is not None:
                fragments.append(
                    local_adapter.get(referral.parts[0].path)
                )
            # ...and fetches the remaining parts from their stores.
            branches = []
            for part in referral.parts[1:]:
                branch = trace.fork()
                fragment, _store = self._fetch_part_from(
                    recruit, part, now, branch
                )
                fragments.append(fragment)
                branches.append(branch)
            trace.join(branches)
            merged = self._merge_at(
                [f for f in fragments if f is not None], trace, recruit
            )
            response_bytes = (
                merged.byte_size() if merged is not None else 32
            ) + self.REQUEST_OVERHEAD_BYTES
            trace.hop(recruit, client, response_bytes,
                      "result to client")
        return merged, trace

    def direct(
        self,
        client: str,
        targets: List[Tuple[str, Union[str, Path]]],
        now: float = 0.0,
    ) -> Tuple[Optional[PNode], Trace]:
        """Pre-GUPster baseline: the client already knows the stores and
        paths (no meta-data lookup, no access control, no signatures)."""
        trace = self.network.trace()
        with trace.span(
            "query.direct", client=client, targets=len(targets),
        ):
            fragments: List[Optional[PNode]] = []
            for store_id, raw_path in targets:
                path = parse_path(raw_path)
                part = ReferralPart(path, [store_id])
                fragment, _store = self._fetch_part_from(
                    client, part, now, trace
                )
                fragments.append(fragment)
            merged = self._merge_at(
                [f for f in fragments if f is not None], trace, client
            )
        return merged, trace

    def cached(
        self,
        client: str,
        request: Union[str, Path],
        context: RequestContext,
        now: float = 0.0,
    ) -> Tuple[Optional[PNode], Trace, bool]:
        """Chaining through GUPster's component cache.

        Returns (fragment, trace, was_hit).

        The cache sits *behind* the privacy shield: entries are keyed
        by the requester's privacy scope and the shield is re-checked
        on every hit, so requester A's permitted slice can never leak
        to requester B (the pre-fix behaviour). On total store failure
        the server may serve the requester's own last-known entry
        within the cache's stale grace (``was_hit`` is True and the
        trace records a stale serve); partial failures degrade like
        ``chaining`` and are never written back to the cache.

        Since the sans-io refactor the protocol logic lives in
        :meth:`repro.sansio.SansIoQueryEngine.cached`; this method
        builds the program and drives it over the simulated network."""
        if self.server.cache is None:
            raise ValueError("server has no cache configured")
        path = parse_path(request)
        trace = self.network.trace()
        engine = _sansio.SansIoQueryEngine(self)
        driver = SimnetDriver(self.server.adapters)
        outcome = driver.run(
            engine.cached(client, path, context, now), trace
        )
        return outcome.fragment, trace, outcome.hit

    # -- batched execution (E19) -------------------------------------------------

    def execute_batch(
        self,
        client: str,
        requests: Sequence[Union[str, Path]],
        contexts: Sequence[RequestContext],
        now: float = 0.0,
        use_cache: bool = False,
    ) -> Tuple[List[BatchItemResult], Trace]:
        """Run many queries as one batched round-trip pipeline.

        Semantics are pinned by ``tests/test_batch_equivalence.py``:
        every item's *fragment*, *shield decision* and *degradation
        status* is identical to running the same queries sequentially
        through :meth:`chaining` (or :meth:`cached` when *use_cache*)
        at the same virtual ``now`` — only the cost model changes.
        Sub-fetches are grouped by target endpoint and each
        (endpoint, group) pays **one** simulated round trip whose
        transfer cost is the summed per-part payload plus a single
        protocol overhead; protocol compute (verify / evaluate /
        merge / shield) stays per item, because the server still does
        that work for each query in the frame.

        The privacy-shield invariant holds item-wise: every item is
        resolved (or cache-probed, shield re-checked) under **its own**
        context — a denied item yields a per-item
        :class:`~repro.errors.AccessDeniedError` in its result and
        never taints its batch-mates. Cache entries are read and
        written under each item's own requester scope.

        Equivalence under fault injection holds for deterministic
        impairments (``Network.fail``/``restore``); probabilistic loss
        draws per-hop samples from the seeded stream, and a batch
        issues *fewer* hops than its sequential expansion, so the two
        runs consume the stream differently by construction."""
        if len(requests) != len(contexts):
            raise ValueError(
                "got %d requests but %d contexts"
                % (len(requests), len(contexts))
            )
        if use_cache and self.server.cache is None:
            raise ValueError("server has no cache configured")
        count = len(requests)
        results: List[Optional[BatchItemResult]] = [None] * count
        paths: List[Optional[Path]] = [None] * count
        for index, request in enumerate(requests):
            try:
                paths[index] = parse_path(request)
            except ReproError as err:
                results[index] = BatchItemResult(request, error=err)
        trace = self.network.trace()
        with trace.span(
            "query.batch",
            items=count, client=client, cached=use_cache,
        ) as pattern:
            request_bytes = self.REQUEST_OVERHEAD_BYTES + sum(
                len(str(paths[i])) + contexts[i].byte_size()
                for i in range(count)
                if paths[i] is not None
            )
            trace.hop(client, self.server_node, request_bytes,
                      "batched request (%d items)" % count)
            pending = [i for i in range(count) if results[i] is None]
            while pending:
                pending = self._execute_batch_wave(
                    pending, paths, contexts, now, trace, results,
                    use_cache,
                )
            final = [r for r in results if r is not None]
            degraded_items = sum(
                1 for r in final if r.ok and r.degraded_parts
            )
            if degraded_items:
                pattern.set("degraded_items", degraded_items)
            response_bytes = self.REQUEST_OVERHEAD_BYTES + sum(
                (r.fragment.byte_size() if r.fragment is not None else 32)
                for r in final
            )
            trace.hop(self.server_node, client, response_bytes,
                      "batched response (%d items)" % count)
        return final, trace

    def _execute_batch_wave(
        self,
        item_ids: List[int],
        paths: Sequence[Optional[Path]],
        contexts: Sequence[RequestContext],
        now: float,
        trace: Trace,
        results: List[Optional[BatchItemResult]],
        use_cache: bool,
    ) -> List[int]:
        """One batch *wave*: all items except within-batch duplicates.

        A duplicate (same path, same requester scope) is deferred to
        the next wave so it observes the earlier item's cache fill —
        exactly as its sequential expansion would. Returns the deferred
        item ids (always empty when *use_cache* is off: items are then
        independent)."""
        active: List[int] = []
        deferred: List[int] = []
        seen_keys: set = set()
        for item in item_ids:
            if use_cache:
                key = (str(paths[item]), contexts[item].cache_scope())
                if key in seen_keys:
                    deferred.append(item)
                    continue
                seen_keys.add(key)
            active.append(item)
        # Phase 1 — per-item shield + referral work at the server, in
        # item order (provenance and counter order match sequential).
        referrals: Dict[int, Referral] = {}
        for item in active:
            path = paths[item]
            assert path is not None  # filtered by execute_batch
            context = contexts[item]
            if use_cache:
                trace.compute(self.CACHE_COMPUTE_MS, "cache probe")
                try:
                    cached = self.server.cache_lookup(path, context, now)
                except AccessDeniedError as err:
                    results[item] = BatchItemResult(path, error=err)
                    continue
                if cached is not None:
                    results[item] = BatchItemResult(
                        path, fragment=cached, hit=True
                    )
                    continue
            trace.compute(self.RESOLVE_COMPUTE_MS, "rewrite+policy+sign")
            try:
                referrals[item] = self._resolve_tracked(path, context, now)
            except ReproError as err:
                results[item] = BatchItemResult(path, error=err)
        # Phase 2 — grouped sub-fetch fan-out.
        jobs: List[_BatchJob] = []
        for item in active:
            referral = referrals.get(item)
            if referral is None:
                continue
            jobs.extend(
                _BatchJob(item, part_index, part)
                for part_index, part in enumerate(referral.parts)
            )
        self._fetch_jobs_batched(self.server_node, jobs, now, trace)
        # Phase 3 — per-item status/merge/cache, in item order.
        jobs_by_item: Dict[int, List[_BatchJob]] = {}
        for job in jobs:
            jobs_by_item.setdefault(job.item, []).append(job)
        for item in active:
            if item not in referrals:
                continue
            path = paths[item]
            assert path is not None
            results[item] = self._finish_batch_item(
                path, contexts[item], jobs_by_item.get(item, []),
                now, trace, use_cache,
            )
        return deferred

    def _fetch_jobs_batched(
        self,
        origin: str,
        jobs: List[_BatchJob],
        now: float,
        trace: Trace,
    ) -> None:
        """Grouped equivalent of :meth:`_fetch_part_from` over many
        parts at once.

        Each sweep, every pending job targets the first untried store
        in its health-ordered choice list; jobs sharing a target form
        one (endpoint, group) round trip — a single request hop
        carrying every signed sub-query and a single response hop
        carrying every fragment. A dead endpoint fails the whole group
        (they shared the round trip), each member fails over to its
        next choice, and the loop re-groups until the sweep is
        exhausted; the retry policy then waits a backoff and sweeps
        again. Health bookkeeping is per job, mirroring the sequential
        path's per-part feedback."""
        policy = self.retry_policy
        for sweep in range(policy.max_attempts):
            pending = [job for job in jobs if not job.done]
            if not pending:
                return
            if sweep:
                trace.wait(
                    policy.backoff_ms(sweep),
                    "backoff before batch retry sweep %d" % (sweep + 1),
                )
                for _job in pending:
                    trace.note_retry()
            active: List[_BatchJob] = []
            for job in pending:
                job.candidates = [
                    store_id
                    for store_id in self.health.order(job.part.store_ids)
                    if store_id in self.server.adapters
                ]
                job.next_index = 0
                if job.candidates:
                    active.append(job)
            while active:
                groups: Dict[str, List[_BatchJob]] = {}
                for job in active:
                    groups.setdefault(
                        job.candidates[job.next_index], []
                    ).append(job)
                branches: List[Trace] = []
                survivors: List[_BatchJob] = []
                for store_id, group in groups.items():
                    branch = trace.fork()
                    branches.append(branch)
                    self._fetch_group(
                        origin, store_id, group, now, branch, survivors,
                    )
                trace.join(branches)
                active = survivors

    def _fetch_group(
        self,
        origin: str,
        store_id: str,
        group: List[_BatchJob],
        now: float,
        branch: Trace,
        survivors: List[_BatchJob],
    ) -> None:
        """One (endpoint, group) round trip of a batched fan-out."""
        adapter = self.server.adapters[store_id]
        query_bytes = self.REQUEST_OVERHEAD_BYTES + sum(
            job.part.signed_query.byte_size()
            if job.part.signed_query is not None
            else len(str(job.part.path))
            for job in group
        )
        try:
            with branch.span(
                "fetch.store.batch",
                store=store_id, parts=len(group),
            ) as attempt:
                branch.hop(origin, store_id, query_bytes,
                           "batched query (%d parts)" % len(group))
                fragments: List[Optional[PNode]] = []
                for job in group:
                    if job.part.signed_query is not None:
                        self.verifier.verify(job.part.signed_query, now)
                        branch.compute(
                            self.VERIFY_COMPUTE_MS, "verify signature"
                        )
                    branch.compute(
                        self.STORE_QUERY_COMPUTE_MS, "evaluate path"
                    )
                    fragment = adapter.get(job.part.path)
                    if fragment is not None and self.annotator is not None:
                        self.annotator.annotate(fragment, store_id)
                    fragments.append(fragment)
                response_bytes = self.REQUEST_OVERHEAD_BYTES + sum(
                    fragment.byte_size() if fragment is not None else 32
                    for fragment in fragments
                )
                branch.hop(store_id, origin, response_bytes,
                           "batched fragments (%d parts)" % len(group))
                attempt.set("status", "ok")
        except TRANSIENT_ERRORS as err:
            # The round trip failed for everyone aboard: per-job
            # health feedback (mirroring the sequential path, where
            # each part would have observed the failure itself) and
            # failover to each job's next choice.
            for job in group:
                job.last_error = err
                self.health.failure(store_id)
                job.next_index += 1
                if job.next_index < len(job.candidates):
                    branch.note_failover()
                    survivors.append(job)
            return
        for job, fragment in zip(group, fragments):
            self.health.success(store_id)
            job.fragment = fragment
            job.store = store_id
            job.done = True

    def _finish_batch_item(
        self,
        path: Path,
        context: RequestContext,
        item_jobs: List[_BatchJob],
        now: float,
        trace: Trace,
        use_cache: bool,
    ) -> BatchItemResult:
        """Statuses, merge, degradation and cache fill for one batched
        item — the tail of :meth:`chaining`/:meth:`cached`, item-wise."""
        statuses: List[PartStatus] = []
        fragments: List[Optional[PNode]] = []
        for job in sorted(item_jobs, key=lambda j: j.part_index):
            if job.done:
                fragments.append(job.fragment)
                statuses.append(
                    PartStatus(job.part.path, store=job.store or "")
                )
            else:
                error: Exception = (
                    job.last_error
                    if job.last_error is not None
                    else NoCoverageError(
                        "no adapter registered for any of %s"
                        % (job.part.store_ids,)
                    )
                )
                statuses.append(
                    PartStatus(job.part.path, ok=False, error=error)
                )
        trace.part_status.extend(statuses)
        failed = [status for status in statuses if not status.ok]
        if failed and not any(status.ok for status in statuses):
            if use_cache:
                stale = self.server.cache_stale_lookup(path, context, now)
                if stale is not None:
                    trace.note_stale_serve()
                    trace.note_degraded_item(len(failed))
                    return BatchItemResult(
                        path, fragment=stale, hit=True, stale=True,
                        statuses=statuses,
                    )
                return BatchItemResult(
                    path,
                    statuses=statuses,
                    error=PartialResultError(
                        "every part of %s is unreachable and no stale "
                        "cache entry survives" % path,
                        statuses,
                    ),
                )
            return BatchItemResult(
                path,
                statuses=statuses,
                error=PartialResultError(
                    "every part of %s is unreachable" % path, statuses
                ),
            )
        if failed:
            trace.note_degraded_item(len(failed))
        merged = self._merge_at(
            [f for f in fragments if f is not None],
            trace, self.server_node,
        )
        if use_cache and merged is not None and not failed:
            if self.server.cache_store(path, merged, context, now):
                trace.compute(self.CACHE_COMPUTE_MS, "cache fill")
        return BatchItemResult(path, fragment=merged, statuses=statuses)

    # -- writes ----------------------------------------------------------------

    def provision(
        self,
        client: str,
        request: Union[str, Path],
        fragment: PNode,
        context: RequestContext,
        now: float = 0.0,
    ) -> Trace:
        """Enter-once write: resolve for update, then fan the fragment
        out to every store holding the component.

        Since the sans-io refactor the protocol logic lives in
        :meth:`repro.sansio.SansIoQueryEngine.provision`; this method
        builds the program and drives it over the simulated network."""
        path = parse_path(request)
        trace = self.network.trace()
        engine = _sansio.SansIoQueryEngine(self)
        driver = SimnetDriver(self.server.adapters)
        driver.run(
            engine.provision(client, path, fragment, context, now),
            trace,
        )
        return trace


class QueryBatch:
    """Collects outstanding queries and executes them in one pipeline.

    The builder face of :meth:`QueryExecutor.execute_batch`: callers
    accumulate ``(request, context)`` pairs — each under its **own**
    requester context, so per-item shield decisions and cache scopes
    are preserved — then :meth:`execute` runs them as one batched
    round-trip plan and returns the per-item
    :class:`BatchItemResult` list (in add order) plus the shared
    :class:`~repro.simnet.Trace`.

    ::

        batch = QueryBatch(executor, "client", use_cache=True)
        for path, ctx in wanted:
            batch.add(path, ctx)
        results, trace = batch.execute(now=now)
    """

    def __init__(
        self,
        executor: QueryExecutor,
        client: str,
        use_cache: bool = False,
    ) -> None:
        self.executor = executor
        self.client = client
        self.use_cache = use_cache
        self._requests: List[Union[str, Path]] = []
        self._contexts: List[RequestContext] = []

    def add(
        self, request: Union[str, Path], context: RequestContext
    ) -> int:
        """Queue one query under its own context; returns its index in
        the eventual result list."""
        self._requests.append(request)
        self._contexts.append(context)
        return len(self._requests) - 1

    def __len__(self) -> int:
        return len(self._requests)

    def execute(
        self, now: float = 0.0
    ) -> Tuple[List[BatchItemResult], Trace]:
        """Run every queued query; the batch stays reusable (items are
        consumed)."""
        if not self._requests:
            raise ValueError("nothing batched — add() some queries first")
        requests, self._requests = self._requests, []
        contexts, self._contexts = self._contexts, []
        return self.executor.execute_batch(
            self.client, requests, contexts,
            now=now, use_cache=self.use_cache,
        )
