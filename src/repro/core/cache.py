"""Component caching at GUPster (paper Sections 5.2/5.3).

"GUPster should probably also offer some caching to make the access to
user profile component faster" — with the classic staleness trade-off
the paper flags in requirement 7 ("triggers to indicate when data has
become stale").

:class:`ComponentCache` is an LRU cache keyed by request path with two
freshness mechanisms experiment E7 compares:

* **TTL** — entries expire after a fixed virtual-time lifetime;
* **invalidation triggers** — ``invalidate(path)`` drops every cached
  entry overlapping an updated component, eliminating staleness at the
  price of update-path signalling.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Union

from repro.pxml import PNode, Path, parse_path
from repro.pxml.containment import subtree_overlaps

__all__ = ["ComponentCache"]


class _Entry:
    __slots__ = ("fragment", "stored_at", "ttl_ms")

    def __init__(self, fragment: PNode, stored_at: float, ttl_ms: float):
        self.fragment = fragment
        self.stored_at = stored_at
        self.ttl_ms = ttl_ms

    def fresh(self, now: float) -> bool:
        return now - self.stored_at <= self.ttl_ms


class ComponentCache:
    """LRU + TTL cache of component fragments."""

    def __init__(
        self, capacity: int = 1024, default_ttl_ms: float = 60_000.0
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.default_ttl_ms = default_ttl_ms
        self._entries: "OrderedDict[Path, _Entry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.expirations = 0
        self.evictions = 0
        self.invalidations = 0

    def get(
        self, path: Union[str, Path], now: float
    ) -> Optional[PNode]:
        """Fresh cached fragment for *path*, or None."""
        key = parse_path(path)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if not entry.fresh(now):
            del self._entries[key]
            self.expirations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry.fragment.copy()

    def put(
        self,
        path: Union[str, Path],
        fragment: PNode,
        now: float,
        ttl_ms: Optional[float] = None,
    ) -> None:
        key = parse_path(path)
        if key in self._entries:
            del self._entries[key]
        while len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = _Entry(
            fragment.copy(),
            now,
            self.default_ttl_ms if ttl_ms is None else ttl_ms,
        )

    def invalidate(self, path: Union[str, Path]) -> int:
        """Drop every cached entry overlapping *path* (the trigger fired
        when a component is updated). Returns entries dropped."""
        key = parse_path(path)
        doomed = [
            cached for cached in self._entries
            if subtree_overlaps(cached, key)
        ]
        for cached in doomed:
            del self._entries[cached]
        self.invalidations += len(doomed)
        return len(doomed)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
