"""Component caching at GUPster (paper Sections 5.2/5.3).

"GUPster should probably also offer some caching to make the access to
user profile component faster" — with the classic staleness trade-off
the paper flags in requirement 7 ("triggers to indicate when data has
become stale").

:class:`ComponentCache` is an LRU cache keyed by **(request path,
privacy scope)** with two freshness mechanisms experiment E7 compares:

* **TTL** — entries expire after a fixed virtual-time lifetime;
* **invalidation triggers** — ``invalidate(path)`` drops every cached
  entry overlapping an updated component (across *all* scopes),
  eliminating staleness at the price of update-path signalling.

The privacy scope exists because a cache in front of the privacy
shield is a hole in the shield: the server rewrites each request to
the *requester's* permitted slice before fetching, so a fragment
cached for requester A (say, the full address book) must never be
served to requester B (who is only permitted the personal items).
Keying by (path, scope) — where the scope is derived from the request
context's identity/relationship — makes a cache hit possible only for
a requester whose permitted slice produced the entry in the first
place. Invalidation ignores scopes: an update stales every slice.

Serve-stale-on-failure (requirement 13, E16): with a positive
``stale_grace_ms`` the cache retains expired entries for that long,
and :meth:`get_stale` can serve them when every origin store is
unreachable — bounded staleness beats unavailability.

Accounting (E18 audit): the counters are registry-backed
(``cache.*`` in a :class:`~repro.obs.MetricsRegistry`; the integer
attributes are views) and obey two invariants the test-suite checks:

* ``gets == hits + misses`` — every :meth:`get` is exactly one or the
  other;
* every inserted entry reaches **exactly one** terminal disposition:
  ``expirations`` (dropped past TTL — by probe, by replacement of an
  expired corpse, or by LRU landing on one), ``evictions`` (LRU drop
  of a *live* entry), ``invalidations`` (trigger), ``replacements``
  (overwrite of a live entry), or ``clears``; so
  ``insertions == len(cache) + sum(terminals)``.

Before the audit the stale-grace path drifted: an expired-but-within-
grace corpse probed by :meth:`get` counted a miss but was never
counted as an expiration when a later :meth:`put` silently replaced
it or the LRU sweep dropped it (that drop even counted as an
*eviction*, overstating capacity pressure); and neither :meth:`get`
nor :meth:`get_stale` LRU-touched the corpse, so the exact entries
retained to cover an outage were the first ones evicted during it.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.metrics import CounterView, MetricsRegistry
from repro.pxml import PNode, Path, parse_path
from repro.pxml.containment import subtree_overlaps

__all__ = ["ComponentCache"]


class _Entry:
    __slots__ = ("fragment", "stored_at", "ttl_ms")

    def __init__(self, fragment: PNode, stored_at: float, ttl_ms: float) -> None:
        self.fragment = fragment
        self.stored_at = stored_at
        self.ttl_ms = ttl_ms

    def fresh(self, now: float) -> bool:
        # Stale *at* the boundary: an entry stored at t with TTL d is
        # fresh on [t, t+d) and stale from now == t+d exactly. Virtual
        # time never landed on the edge, but the wall-clock driver
        # makes exact-expiry probes reachable, and "TTL 0 == never
        # cached" only holds under the strict inequality.
        return now - self.stored_at < self.ttl_ms

    def staleness_ms(self, now: float) -> float:
        """How far past its TTL this entry is (< 0 while fresh; 0 at
        the expiry instant, which is already stale)."""
        return now - self.stored_at - self.ttl_ms


class ComponentCache:
    """LRU + TTL cache of component fragments, keyed by (path, scope)."""

    #: (attribute/metric suffix, help) pairs for every counter.
    COUNTER_FIELDS: Tuple[Tuple[str, str], ...] = (
        ("gets", "Lookups via get() (hits + misses)."),
        ("hits", "Fresh entries served by get()."),
        ("misses", "get() lookups finding nothing fresh."),
        ("insertions", "Entries written by put()."),
        ("expirations",
         "Entries dropped past TTL+grace (probe, replace or LRU)."),
        ("evictions", "Live entries dropped by the LRU sweep."),
        ("invalidations", "Entries dropped by update triggers."),
        ("replacements", "Live entries overwritten by put()."),
        ("clears", "Entries dropped by clear()."),
        ("stale_serves", "Expired-within-grace entries served stale."),
    )

    gets = CounterView("cache.gets")
    hits = CounterView("cache.hits")
    misses = CounterView("cache.misses")
    insertions = CounterView("cache.insertions")
    expirations = CounterView("cache.expirations")
    evictions = CounterView("cache.evictions")
    invalidations = CounterView("cache.invalidations")
    replacements = CounterView("cache.replacements")
    clears = CounterView("cache.clears")
    stale_serves = CounterView("cache.stale_serves")

    def __init__(
        self,
        capacity: int = 1024,
        default_ttl_ms: float = 60_000.0,
        stale_grace_ms: float = 0.0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if stale_grace_ms < 0:
            raise ValueError("stale grace must be non-negative")
        self.capacity = capacity
        self.default_ttl_ms = default_ttl_ms
        #: How long past TTL an entry may still be served by
        #: :meth:`get_stale` (0 = never serve stale, the default).
        self.stale_grace_ms = stale_grace_ms
        self._entries: "OrderedDict[Tuple[Path, str], _Entry]" = (
            OrderedDict()
        )
        #: Registry backing the counters (a private one until the
        #: cache is re-homed onto a shared world registry — see
        #: :meth:`bind_registry`).
        self.metrics = (
            registry if registry is not None else MetricsRegistry()
        )
        self._register_instruments()

    def _register_instruments(self) -> None:
        for suffix, help_text in self.COUNTER_FIELDS:
            self.metrics.counter("cache." + suffix, help=help_text)
        self.metrics.gauge(
            "cache.size", help="Live entries right now.",
            fn=self._live_size,
        ).bind(self._live_size)

    def _live_size(self) -> float:
        return float(len(self._entries))

    def bind_registry(self, registry: MetricsRegistry) -> None:
        """Re-home the counters onto a shared registry (the network's
        world registry), migrating current counts — wired up by
        :class:`~repro.core.query.QueryExecutor` so one snapshot/export
        covers net.*, cache.* and health.*."""
        if registry is self.metrics:
            return
        previous = self.metrics
        self.metrics = registry
        self._register_instruments()
        for suffix, _help in self.COUNTER_FIELDS:
            carried = previous.counter("cache." + suffix).value
            if carried:
                registry.counter("cache." + suffix).inc(carried)

    def _key(
        self, path: Union[str, Path], scope: str
    ) -> Tuple[Path, str]:
        return (parse_path(path), scope)

    def get(
        self,
        path: Union[str, Path],
        now: float,
        scope: str = "",
    ) -> Optional[PNode]:
        """Fresh cached fragment for *path* within *scope*, or None."""
        self.gets += 1
        key = self._key(path, scope)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if not entry.fresh(now):
            if entry.staleness_ms(now) > self.stale_grace_ms:
                # Beyond any stale grace: truly dead, drop it.
                del self._entries[key]
                self.expirations += 1
            else:
                # Keep the corpse for get_stale — and LRU-touch it:
                # a probed corpse is exactly the entry serve-stale
                # will need if the refetch we are about to attempt
                # fails, so it must not sit at the eviction end.
                self._entries.move_to_end(key)
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry.fragment.copy()

    def get_stale(
        self,
        path: Union[str, Path],
        now: float,
        scope: str = "",
        max_stale_ms: Optional[float] = None,
    ) -> Optional[PNode]:
        """Last-known fragment even if expired — the serve-stale-on-
        failure path. Returns the fragment when it is fresh *or* within
        ``stale_grace_ms`` (or an explicit *max_stale_ms* bound) past
        its TTL; None otherwise. Counts a stale serve only when the
        entry was actually expired."""
        key = self._key(path, scope)
        entry = self._entries.get(key)
        if entry is None:
            return None
        staleness = entry.staleness_ms(now)
        if staleness < 0:
            # Strictly fresh — at the expiry instant (staleness == 0)
            # the entry is already stale and must go through (and be
            # counted by) the serve-stale path below.
            self._entries.move_to_end(key)
            return entry.fragment.copy()
        bound = (
            self.stale_grace_ms if max_stale_ms is None else max_stale_ms
        )
        if staleness <= bound:
            # A corpse that is actively covering an outage is the
            # *most* valuable entry in the cache — touch it so the
            # LRU sweep takes idle entries first.
            self._entries.move_to_end(key)
            self.stale_serves += 1
            return entry.fragment.copy()
        del self._entries[key]
        self.expirations += 1
        return None

    def put(
        self,
        path: Union[str, Path],
        fragment: PNode,
        now: float,
        ttl_ms: Optional[float] = None,
        scope: str = "",
    ) -> None:
        key = self._key(path, scope)
        previous = self._entries.pop(key, None)
        if previous is not None:
            # The replaced entry's terminal disposition: an expired
            # corpse finally refreshed is an *expiration* (the drift
            # the E18 audit found — these were silently uncounted);
            # overwriting a live entry is a *replacement*.
            if not previous.fresh(now):
                self.expirations += 1
            else:
                self.replacements += 1
        while len(self._entries) >= self.capacity:
            _key, victim = self._entries.popitem(last=False)
            # An LRU sweep landing on an already-expired corpse is an
            # expiration, not capacity pressure.
            if not victim.fresh(now):
                self.expirations += 1
            else:
                self.evictions += 1
        self._entries[key] = _Entry(
            fragment.copy(),
            now,
            self.default_ttl_ms if ttl_ms is None else ttl_ms,
        )
        self.insertions += 1

    # -- batch counterparts (E19) -------------------------------------------

    def get_many(
        self,
        paths: Sequence[Union[str, Path]],
        now: float,
        scope: str = "",
    ) -> List[Optional[PNode]]:
        """Batched :meth:`get`: one fresh probe per path, same
        counters, same LRU touches, same single requester *scope* —
        a batch belongs to one requester, so one scope covers it.
        Exists so the batch path has a first-class scoped entry point
        (the ``cache-key-scope`` rule audits it like ``get``)."""
        return [self.get(path, now, scope=scope) for path in paths]

    def put_many(
        self,
        entries: Sequence[Tuple[Union[str, Path], PNode]],
        now: float,
        scope: str = "",
        ttl_ms: Optional[float] = None,
    ) -> None:
        """Batched :meth:`put` of ``(path, fragment)`` pairs under one
        requester *scope* (bulk warm/prefill after a batched
        fetch)."""
        for path, fragment in entries:
            self.put(path, fragment, now, ttl_ms=ttl_ms, scope=scope)

    def sweep(self, now: float) -> int:
        """Drop every entry past TTL **and** stale grace (each counts
        an expiration); corpses still within grace are kept for
        :meth:`get_stale`. The serving layer's background cache-sweep
        job calls this so dead entries stop occupying LRU slots
        between probes. Returns entries dropped."""
        doomed = [
            key for key, entry in self._entries.items()
            if entry.staleness_ms(now) > self.stale_grace_ms
        ]
        for key in doomed:
            del self._entries[key]
        self.expirations += len(doomed)
        return len(doomed)

    def invalidate(self, path: Union[str, Path]) -> int:
        """Drop every cached entry overlapping *path*, across every
        scope (the trigger fired when a component is updated). Returns
        entries dropped."""
        key = parse_path(path)
        doomed = [
            cached for cached in self._entries
            if subtree_overlaps(cached[0], key)
        ]
        for cached in doomed:
            del self._entries[cached]
        self.invalidations += len(doomed)
        return len(doomed)

    def clear(self) -> None:
        """Drop everything (each dropped entry's terminal disposition
        is a ``clear``)."""
        self.clears += len(self._entries)
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- accounting introspection (E18) -------------------------------------

    def counter_snapshot(self) -> Dict[str, int]:
        """Every counter by short name, plus the live size."""
        snapshot = {
            suffix: self.metrics.counter("cache." + suffix).value
            for suffix, _help in self.COUNTER_FIELDS
        }
        snapshot["size"] = len(self._entries)
        return snapshot

    def check_invariants(self) -> list:
        """The accounting invariants, as a list of violation strings
        (empty == healthy). Called by tests after every workload."""
        violations = []
        if self.gets != self.hits + self.misses:
            violations.append(
                "gets (%d) != hits (%d) + misses (%d)"
                % (self.gets, self.hits, self.misses)
            )
        terminal = (
            self.expirations + self.evictions + self.invalidations
            + self.replacements + self.clears
        )
        if self.insertions != len(self._entries) + terminal:
            violations.append(
                "insertions (%d) != live (%d) + terminal (%d)"
                % (self.insertions, len(self._entries), terminal)
            )
        return violations
