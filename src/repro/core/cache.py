"""Component caching at GUPster (paper Sections 5.2/5.3).

"GUPster should probably also offer some caching to make the access to
user profile component faster" — with the classic staleness trade-off
the paper flags in requirement 7 ("triggers to indicate when data has
become stale").

:class:`ComponentCache` is an LRU cache keyed by **(request path,
privacy scope)** with two freshness mechanisms experiment E7 compares:

* **TTL** — entries expire after a fixed virtual-time lifetime;
* **invalidation triggers** — ``invalidate(path)`` drops every cached
  entry overlapping an updated component (across *all* scopes),
  eliminating staleness at the price of update-path signalling.

The privacy scope exists because a cache in front of the privacy
shield is a hole in the shield: the server rewrites each request to
the *requester's* permitted slice before fetching, so a fragment
cached for requester A (say, the full address book) must never be
served to requester B (who is only permitted the personal items).
Keying by (path, scope) — where the scope is derived from the request
context's identity/relationship — makes a cache hit possible only for
a requester whose permitted slice produced the entry in the first
place. Invalidation ignores scopes: an update stales every slice.

Serve-stale-on-failure (requirement 13, E16): with a positive
``stale_grace_ms`` the cache retains expired entries for that long,
and :meth:`get_stale` can serve them when every origin store is
unreachable — bounded staleness beats unavailability.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple, Union

from repro.pxml import PNode, Path, parse_path
from repro.pxml.containment import subtree_overlaps

__all__ = ["ComponentCache"]


class _Entry:
    __slots__ = ("fragment", "stored_at", "ttl_ms")

    def __init__(self, fragment: PNode, stored_at: float, ttl_ms: float) -> None:
        self.fragment = fragment
        self.stored_at = stored_at
        self.ttl_ms = ttl_ms

    def fresh(self, now: float) -> bool:
        return now - self.stored_at <= self.ttl_ms

    def staleness_ms(self, now: float) -> float:
        """How far past its TTL this entry is (<= 0 while fresh)."""
        return now - self.stored_at - self.ttl_ms


class ComponentCache:
    """LRU + TTL cache of component fragments, keyed by (path, scope)."""

    def __init__(
        self,
        capacity: int = 1024,
        default_ttl_ms: float = 60_000.0,
        stale_grace_ms: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if stale_grace_ms < 0:
            raise ValueError("stale grace must be non-negative")
        self.capacity = capacity
        self.default_ttl_ms = default_ttl_ms
        #: How long past TTL an entry may still be served by
        #: :meth:`get_stale` (0 = never serve stale, the default).
        self.stale_grace_ms = stale_grace_ms
        self._entries: "OrderedDict[Tuple[Path, str], _Entry]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.expirations = 0
        self.evictions = 0
        self.invalidations = 0
        self.stale_serves = 0

    def _key(
        self, path: Union[str, Path], scope: str
    ) -> Tuple[Path, str]:
        return (parse_path(path), scope)

    def get(
        self,
        path: Union[str, Path],
        now: float,
        scope: str = "",
    ) -> Optional[PNode]:
        """Fresh cached fragment for *path* within *scope*, or None."""
        key = self._key(path, scope)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if not entry.fresh(now):
            if entry.staleness_ms(now) > self.stale_grace_ms:
                # Beyond any stale grace: truly dead, drop it.
                del self._entries[key]
                self.expirations += 1
            # else: keep the corpse around for get_stale.
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry.fragment.copy()

    def get_stale(
        self,
        path: Union[str, Path],
        now: float,
        scope: str = "",
        max_stale_ms: Optional[float] = None,
    ) -> Optional[PNode]:
        """Last-known fragment even if expired — the serve-stale-on-
        failure path. Returns the fragment when it is fresh *or* within
        ``stale_grace_ms`` (or an explicit *max_stale_ms* bound) past
        its TTL; None otherwise. Counts a stale serve only when the
        entry was actually expired."""
        key = self._key(path, scope)
        entry = self._entries.get(key)
        if entry is None:
            return None
        staleness = entry.staleness_ms(now)
        if staleness <= 0:
            return entry.fragment.copy()
        bound = (
            self.stale_grace_ms if max_stale_ms is None else max_stale_ms
        )
        if staleness <= bound:
            self.stale_serves += 1
            return entry.fragment.copy()
        del self._entries[key]
        self.expirations += 1
        return None

    def put(
        self,
        path: Union[str, Path],
        fragment: PNode,
        now: float,
        ttl_ms: Optional[float] = None,
        scope: str = "",
    ) -> None:
        key = self._key(path, scope)
        if key in self._entries:
            del self._entries[key]
        while len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = _Entry(
            fragment.copy(),
            now,
            self.default_ttl_ms if ttl_ms is None else ttl_ms,
        )

    def invalidate(self, path: Union[str, Path]) -> int:
        """Drop every cached entry overlapping *path*, across every
        scope (the trigger fired when a component is updated). Returns
        entries dropped."""
        key = parse_path(path)
        doomed = [
            cached for cached in self._entries
            if subtree_overlaps(cached[0], key)
        ]
        for cached in doomed:
            del self._entries[cached]
        self.invalidations += len(doomed)
        return len(doomed)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
