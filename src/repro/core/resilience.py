"""Failure-aware query execution primitives (requirement 13 / E16).

The paper calls the public internet "the weakest link" and argues the
mirrored meta-data constellation by its availability under mirror
failure — so the query engine must *measure* behaviour under failure
rather than crash on the first dead store. This module holds the three
building blocks shared by :class:`~repro.core.query.QueryExecutor` and
the Section 5.1 MDM topologies:

* :class:`RetryPolicy` — bounded retry with exponential backoff. One
  *attempt* is a full sweep over the available choices (mirrors or
  ``||`` store alternatives); between sweeps the operation waits an
  exponentially growing backoff, charged to the trace as idle time.
* :class:`EndpointHealth` — per-endpoint consecutive-failure tracking.
  Healthy endpoints keep their referral order (stable sort), endpoints
  with recent failures sink to the back of the choice list, so a
  flapping mirror stops being the first thing every client runs into.
* :class:`PartStatus` — the per-part delivery report degradable
  patterns (chaining/cached) attach to the trace when they return a
  partial merge instead of throwing away the parts that *did* arrive.

With no failures none of this changes a single sampled latency: sweeps
iterate choices in referral order, no backoff is charged and every
counter stays zero.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.errors import NodeUnreachableError, PacketLossError
from repro.obs.metrics import CounterView, MetricsRegistry
from repro.pxml import Path

__all__ = [
    "RetryPolicy",
    "EndpointHealth",
    "PartStatus",
    "TRANSIENT_ERRORS",
]

#: Failures worth retrying/failing over: a dead endpoint or a lost
#: message. Policy/schema/coverage errors are *not* transient — they
#: propagate immediately.
TRANSIENT_ERRORS = (NodeUnreachableError, PacketLossError)


class RetryPolicy:
    """Bounded retry with exponential backoff.

    ``max_attempts`` counts full sweeps over the choice set, so
    ``max_attempts=1`` reproduces the historical first-error-wins
    behaviour (failover between choices, but no re-sweep)."""

    __slots__ = (
        "max_attempts", "base_backoff_ms", "multiplier", "max_backoff_ms",
    )

    def __init__(
        self,
        max_attempts: int = 2,
        base_backoff_ms: float = 25.0,
        multiplier: float = 2.0,
        max_backoff_ms: float = 400.0,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("need at least one attempt")
        if base_backoff_ms < 0 or max_backoff_ms < 0:
            raise ValueError("backoff must be non-negative")
        if multiplier < 1.0:
            raise ValueError("backoff multiplier must be >= 1")
        self.max_attempts = max_attempts
        self.base_backoff_ms = base_backoff_ms
        self.multiplier = multiplier
        self.max_backoff_ms = max_backoff_ms

    @classmethod
    def none(cls) -> "RetryPolicy":
        """First-error-wins: one sweep, no backoff."""
        return cls(max_attempts=1, base_backoff_ms=0.0)

    def backoff_ms(self, retry_number: int) -> float:
        """Backoff before retry *retry_number* (1-based), capped at
        ``max_backoff_ms`` — a real-transport retry loop must never be
        asked to sleep for minutes because the exponent ran away."""
        if retry_number < 1:
            raise ValueError("retry numbers are 1-based")
        if self.base_backoff_ms == 0.0:
            return 0.0
        try:
            raw = self.base_backoff_ms * (
                self.multiplier ** (retry_number - 1)
            )
        except OverflowError:
            # The uncapped value overflowed a float; the cap is the
            # answer either way.
            return self.max_backoff_ms
        return min(raw, self.max_backoff_ms)

    def __repr__(self) -> str:
        return (
            "<RetryPolicy attempts=%d backoff=%.0fms x%.1f cap=%.0fms>"
            % (self.max_attempts, self.base_backoff_ms,
               self.multiplier, self.max_backoff_ms)
        )


class EndpointHealth:
    """Consecutive-failure tracking per endpoint (store or mirror).

    ``order`` is a *stable* sort by failure count: with no recorded
    failures the input order — the referral's preference order — is
    returned unchanged, so health tracking is invisible on the happy
    path.

    Accounting (E18 audit): success totals used to accumulate in a
    per-endpoint ``_successes`` dict that **nothing ever read** — one
    key per endpoint ever seen, growing without bound under
    million-user churn, invisible to :meth:`snapshot`. The ranking
    logic only ever needed the *consecutive-failure* map (success just
    clears an endpoint's entry), so the per-endpoint success history
    is folded into two registry counters — ``health.successes`` /
    ``health.failures`` fleet totals, readable via :meth:`stats` and
    every exporter — and the only per-endpoint state left is the
    suspect map, which successes shrink."""

    __slots__ = ("_failures", "metrics")

    successes = CounterView("health.successes")
    failures_recorded = CounterView("health.failures")

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        #: endpoint -> consecutive failures; an entry exists only
        #: while the endpoint is suspect (bounded by fleet size, and
        #: emptied as endpoints recover).
        self._failures: Dict[str, int] = {}
        self.metrics = (
            registry if registry is not None else MetricsRegistry()
        )
        self._register_instruments()

    def _register_instruments(self) -> None:
        self.metrics.counter(
            "health.successes", help="Successful endpoint probes."
        )
        self.metrics.counter(
            "health.failures", help="Failed endpoint probes."
        )
        self.metrics.gauge(
            "health.suspects", help="Endpoints currently suspect.",
            fn=self._suspect_count,
        ).bind(self._suspect_count)

    def _suspect_count(self) -> float:
        return float(len(self._failures))

    def bind_registry(self, registry: MetricsRegistry) -> None:
        """Re-home onto a shared world registry, migrating totals
        (see :meth:`repro.core.cache.ComponentCache.bind_registry`)."""
        if registry is self.metrics:
            return
        previous = self.metrics
        self.metrics = registry
        self._register_instruments()
        for name in ("health.successes", "health.failures"):
            carried = previous.counter(name).value
            if carried:
                registry.counter(name).inc(carried)

    def failure(self, endpoint: str) -> None:
        self._failures[endpoint] = self._failures.get(endpoint, 0) + 1
        self.failures_recorded += 1

    def success(self, endpoint: str) -> None:
        self._failures.pop(endpoint, None)
        self.successes += 1

    def consecutive_failures(self, endpoint: str) -> int:
        return self._failures.get(endpoint, 0)

    def is_suspect(self, endpoint: str) -> bool:
        return self.consecutive_failures(endpoint) > 0

    def order(self, choices: Sequence[str]) -> List[str]:
        """Choices re-ranked healthy-first; ties keep input order."""
        if not self._failures:
            return list(choices)
        return sorted(choices, key=self.consecutive_failures)

    def snapshot(self) -> Dict[str, int]:
        """endpoint -> consecutive failures (only suspect endpoints)."""
        return dict(self._failures)

    def stats(self) -> Dict[str, int]:
        """Fleet totals + suspect count (the state the dead
        ``_successes`` dict was hoarding per endpoint, now bounded)."""
        return {
            "successes": self.successes,
            "failures": self.failures_recorded,
            "suspects": len(self._failures),
        }

    def __repr__(self) -> str:
        return "<EndpointHealth suspects=%s>" % (self.snapshot() or "{}")


class PartStatus:
    """Delivery report for one referral part of a degradable query."""

    __slots__ = ("path", "store", "ok", "error", "stale")

    def __init__(
        self,
        path: Union[str, Path],
        store: Optional[str] = None,
        ok: bool = True,
        error: Optional[BaseException] = None,
        stale: bool = False,
    ) -> None:
        #: The part's (permitted) path.
        self.path = path
        #: Store that served it (None when the part failed).
        self.store = store
        self.ok = ok
        #: The terminal exception when the part failed.
        self.error = error
        #: True when the answer came from an expired cache entry.
        self.stale = stale

    def __repr__(self) -> str:
        if self.ok:
            extra = " STALE" if self.stale else ""
            return "<PartStatus %s ok via %s%s>" % (
                self.path, self.store, extra,
            )
        return "<PartStatus %s FAILED (%s)>" % (
            self.path,
            type(self.error).__name__ if self.error else "unknown",
        )
