"""Meta-data-manager topologies (paper Section 5.1).

The basic architecture assumes "a UDDI-like universally available,
mirrored meta-data store". Section 5.1 explores alternatives driven by
privacy and business-model pressure:

* :class:`CentralizedMdm` — one logical server implemented by a
  constellation of mirrors; clients fail over between mirrors.
* :class:`UserDistributedMdm` — each user picks the organization that
  manages their meta-data; a universal "white pages" maps user → MDM,
  with support for **unlisted** users who must hand out their pointer
  themselves.
* :class:`HierarchicalMdm` — a user's primary MDM delegates subtrees
  (e.g. banking meta-data to the bank): the primary "knows *that* the
  user has banking meta-data but knows essentially nothing about it".

Experiment E6 measures lookup latency, availability under failures, and
the meta-data privacy exposure of each topology.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import GupsterError, ReproError
from repro.pxml import Path, parse_path
from repro.pxml.containment import subtree_covers
from repro.access import RequestContext
from repro.core.referral import Referral
from repro.core.resilience import (
    TRANSIENT_ERRORS,
    EndpointHealth,
    RetryPolicy,
)
from repro.core.server import GupsterServer
from repro.simnet import Network, Trace

__all__ = ["CentralizedMdm", "UserDistributedMdm", "HierarchicalMdm"]

REQUEST_OVERHEAD_BYTES = 80
RESOLVE_COMPUTE_MS = 0.3
WHITEPAGES_COMPUTE_MS = 0.05

#: Per-item outcome of a batched meta-data resolution: exactly one of
#: (referral, error) is set; *error* is whatever the equivalent
#: sequential ``resolve`` would have raised for that item.
BatchOutcome = Tuple[Optional[Referral], Optional[Exception]]


def _batched_attempt(
    trace: Trace,
    client: str,
    node: str,
    server: GupsterServer,
    items: Sequence[Tuple[int, Path, RequestContext]],
    outcomes: List[BatchOutcome],
    now: float,
) -> None:
    """One batched referral round trip to one MDM node.

    The request hop carries every item's path+context behind a single
    protocol overhead; resolution compute stays per item (the server
    still filters/rewrites/signs each); per-item server errors (shield
    denials, spurious queries, no coverage) land in *outcomes* without
    disturbing batch-mates. A *transient* (network) failure of the
    shared round trip propagates to the caller — the whole group
    retries or fails over together, because they shared the wire."""
    request_bytes = REQUEST_OVERHEAD_BYTES + sum(
        len(str(path)) + context.byte_size()
        for _index, path, context in items
    )
    entries: List[
        Tuple[int, Optional[Referral], Optional[Exception]]
    ] = []
    with trace.span(
        "mdm.round_trip.batch", node=node, items=len(items),
    ):
        trace.hop(client, node, request_bytes,
                  "batched resolve at %s (%d items)"
                  % (node, len(items)))
        for index, path, context in items:
            trace.compute(RESOLVE_COMPUTE_MS, "resolve")
            try:
                entries.append(
                    (index, server.resolve(path, context, now), None)
                )
            except ReproError as err:
                entries.append((index, None, err))
        response_bytes = REQUEST_OVERHEAD_BYTES + sum(
            referral.byte_size() if referral is not None else 32
            for _index, referral, _err in entries
        )
        trace.hop(node, client, response_bytes, "batched referrals")
    # Outcomes commit only once the full round trip survived — a
    # transient failure above leaves them unset for the retry.
    for index, referral, err in entries:
        outcomes[index] = (referral, err)


def _batched_retry_round_trip(
    trace: Trace,
    policy: RetryPolicy,
    health: EndpointHealth,
    client: str,
    node: str,
    server: GupsterServer,
    items: Sequence[Tuple[int, Path, RequestContext]],
    outcomes: List[BatchOutcome],
    now: float,
) -> None:
    """Batched analogue of :func:`_retry_round_trip`: one node, bounded
    transient retry with backoff; exhaustion fails every item aboard
    with the same :class:`~repro.errors.GupsterError` the sequential
    path raises."""
    last_error: Optional[Exception] = None
    for attempt in range(policy.max_attempts):
        if attempt > 0:
            trace.wait(
                policy.backoff_ms(attempt),
                "backoff before batch retry %d at %s"
                % (attempt + 1, node),
            )
            for _item in items:
                trace.note_retry()
        try:
            _batched_attempt(
                trace, client, node, server, items, outcomes, now
            )
        except TRANSIENT_ERRORS as err:
            last_error = err
            health.failure(node)
            continue
        health.success(node)
        return
    failure = GupsterError(
        "MDM node %s unreachable: %s" % (node, last_error)
    )
    for index, _path, _context in items:
        outcomes[index] = (None, failure)


def _parse_batch(
    requests: Sequence[Union[str, Path]],
    contexts: Sequence[RequestContext],
    outcomes: List[BatchOutcome],
) -> List[Tuple[int, Path, RequestContext]]:
    """Parse every request, recording per-item parse failures."""
    if len(requests) != len(contexts):
        raise ValueError(
            "got %d requests but %d contexts"
            % (len(requests), len(contexts))
        )
    items: List[Tuple[int, Path, RequestContext]] = []
    for index, request in enumerate(requests):
        try:
            items.append((index, parse_path(request), contexts[index]))
        except ReproError as err:
            outcomes[index] = (None, err)
    return items


def _referral_round_trip(
    trace: Trace,
    client: str,
    node: str,
    server: GupsterServer,
    request: Path,
    context: RequestContext,
    now: float,
) -> Referral:
    request_bytes = (
        len(str(request)) + context.byte_size() + REQUEST_OVERHEAD_BYTES
    )
    with trace.span("mdm.round_trip", node=node):
        trace.hop(client, node, request_bytes, "resolve at %s" % node)
        trace.compute(RESOLVE_COMPUTE_MS, "resolve")
        referral = server.resolve(request, context, now)
        trace.hop(node, client,
                  referral.byte_size() + REQUEST_OVERHEAD_BYTES,
                  "referral")
    return referral


def _retry_round_trip(
    trace: Trace,
    policy: RetryPolicy,
    health: EndpointHealth,
    client: str,
    node: str,
    server: GupsterServer,
    request: Path,
    context: RequestContext,
    now: float,
) -> Referral:
    """A single-node referral round trip with bounded transient retry
    (the topology has exactly one place to ask, so there is nothing to
    fail over to — only waiting and asking again helps)."""
    last_error: Optional[Exception] = None
    for attempt in range(policy.max_attempts):
        if attempt > 0:
            trace.wait(
                policy.backoff_ms(attempt),
                "backoff before retry %d at %s" % (attempt + 1, node),
            )
            trace.note_retry()
        try:
            referral = _referral_round_trip(
                trace, client, node, server, request, context, now
            )
            health.success(node)
            return referral
        except TRANSIENT_ERRORS as err:
            last_error = err
            health.failure(node)
    raise GupsterError(
        "MDM node %s unreachable: %s" % (node, last_error)
    )


class CentralizedMdm:
    """The UDDI-like mirrored constellation.

    All mirrors serve the same logical server state (the consortium
    keeps them synchronized out of band); a client walks its mirror
    list until one answers.
    """

    def __init__(
        self,
        network: Network,
        server: GupsterServer,
        mirror_nodes: List[str],
        retry_policy: Optional[RetryPolicy] = None,
        health: Optional[EndpointHealth] = None,
    ) -> None:
        if not mirror_nodes:
            raise ValueError("need at least one mirror")
        self.network = network
        self.server = server
        self.mirror_nodes = list(mirror_nodes)
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self.health = health if health is not None else EndpointHealth()
        self.health.bind_registry(network.metrics)
        server.bind_registry(network.metrics)

    def resolve(
        self,
        client: str,
        request: Union[str, Path],
        context: RequestContext,
        now: float = 0.0,
        trace: Optional[Trace] = None,
    ) -> Tuple[Referral, Trace]:
        """Walk the mirror constellation (healthy mirrors first), fail
        over between mirrors within a sweep, and retry full sweeps with
        exponential backoff for transient failures.

        Pass *trace* to charge the resolve to a caller-owned trace
        (e.g. one shared across an E21 calibration run) instead of a
        fresh one."""
        path = parse_path(request)
        trace = trace if trace is not None else self.network.trace()
        policy = self.retry_policy
        last_error: Optional[Exception] = None
        with trace.span(
            "mdm.centralized", path=str(path), client=client,
            mirrors=len(self.mirror_nodes),
        ):
            for sweep in range(policy.max_attempts):
                if sweep > 0:
                    trace.wait(
                        policy.backoff_ms(sweep),
                        "backoff before MDM sweep %d" % (sweep + 1),
                    )
                    trace.note_retry()
                mirrors = self.health.order(self.mirror_nodes)
                for index, mirror in enumerate(mirrors):
                    try:
                        referral = _referral_round_trip(
                            trace, client, mirror, self.server, path,
                            context, now,
                        )
                        self.health.success(mirror)
                        return referral, trace
                    except TRANSIENT_ERRORS as err:
                        last_error = err
                        self.health.failure(mirror)
                        if index + 1 < len(mirrors):
                            trace.note_failover()
                        continue
        raise GupsterError(
            "all MDM mirrors unreachable: %s" % last_error
        )

    def resolve_batch(
        self,
        client: str,
        requests: Sequence[Union[str, Path]],
        contexts: Sequence[RequestContext],
        now: float = 0.0,
    ) -> Tuple[List[BatchOutcome], Trace]:
        """Batched :meth:`resolve`: one round trip per mirror attempt
        carries the whole batch, with the same healthy-first mirror
        walk, intra-sweep failover and backed-off re-sweeps. Per-item
        server decisions (shield denials, spurious queries, missing
        coverage) are per-item outcomes; only *transient* mirror
        failures move the whole batch to the next mirror — the items
        shared the wire."""
        outcomes: List[BatchOutcome] = [(None, None)] * len(requests)
        items = _parse_batch(requests, contexts, outcomes)
        trace = self.network.trace()
        policy = self.retry_policy
        last_error: Optional[Exception] = None
        with trace.span(
            "mdm.centralized.batch", items=len(items), client=client,
            mirrors=len(self.mirror_nodes),
        ):
            if not items:
                return outcomes, trace
            for sweep in range(policy.max_attempts):
                if sweep > 0:
                    trace.wait(
                        policy.backoff_ms(sweep),
                        "backoff before MDM batch sweep %d" % (sweep + 1),
                    )
                    for _item in items:
                        trace.note_retry()
                mirrors = self.health.order(self.mirror_nodes)
                for index, mirror in enumerate(mirrors):
                    try:
                        _batched_attempt(
                            trace, client, mirror, self.server, items,
                            outcomes, now,
                        )
                    except TRANSIENT_ERRORS as err:
                        last_error = err
                        self.health.failure(mirror)
                        if index + 1 < len(mirrors):
                            for _item in items:
                                trace.note_failover()
                        continue
                    self.health.success(mirror)
                    return outcomes, trace
            failure = GupsterError(
                "all MDM mirrors unreachable: %s" % last_error
            )
            for item_index, _path, _context in items:
                outcomes[item_index] = (None, failure)
        return outcomes, trace

    def meta_data_exposure(self) -> Dict[str, int]:
        """Component paths visible per node: every mirror sees all."""
        total = self.server.coverage.entry_count()
        return {mirror: total for mirror in self.mirror_nodes}


class UserDistributedMdm:
    """Per-user choice of meta-data manager, found via white pages."""

    def __init__(
        self,
        network: Network,
        whitepages_node: str,
        retry_policy: Optional[RetryPolicy] = None,
        health: Optional[EndpointHealth] = None,
    ) -> None:
        self.network = network
        self.whitepages_node = whitepages_node
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self.health = health if health is not None else EndpointHealth()
        self.health.bind_registry(network.metrics)
        #: user id -> (mdm node name, server); None node means unlisted
        self._assignments: Dict[str, Tuple[str, GupsterServer]] = {}
        self._unlisted: Dict[str, Tuple[str, GupsterServer]] = {}

    def assign(
        self,
        user_id: str,
        node: str,
        server: GupsterServer,
        unlisted: bool = False,
    ) -> None:
        server.bind_registry(self.network.metrics)
        if unlisted:
            self._unlisted[user_id] = (node, server)
        else:
            self._assignments[user_id] = (node, server)

    def server_for(self, user_id: str) -> Optional[GupsterServer]:
        entry = self._assignments.get(user_id) or self._unlisted.get(
            user_id
        )
        return entry[1] if entry else None

    def resolve(
        self,
        client: str,
        request: Union[str, Path],
        context: RequestContext,
        now: float = 0.0,
        hint: Optional[str] = None,
        trace: Optional[Trace] = None,
    ) -> Tuple[Referral, Trace]:
        """Lookup via white pages, or via an explicit *hint* node name
        for unlisted users (who told the application where to look).
        *trace*, when given, is charged instead of a fresh one."""
        path = parse_path(request)
        user_id = path.user_id()
        if user_id is None:
            raise GupsterError("request must identify a user")
        trace = trace if trace is not None else self.network.trace()
        with trace.span(
            "mdm.user_distributed",
            path=str(path), client=client, hinted=hint is not None,
        ) as lookup:
            if hint is not None:
                entry = (
                    self._unlisted.get(user_id)
                    or self._assignments.get(user_id)
                )
                if entry is None or entry[0] != hint:
                    raise GupsterError(
                        "hint %r does not match any MDM for %r"
                        % (hint, user_id)
                    )
                node, server = entry
            else:
                # White-pages round trip.
                with trace.span("mdm.whitepages"):
                    trace.hop(client, self.whitepages_node,
                              len(user_id) + REQUEST_OVERHEAD_BYTES,
                              "white pages lookup")
                    trace.compute(WHITEPAGES_COMPUTE_MS, "white pages")
                    entry = self._assignments.get(user_id)
                    if entry is None:
                        listed = user_id in self._unlisted
                        trace.hop(self.whitepages_node, client, 32,
                                  "miss")
                        raise GupsterError(
                            "user %r is unlisted — a hint is required"
                            % user_id
                            if listed
                            else "user %r has no meta-data manager"
                            % user_id
                        )
                    node, server = entry
                    trace.hop(self.whitepages_node, client,
                              len(node) + REQUEST_OVERHEAD_BYTES,
                              "pointer")
            lookup.set("mdm_node", node)
            referral = _retry_round_trip(
                trace, self.retry_policy, self.health, client, node,
                server, path, context, now,
            )
        return referral, trace

    def resolve_batch(
        self,
        client: str,
        requests: Sequence[Union[str, Path]],
        contexts: Sequence[RequestContext],
        now: float = 0.0,
        hints: Optional[Dict[str, str]] = None,
    ) -> Tuple[List[BatchOutcome], Trace]:
        """Batched :meth:`resolve`: **one** white-pages round trip
        carries every lookup, then one batched referral round trip per
        distinct target MDM. *hints* maps user id → node for unlisted
        users whose pointer the application already holds; users with
        no (matching) manager fail item-wise with the same
        :class:`~repro.errors.GupsterError` as the sequential path."""
        outcomes: List[BatchOutcome] = [(None, None)] * len(requests)
        items = _parse_batch(requests, contexts, outcomes)
        trace = self.network.trace()
        hints = hints or {}
        with trace.span(
            "mdm.user_distributed.batch",
            items=len(items), client=client,
        ):
            if not items:
                return outcomes, trace
            hinted: List[Tuple[int, Path, RequestContext, str,
                               GupsterServer]] = []
            lookups: List[Tuple[int, Path, RequestContext, str]] = []
            for index, path, context in items:
                user_id = path.user_id()
                if user_id is None:
                    outcomes[index] = (
                        None,
                        GupsterError("request must identify a user"),
                    )
                    continue
                hint = hints.get(user_id)
                if hint is not None:
                    entry = (
                        self._unlisted.get(user_id)
                        or self._assignments.get(user_id)
                    )
                    if entry is None or entry[0] != hint:
                        outcomes[index] = (
                            None,
                            GupsterError(
                                "hint %r does not match any MDM for %r"
                                % (hint, user_id)
                            ),
                        )
                        continue
                    hinted.append((index, path, context) + entry)
                else:
                    lookups.append((index, path, context, user_id))
            routed: Dict[str, List[Tuple[int, Path, RequestContext]]] = {}
            servers: Dict[str, GupsterServer] = {}
            for index, path, context, node, server in hinted:
                routed.setdefault(node, []).append((index, path, context))
                servers[node] = server
            if lookups:
                # One batched white-pages round trip for every
                # un-hinted item.
                with trace.span(
                    "mdm.whitepages.batch", items=len(lookups),
                ):
                    trace.hop(
                        client, self.whitepages_node,
                        REQUEST_OVERHEAD_BYTES + sum(
                            len(user_id)
                            for _i, _p, _c, user_id in lookups
                        ),
                        "batched white pages lookup (%d users)"
                        % len(lookups),
                    )
                    pointer_bytes = 0
                    for index, path, context, user_id in lookups:
                        trace.compute(
                            WHITEPAGES_COMPUTE_MS, "white pages"
                        )
                        entry = self._assignments.get(user_id)
                        if entry is None:
                            listed = user_id in self._unlisted
                            pointer_bytes += 32
                            outcomes[index] = (
                                None,
                                GupsterError(
                                    "user %r is unlisted — a hint is "
                                    "required" % user_id
                                    if listed
                                    else "user %r has no meta-data "
                                    "manager" % user_id
                                ),
                            )
                            continue
                        node, server = entry
                        pointer_bytes += len(node)
                        routed.setdefault(node, []).append(
                            (index, path, context)
                        )
                        servers[node] = server
                    trace.hop(
                        self.whitepages_node, client,
                        REQUEST_OVERHEAD_BYTES + pointer_bytes,
                        "batched pointers",
                    )
            # One batched referral round trip per target MDM, in
            # parallel (distinct organizations answer independently).
            branches: List[Trace] = []
            for node, group in routed.items():
                branch = trace.fork()
                branches.append(branch)
                _batched_retry_round_trip(
                    branch, self.retry_policy, self.health, client,
                    node, servers[node], group, outcomes, now,
                )
            trace.join(branches)
        return outcomes, trace

    def meta_data_exposure(self) -> Dict[str, int]:
        """Component paths visible per MDM node."""
        exposure: Dict[str, int] = {}
        for node, server in list(self._assignments.values()) + list(
            self._unlisted.values()
        ):
            exposure[node] = server.coverage.entry_count()
        return exposure


class HierarchicalMdm:
    """Per-user primary MDM with delegated subtrees (Section 5.1.2)."""

    def __init__(
        self,
        network: Network,
        retry_policy: Optional[RetryPolicy] = None,
        health: Optional[EndpointHealth] = None,
    ) -> None:
        self.network = network
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self.health = health if health is not None else EndpointHealth()
        self.health.bind_registry(network.metrics)
        #: user -> (primary node, primary server)
        self._primaries: Dict[str, Tuple[str, GupsterServer]] = {}
        #: user -> list of (delegated path, node, server)
        self._delegations: Dict[
            str, List[Tuple[Path, str, GupsterServer]]
        ] = {}

    def set_primary(
        self, user_id: str, node: str, server: GupsterServer
    ) -> None:
        server.bind_registry(self.network.metrics)
        self._primaries[user_id] = (node, server)

    def delegate(
        self,
        user_id: str,
        path: Union[str, Path],
        node: str,
        server: GupsterServer,
    ) -> None:
        """The primary learns only (path prefix, node) — the delegate's
        server holds the actual coverage entries."""
        parsed = parse_path(path)
        if parsed.user_id() != user_id:
            raise GupsterError("delegation path must belong to the user")
        self._delegations.setdefault(user_id, []).append(
            (parsed, node, server)
        )

    def resolve(
        self,
        client: str,
        request: Union[str, Path],
        context: RequestContext,
        now: float = 0.0,
        trace: Optional[Trace] = None,
    ) -> Tuple[Referral, Trace]:
        path = parse_path(request)
        user_id = path.user_id()
        entry = self._primaries.get(user_id or "")
        if entry is None:
            raise GupsterError("no primary MDM for %r" % user_id)
        primary_node, primary_server = entry
        trace = trace if trace is not None else self.network.trace()
        # Ask the primary (retrying transient failures — there is only
        # one primary, nothing to fail over to).
        request_bytes = (
            len(str(path)) + context.byte_size() + REQUEST_OVERHEAD_BYTES
        )
        policy = self.retry_policy
        last_error: Optional[Exception] = None
        with trace.span(
            "mdm.hierarchical",
            path=str(path), client=client, primary=primary_node,
        ) as lookup:
            for attempt in range(policy.max_attempts):
                if attempt > 0:
                    trace.wait(
                        policy.backoff_ms(attempt),
                        "backoff before primary retry %d"
                        % (attempt + 1),
                    )
                    trace.note_retry()
                try:
                    trace.hop(client, primary_node, request_bytes,
                              "ask primary")
                    self.health.success(primary_node)
                    break
                except TRANSIENT_ERRORS as err:
                    last_error = err
                    self.health.failure(primary_node)
            else:
                raise GupsterError(
                    "primary MDM %s unreachable: %s"
                    % (primary_node, last_error)
                )
            trace.compute(RESOLVE_COMPUTE_MS, "primary lookup")
            for delegated_path, node, server in self._delegations.get(
                user_id or "", []
            ):
                if subtree_covers(delegated_path, path):
                    # Primary only returns the delegation pointer.
                    lookup.set("delegated_to", node)
                    trace.hop(primary_node, client,
                              len(node) + REQUEST_OVERHEAD_BYTES,
                              "delegation pointer")
                    referral = _retry_round_trip(
                        trace, policy, self.health, client, node,
                        server, path, context, now,
                    )
                    return referral, trace
            referral = primary_server.resolve(path, context, now)
            trace.hop(primary_node, client,
                      referral.byte_size() + REQUEST_OVERHEAD_BYTES,
                      "referral")
        return referral, trace

    def resolve_batch(
        self,
        client: str,
        requests: Sequence[Union[str, Path]],
        contexts: Sequence[RequestContext],
        now: float = 0.0,
    ) -> Tuple[List[BatchOutcome], Trace]:
        """Batched :meth:`resolve`: items group by primary MDM — one
        batched ask per primary (parallel across primaries), one
        batched pointer frame for delegated subtrees, then one batched
        referral round trip per delegate node. Per-item server
        decisions stay item-wise; users with no primary fail item-wise
        with the sequential error."""
        outcomes: List[BatchOutcome] = [(None, None)] * len(requests)
        items = _parse_batch(requests, contexts, outcomes)
        trace = self.network.trace()
        with trace.span(
            "mdm.hierarchical.batch", items=len(items), client=client,
        ):
            by_primary: Dict[
                str,
                Tuple[GupsterServer, List[Tuple[int, Path, RequestContext]]],
            ] = {}
            for index, path, context in items:
                entry = self._primaries.get(path.user_id() or "")
                if entry is None:
                    outcomes[index] = (
                        None,
                        GupsterError(
                            "no primary MDM for %r" % path.user_id()
                        ),
                    )
                    continue
                node, server = entry
                by_primary.setdefault(node, (server, []))[1].append(
                    (index, path, context)
                )
            branches: List[Trace] = []
            for primary_node, (primary_server, group) in \
                    by_primary.items():
                branch = trace.fork()
                branches.append(branch)
                self._resolve_batch_at_primary(
                    branch, client, primary_node, primary_server,
                    group, outcomes, now,
                )
            trace.join(branches)
        return outcomes, trace

    def _resolve_batch_at_primary(
        self,
        trace: Trace,
        client: str,
        primary_node: str,
        primary_server: GupsterServer,
        group: List[Tuple[int, Path, RequestContext]],
        outcomes: List[BatchOutcome],
        now: float,
    ) -> None:
        """One primary's slice of a hierarchical batch."""
        request_bytes = REQUEST_OVERHEAD_BYTES + sum(
            len(str(path)) + context.byte_size()
            for _index, path, context in group
        )
        policy = self.retry_policy
        last_error: Optional[Exception] = None
        for attempt in range(policy.max_attempts):
            if attempt > 0:
                trace.wait(
                    policy.backoff_ms(attempt),
                    "backoff before batched primary retry %d"
                    % (attempt + 1),
                )
                for _item in group:
                    trace.note_retry()
            try:
                trace.hop(client, primary_node, request_bytes,
                          "batched ask primary (%d items)" % len(group))
                self.health.success(primary_node)
                break
            except TRANSIENT_ERRORS as err:
                last_error = err
                self.health.failure(primary_node)
        else:
            failure = GupsterError(
                "primary MDM %s unreachable: %s"
                % (primary_node, last_error)
            )
            for index, _path, _context in group:
                outcomes[index] = (None, failure)
            return
        delegated: Dict[
            str,
            Tuple[GupsterServer, List[Tuple[int, Path, RequestContext]]],
        ] = {}
        local: List[Tuple[int, Path, RequestContext]] = []
        pointer_bytes = 0
        for index, path, context in group:
            trace.compute(RESOLVE_COMPUTE_MS, "primary lookup")
            target: Optional[Tuple[str, GupsterServer]] = None
            for delegated_path, node, server in self._delegations.get(
                path.user_id() or "", []
            ):
                if subtree_covers(delegated_path, path):
                    target = (node, server)
                    break
            if target is None:
                local.append((index, path, context))
            else:
                pointer_bytes += len(target[0])
                delegated.setdefault(target[0], (target[1], []))[1] \
                    .append((index, path, context))
        if delegated:
            trace.hop(primary_node, client,
                      REQUEST_OVERHEAD_BYTES + pointer_bytes,
                      "batched delegation pointers")
        local_referrals: List[Optional[Referral]] = []
        for index, path, context in local:
            try:
                referral = primary_server.resolve(path, context, now)
            except ReproError as err:
                local_referrals.append(None)
                outcomes[index] = (None, err)
            else:
                local_referrals.append(referral)
                outcomes[index] = (referral, None)
        if local:
            trace.hop(
                primary_node, client,
                REQUEST_OVERHEAD_BYTES + sum(
                    referral.byte_size() if referral is not None else 32
                    for referral in local_referrals
                ),
                "batched referrals",
            )
        for node, (server, sub_group) in delegated.items():
            _batched_retry_round_trip(
                trace, policy, self.health, client, node, server,
                sub_group, outcomes, now,
            )

    def meta_data_exposure(self) -> Dict[str, int]:
        """What each node can see: primaries count their own coverage
        entries plus one opaque pointer per delegation; delegates count
        their delegated entries."""
        exposure: Dict[str, int] = {}
        for user_id, (node, server) in self._primaries.items():
            exposure[node] = exposure.get(node, 0) + (
                server.coverage.entry_count()
            )
            exposure[node] += len(self._delegations.get(user_id, []))
        seen = set()
        for delegations in self._delegations.values():
            for _path, node, server in delegations:
                if (node, id(server)) in seen:
                    continue  # same delegate server counted once
                seen.add((node, id(server)))
                exposure[node] = exposure.get(node, 0) + (
                    server.coverage.entry_count()
                )
        return exposure
