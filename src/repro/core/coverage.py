"""The coverage map: which data stores hold which profile components.

Paper Section 4.5: "a coverage is a mapping between sub-trees of the
GUP schema (expressed as XPath expressions) and data-stores. Note that
a given profile component can be mapped to multiple data-stores."

Resolution of a request path against the coverage map is the heart of
GUPster's referral generation:

* stores whose registration **covers** the request can each answer it
  alone — they become ``||`` choices;
* otherwise, registrations that **overlap** the request (the Figure 9
  split address book) each contribute a part, and the referral carries
  a merge plan.

The map is indexed by user id (the first step's ``@id`` predicate), so
lookup cost is independent of the total user population — the property
experiment E3 verifies.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple, Union

from repro.errors import CoverageError, ResyncRequiredError
from repro.pxml import Path, parse_path
from repro.pxml.containment import subtree_covers, subtree_overlaps

__all__ = ["CoverageMap", "CoverageResolution"]


class CoverageResolution:
    """Outcome of resolving one request path.

    ``full`` — (coverage path, store ids) pairs where each store can
    answer the entire request.
    ``partial`` — (coverage path, store ids) pairs that hold only part
    of the requested region.
    """

    def __init__(
        self,
        request: Path,
        full: List[Tuple[Path, List[str]]],
        partial: List[Tuple[Path, List[str]]],
    ) -> None:
        self.request = request
        self.full = full
        self.partial = partial

    @property
    def is_covered(self) -> bool:
        """Can the request be answered at all (fully or by merging)?"""
        return bool(self.full) or bool(self.partial)

    @property
    def needs_merge(self) -> bool:
        return not self.full and len(self.partial) > 0

    def __repr__(self) -> str:
        return "<CoverageResolution %s full=%d partial=%d>" % (
            self.request, len(self.full), len(self.partial),
        )


class CoverageMap:
    """Registrations of profile components by data stores."""

    def __init__(
        self,
        track_changes: bool = True,
        max_changelog: int = 65536,
    ) -> None:
        #: user id -> coverage path -> ordered store ids
        # gupcheck: bounded[enrollment] -- one entry per enrolled (user, component); unregister pops
        self._by_user: Dict[str, Dict[Path, List[str]]] = {}
        #: store id -> set of (user, path) it registered (for leaving)
        # gupcheck: bounded[enrollment] -- mirrors _by_user per store; unregister_store pops it
        self._by_store: Dict[str, Set[Tuple[str, Path]]] = {}
        self.registrations = 0
        self.lookups = 0
        #: Monotone revision + changelog so mirror constellations can
        #: replicate registrations incrementally (Section 4.2's
        #: "family of mirrored servers"). ``track_changes=False``
        #: disables the log — carrier-scale populations (E19, millions
        #: of registrations) never replay it, and an unbounded append
        #: per registration is real memory at that size. The log keeps
        #: the newest *max_changelog* entries; a mirror that falls
        #: behind the window gets a loud :class:`CoverageError` from
        #: :meth:`changes_since` (full resync needed), never a
        #: silently incomplete feed.
        self.track_changes = track_changes
        if max_changelog <= 0:
            raise ValueError("max_changelog must be positive")
        self.max_changelog = max_changelog
        self.revision = 0
        self._changelog: List[Tuple[int, str, Path, str]] = []
        #: Highest revision trimmed out of the log window (0: none).
        self._log_floor = 0

    # -- the replication feed window --------------------------------------------

    def _log_change(self, op: str, path: Path, store_id: str) -> None:
        """Append one feed entry at the current revision, trimming
        the log to the newest ``max_changelog`` entries. Trimmed
        revisions raise the floor :meth:`changes_since` checks."""
        self._changelog.append((self.revision, op, path, store_id))
        overflow = len(self._changelog) - self.max_changelog
        if overflow > 0:
            self._log_floor = self._changelog[overflow - 1][0]
            del self._changelog[:overflow]

    # -- registration ----------------------------------------------------------

    def register(self, path: Union[str, Path], store_id: str) -> None:
        """A data store announces it shares the component at *path*."""
        parsed = parse_path(path)
        user_id = parsed.user_id()
        if user_id is None:
            raise CoverageError(
                "coverage path must carry a user id: %s" % parsed
            )
        if parsed.attribute is not None:
            raise CoverageError(
                "components are subtrees; attribute paths cannot be "
                "registered: %s" % parsed
            )
        bucket = self._by_user.setdefault(user_id, {})
        stores = bucket.setdefault(parsed, [])
        if store_id not in stores:
            stores.append(store_id)
            self._by_store.setdefault(store_id, set()).add(
                (user_id, parsed)
            )
            self.registrations += 1
            self.revision += 1
            if self.track_changes:
                self._log_change("register", parsed, store_id)

    def unregister(self, path: Union[str, Path], store_id: str) -> None:
        parsed = parse_path(path)
        user_id = parsed.user_id()
        bucket = self._by_user.get(user_id or "", {})
        stores = bucket.get(parsed)
        if not stores or store_id not in stores:
            raise CoverageError(
                "%r never registered %s" % (store_id, parsed)
            )
        stores.remove(store_id)
        if not stores:
            del bucket[parsed]
        self._by_store.get(store_id, set()).discard((user_id, parsed))
        self.revision += 1
        if self.track_changes:
            self._log_change("unregister", parsed, store_id)

    def unregister_store(self, store_id: str) -> int:
        """A store leaves the community; drop all its registrations."""
        entries = self._by_store.pop(store_id, set())
        for user_id, path in sorted(entries, key=lambda e: str(e[1])):
            bucket = self._by_user.get(user_id, {})
            stores = bucket.get(path)
            if stores and store_id in stores:
                stores.remove(store_id)
                if not stores:
                    del bucket[path]
            self.revision += 1
            if self.track_changes:
                self._log_change("unregister", path, store_id)
        return len(entries)

    # -- replication (mirror constellations) ------------------------------------

    def changes_since(
        self, revision: int
    ) -> List[Tuple[int, str, Path, str]]:
        """The replication feed: every change after *revision*."""
        if not self.track_changes:
            raise CoverageError(
                "replication feed disabled (track_changes=False)"
            )
        if revision < self._log_floor:
            raise ResyncRequiredError(
                "replication feed truncated: revision %d predates "
                "the retained window (floor %d); full resync required"
                % (revision, self._log_floor)
            )
        return [c for c in self._changelog if c[0] > revision]

    def apply_changes(
        self, changes: List[Tuple[int, str, Path, str]]
    ) -> int:
        """Apply a replication feed from a peer; returns how many
        entries were applied (already-seen revisions are skipped)."""
        applied = 0
        for revision, op, path, store_id in changes:
            if revision <= self.revision:
                continue
            user_id = path.user_id() or ""
            if op == "register":
                bucket = self._by_user.setdefault(user_id, {})
                stores = bucket.setdefault(path, [])
                if store_id not in stores:
                    stores.append(store_id)
                    self._by_store.setdefault(store_id, set()).add(
                        (user_id, path)
                    )
            else:
                bucket = self._by_user.get(user_id, {})
                stores = bucket.get(path, [])
                if store_id in stores:
                    stores.remove(store_id)
                    if not stores:
                        del bucket[path]
                self._by_store.get(store_id, set()).discard(
                    (user_id, path)
                )
            self.revision = revision
            self._log_change(op, path, store_id)
            applied += 1
        return applied

    # -- resolution ------------------------------------------------------------

    def resolve(self, request: Union[str, Path]) -> CoverageResolution:
        """Match *request* against this user's registrations."""
        parsed = parse_path(request)
        self.lookups += 1
        user_id = parsed.user_id()
        if user_id is None:
            raise CoverageError(
                "request must identify a user: %s" % parsed
            )
        bucket = self._by_user.get(user_id, {})
        full: List[Tuple[Path, List[str]]] = []
        partial: List[Tuple[Path, List[str]]] = []
        for coverage_path, stores in bucket.items():
            if not stores:
                continue
            if subtree_covers(coverage_path, parsed):
                full.append((coverage_path, list(stores)))
            elif subtree_overlaps(coverage_path, parsed):
                partial.append((coverage_path, list(stores)))
        full.sort(key=lambda pair: str(pair[0]))
        partial.sort(key=lambda pair: str(pair[0]))
        return CoverageResolution(parsed, full, partial)

    # -- introspection ------------------------------------------------------------

    def paths_for_user(self, user_id: str) -> List[Path]:
        return sorted(self._by_user.get(user_id, {}), key=str)

    def stores_for(
        self, path: Union[str, Path]
    ) -> List[str]:
        parsed = parse_path(path)
        bucket = self._by_user.get(parsed.user_id() or "", {})
        return list(bucket.get(parsed, []))

    def stores(self) -> List[str]:
        return sorted(
            store for store, entries in self._by_store.items() if entries
        )

    def user_count(self) -> int:
        return len(self._by_user)

    def users(self) -> List[str]:
        return sorted(
            user for user, bucket in self._by_user.items() if bucket
        )

    def entry_count(self) -> int:
        return sum(
            len(stores)
            for bucket in self._by_user.values()
            for stores in bucket.values()
        )

    def component_graph(self, user_id: str) -> List[Tuple[str, List[str]]]:
        """Per-user component inventory: (path, stores) — the Figure 6
        'profile = linked components' view."""
        bucket = self._by_user.get(user_id, {})
        return [
            (str(path), list(stores))
            for path, stores in sorted(
                bucket.items(), key=lambda kv: str(kv[0])
            )
        ]
