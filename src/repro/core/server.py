"""The GUPster server (paper Sections 4.2–4.6, 5.3).

The server is the Napster of profile components: data stores register
what they share; client applications send (path, context) requests; the
server filters spurious queries against the GUP schema, enforces the
privacy shield, rewrites the request to the permitted slice, signs the
rewritten queries, and returns a **referral** — never data.

Optional query-processing variations (Section 5.2) live in
:mod:`repro.core.query` (chaining/recruiting) and are supported here by
exposing the adapter registry; caching is a plug-in
(:class:`~repro.core.cache.ComponentCache`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.errors import (
    AccessDeniedError,
    GupsterError,
    NoCoverageError,
)
from repro.pxml import GUP_SCHEMA, Path, PNode, parse_path
from repro.pxml.merge import ConflictPolicy
from repro.pxml.schema import Schema
from repro.pxml.adjunct import SchemaAdjunct
from repro.access import (
    PolicyAdministrationPoint,
    PolicyEnforcementPoint,
    PolicyRepository,
    PolicyRule,
    RequestContext,
)
from repro.adapters.base import GupAdapter
from repro.core.cache import ComponentCache
from repro.core.coverage import CoverageMap
from repro.core.referral import Referral, ReferralPart
from repro.core.signing import QuerySigner
from repro.obs.metrics import CounterView, MetricsRegistry

__all__ = ["GupsterServer"]


class GupsterServer:
    """A (logically centralized) GUPster meta-data server."""

    resolves = CounterView("server.resolves")
    denials = CounterView("server.denials")
    spurious_rejected = CounterView("server.spurious_rejected")

    #: (metric, help) for every server counter.
    COUNTER_FIELDS = (
        ("server.resolves", "Referral resolutions attempted."),
        ("server.denials", "Requests denied by the privacy shield."),
        ("server.spurious_rejected",
         "Queries rejected by the GUP schema filter."),
    )

    def __init__(
        self,
        name: str = "gupster",
        schema: Schema = GUP_SCHEMA,
        signer: Optional[QuerySigner] = None,
        cache: Optional[ComponentCache] = None,
        enforce_policies: bool = True,
        adjunct: Optional[SchemaAdjunct] = None,
        coverage: Optional[CoverageMap] = None,
    ) -> None:
        self.name = name
        self.schema = schema
        #: Optional :class:`~repro.pxml.adjunct.SchemaAdjunct` carrying
        #: per-region metadata (cache TTLs, reconciliation policies,
        #: sensitivity labels) — the re-ified meta-data of
        #: requirement 8 / Section 7.
        self.adjunct = adjunct
        #: Injectable for scale runs: E19 passes
        #: ``CoverageMap(track_changes=False)`` so millions of
        #: registrations do not accrete a replication changelog.
        self.coverage = coverage if coverage is not None else CoverageMap()
        self.signer = signer if signer is not None else QuerySigner()
        self.cache = cache
        self.enforce_policies = enforce_policies
        # Figure 10 roles, co-located in the basic architecture.
        self.policy_repository = PolicyRepository(name + ".prp")
        self.pap = PolicyAdministrationPoint(self.policy_repository)
        self.pep = PolicyEnforcementPoint(self.policy_repository)
        #: store id -> adapter (needed for chaining/recruiting and for
        #: registration convenience; referral clients talk to stores
        #: directly and never touch this).
        # gupcheck: bounded[store-topology] -- one adapter per joined store; leave() pops it
        self.adapters: Dict[str, GupAdapter] = {}
        # Counters (E2/E3 read these) — registry views since E18; a
        # private registry until :meth:`bind_registry` re-homes the
        # server onto a network's shared world registry.
        self.metrics = MetricsRegistry()
        self._register_instruments()

    def _register_instruments(self) -> None:
        for metric, help_text in self.COUNTER_FIELDS:
            self.metrics.counter(metric, help=help_text)

    def bind_registry(self, registry: MetricsRegistry) -> None:
        """Re-home the server's (and its cache's) instruments onto a
        shared registry, migrating current counts — called by
        :class:`~repro.core.query.QueryExecutor` when the server is
        wired to a network."""
        if registry is not self.metrics:
            previous = self.metrics
            self.metrics = registry
            self._register_instruments()
            for metric, _help in self.COUNTER_FIELDS:
                carried = previous.counter(metric).value
                if carried:
                    registry.counter(metric).inc(carried)
        if self.cache is not None:
            self.cache.bind_registry(registry)

    # -- community management ---------------------------------------------------

    def join(
        self,
        adapter: GupAdapter,
        user_ids: Optional[List[str]] = None,
    ) -> int:
        """A GUP-enabled data store joins: register its components for
        the given users (default: every user it knows). Returns the
        number of component registrations made."""
        self.adapters[adapter.store_id] = adapter
        count = 0
        for user_id in user_ids if user_ids is not None else adapter.users():
            for path in adapter.coverage_paths(user_id):
                self.coverage.register(path, adapter.store_id)
                count += 1
        return count

    def leave(self, store_id: str) -> int:
        """A store leaves the community; drops its registrations."""
        self.adapters.pop(store_id, None)
        return self.coverage.unregister_store(store_id)

    def register_component(
        self, path: Union[str, Path], store_id: str
    ) -> None:
        """Manual registration (placement decided by the end user,
        Section 5.3 data placement (i))."""
        problem = self.schema.validate_path(path)
        if problem is not None:
            raise GupsterError("bad coverage path: %s" % problem)
        self.coverage.register(path, store_id)

    def unregister_component(
        self, path: Union[str, Path], store_id: str
    ) -> None:
        self.coverage.unregister(path, store_id)

    # -- policy provisioning (PAP facade) ------------------------------------------

    def provision_policy(
        self, acting_user: str, rule: PolicyRule
    ) -> PolicyRule:
        return self.pap.provision_rule(acting_user, rule)

    def revoke_policy(self, acting_user: str, rule_id: str) -> None:
        self.pap.revoke_rule(acting_user, rule_id)

    # -- the resolve operation (the Napster lookup) ---------------------------------

    def resolve(
        self,
        request: Union[str, Path],
        context: RequestContext,
        now: float = 0.0,
        merge_policy: ConflictPolicy = ConflictPolicy.PREFER_FIRST,
    ) -> Referral:
        """Answer a client request with a signed referral.

        Raises
        ------
        GupsterError
            for spurious queries that do not fit the GUP schema.
        AccessDeniedError
            when the privacy shield denies the request.
        NoCoverageError
            when no registered store holds the (permitted) component.
        """
        self.resolves += 1
        parsed = parse_path(request)
        problem = self.schema.validate_path(parsed)
        if problem is not None:
            self.spurious_rejected += 1
            raise GupsterError("spurious query: %s" % problem)

        if self.enforce_policies:
            decision = self.pep.enforce(parsed, context)
            if not decision.permit:
                self.denials += 1
                raise AccessDeniedError(
                    "privacy shield denies %s for %s: %s"
                    % (parsed, context.requester,
                       "; ".join(decision.reasons))
                )
            permitted = decision.permitted_paths
        else:
            permitted = [parsed]

        parts: List[ReferralPart] = []
        for permitted_path in permitted:
            resolution = self.coverage.resolve(permitted_path)
            if resolution.full:
                # One part; any full coverer is a || choice.
                choices: List[str] = []
                for _path, stores in resolution.full:
                    for store in stores:
                        if store not in choices:
                            choices.append(store)
                parts.append(
                    ReferralPart(
                        permitted_path,
                        choices,
                        self.signer.sign(
                            permitted_path, context.requester, now
                        ),
                    )
                )
            elif resolution.partial:
                for partial_path, stores in resolution.partial:
                    parts.append(
                        ReferralPart(
                            partial_path,
                            stores,
                            self.signer.sign(
                                partial_path, context.requester, now
                            ),
                        )
                    )
        if not parts:
            raise NoCoverageError(
                "no data store covers %s" % parsed
            )
        return Referral(parsed, parts, merge_policy)

    # -- write path (provisioning fan-in) ----------------------------------------

    def resolve_for_update(
        self,
        request: Union[str, Path],
        context: RequestContext,
        now: float = 0.0,
    ) -> Referral:
        """Referral for a *provisioning* operation.

        Unlike a read referral (where any full coverer is a ``||``
        choice), an update must reach **every** store holding any part
        of the component, or replicas diverge — so each overlapping
        registration becomes its own mandatory part. The caller's
        context purpose must be ``provision``."""
        if context.purpose != "provision":
            raise AccessDeniedError(
                "updates require a provisioning context"
            )
        self.resolves += 1
        parsed = parse_path(request)
        problem = self.schema.validate_path(parsed)
        if problem is not None:
            self.spurious_rejected += 1
            raise GupsterError("spurious query: %s" % problem)
        if self.enforce_policies:
            decision = self.pep.enforce(parsed, context)
            if not decision.permit:
                self.denials += 1
                raise AccessDeniedError(
                    "privacy shield denies update of %s for %s"
                    % (parsed, context.requester)
                )
        resolution = self.coverage.resolve(parsed)
        parts: List[ReferralPart] = []
        for coverage_path, stores in resolution.full + resolution.partial:
            # For a full coverer the store should receive the request
            # path (it owns a superset); for a partial one, its own
            # registered slice.
            target = (
                parsed
                if any(coverage_path == f[0] for f in resolution.full)
                else coverage_path
            )
            for store in stores:
                parts.append(
                    ReferralPart(
                        target,
                        [store],
                        self.signer.sign(target, context.requester, now),
                    )
                )
        if not parts:
            raise NoCoverageError("no data store covers %s" % parsed)
        if self.cache is not None:
            self.cache.invalidate(parsed)
        return Referral(parsed, parts)

    def find_single_source(
        self, requests: List[Union[str, Path]]
    ) -> Optional[str]:
        """A store that alone covers *every* requested path, if one
        exists (paper Section 7: "identify a single data source that
        holds all the data needed for a specific application").

        Returns the store id, preferring the store covering the most
        registrations (an arbitrary-but-stable tiebreak), or None when
        no single store suffices.
        """
        candidates: Optional[set] = None
        for request in requests:
            resolution = self.coverage.resolve(request)
            covering = {
                store
                for _path, stores in resolution.full
                for store in stores
            }
            if candidates is None:
                candidates = covering
            else:
                candidates &= covering
            if not candidates:
                return None
        if not candidates:
            return None
        return sorted(candidates)[0]

    def cache_ttl_for(self, path: Union[str, Path]) -> Optional[float]:
        """Effective cache TTL for a component, from the adjunct when
        present (None = use the cache default; 0.0 = never cache)."""
        if self.adjunct is None:
            return None
        value = self.adjunct.property_for(
            parse_path(path).element_path(), "cache-ttl-ms"
        )
        return float(value) if value is not None else None

    # -- privacy-safe cache facade (the shield stays in front) ---------------

    def _shield_cached(
        self, parsed: Path, context: RequestContext
    ) -> None:
        """Re-enforce the privacy shield for a cache answer. Keying by
        scope already partitions requesters; this catches policy
        changes and time-window rules inside an entry's lifetime."""
        if not self.enforce_policies:
            return
        decision = self.pep.enforce(parsed, context)
        if not decision.permit:
            self.denials += 1
            raise AccessDeniedError(
                "privacy shield denies cached %s for %s: %s"
                % (parsed, context.requester,
                   "; ".join(decision.reasons))
            )

    def cache_lookup(
        self,
        request: Union[str, Path],
        context: RequestContext,
        now: float,
    ) -> Optional[PNode]:
        """Fresh cache answer for *request* within the requester's
        privacy scope, shield re-checked; None on miss / no cache.

        Raises :class:`AccessDeniedError` when a (scoped) entry exists
        but the shield no longer permits the request — a denied
        requester must not learn anything, not even cache warmth."""
        if self.cache is None:
            return None
        parsed = parse_path(request)
        cached = self.cache.get(
            parsed, now, scope=context.cache_scope()
        )
        if cached is None:
            return None
        self._shield_cached(parsed, context)
        return cached

    def cache_stale_lookup(
        self,
        request: Union[str, Path],
        context: RequestContext,
        now: float,
    ) -> Optional[PNode]:
        """Serve-stale-on-failure: the last known (scoped) answer
        within the cache's stale grace, shield re-checked."""
        if self.cache is None:
            return None
        parsed = parse_path(request)
        stale = self.cache.get_stale(
            parsed, now, scope=context.cache_scope()
        )
        if stale is None:
            return None
        self._shield_cached(parsed, context)
        return stale

    def cache_store(
        self,
        request: Union[str, Path],
        fragment: PNode,
        context: RequestContext,
        now: float,
    ) -> bool:
        """Cache *fragment* (the merge of the requester's permitted
        slices) under the requester's scope, honouring per-component
        TTLs from the adjunct. Returns True when stored."""
        if self.cache is None:
            return False
        parsed = parse_path(request)
        scope = context.cache_scope()
        ttl = self.cache_ttl_for(parsed)
        if ttl is None:
            self.cache.put(parsed, fragment, now, scope=scope)
            return True
        if ttl > 0.0:
            self.cache.put(parsed, fragment, now, ttl_ms=ttl, scope=scope)
            return True
        # ttl == 0.0 (e.g. /user/wallet): never cached.
        return False

    # -- introspection ------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "resolves": self.resolves,
            "denials": self.denials,
            "spurious_rejected": self.spurious_rejected,
            "registrations": self.coverage.registrations,
            "users": self.coverage.user_count(),
            "coverage_entries": self.coverage.entry_count(),
            "stores": len(self.coverage.stores()),
            "queries_signed": self.signer.signed,
        }
