"""GUPster core: coverage map, referrals, signed queries, the server,
query-processing patterns, caching, subscriptions and MDM topologies."""

from repro.core.cache import ComponentCache
from repro.core.constellation import MirrorConstellation
from repro.core.coverage import CoverageMap, CoverageResolution
from repro.core.mdm import (
    CentralizedMdm,
    HierarchicalMdm,
    UserDistributedMdm,
)
from repro.core.query import BatchItemResult, QueryBatch, QueryExecutor
from repro.core.referral import Referral, ReferralPart
from repro.core.resilience import (
    EndpointHealth,
    PartStatus,
    RetryPolicy,
)
from repro.core.server import GupsterServer
from repro.core.signing import QuerySigner, QueryVerifier, SignedQuery
from repro.core.provenance import (
    AccessRecord,
    ProvenanceTracker,
    SourceAnnotator,
)
from repro.core.subscription import Delivery, SubscriptionHub

__all__ = [
    "CoverageMap", "CoverageResolution",
    "Referral", "ReferralPart",
    "QuerySigner", "QueryVerifier", "SignedQuery",
    "ComponentCache",
    "GupsterServer",
    "QueryExecutor",
    "QueryBatch",
    "BatchItemResult",
    "RetryPolicy", "EndpointHealth", "PartStatus",
    "CentralizedMdm", "UserDistributedMdm", "HierarchicalMdm",
    "SubscriptionHub", "Delivery",
    "ProvenanceTracker", "SourceAnnotator", "AccessRecord",
    "MirrorConstellation",
]
