"""Referrals: what GUPster returns instead of data.

Paper Section 4.3: "GUPster does not return any data, just a referral
to be used by the client application", e.g. ::

    gup.yahoo.com/user[@id='arnaud']/address-book ||
    gup.spcs.com/user[@id='arnaud']/address-book

where ``||`` is a *choice*. When a component is split (Figure 9), the
referral instead has several *parts*, each with its own choice set, and
the client must merge the fragments ("as well as a way to merge the two
XML fragments").
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.signing import SignedQuery
from repro.pxml import Path
from repro.pxml.merge import ConflictPolicy

__all__ = ["ReferralPart", "Referral"]


class ReferralPart:
    """One component (sub)path and the stores that can serve it."""

    __slots__ = ("path", "store_ids", "signed_query")

    def __init__(
        self,
        path: Path,
        store_ids: List[str],
        signed_query: Optional[SignedQuery] = None,
    ) -> None:
        if not store_ids:
            raise ValueError("a referral part needs at least one store")
        self.path = path
        self.store_ids = list(store_ids)
        #: The GUPster-signed query the client presents to the store.
        self.signed_query = signed_query

    def render(self) -> str:
        """The paper's notation for this part."""
        return " || ".join(
            "%s%s" % (store, self.path) for store in self.store_ids
        )

    def __repr__(self) -> str:
        return "<ReferralPart %s>" % self.render()


class Referral:
    """GUPster's answer to a resolve request."""

    __slots__ = ("request", "parts", "merge_policy")

    def __init__(
        self,
        request: Path,
        parts: List[ReferralPart],
        merge_policy: ConflictPolicy = ConflictPolicy.PREFER_FIRST,
    ) -> None:
        if not parts:
            raise ValueError("a referral needs at least one part")
        self.request = request
        self.parts = parts
        #: How the client should reconcile multi-part fragments.
        self.merge_policy = merge_policy

    @property
    def needs_merge(self) -> bool:
        return len(self.parts) > 1

    def render(self) -> str:
        return "\n".join(part.render() for part in self.parts)

    def byte_size(self) -> int:
        """Wire size of the referral message (path text + store names
        + signature overhead per part)."""
        total = len(str(self.request))
        for part in self.parts:
            total += len(part.render())
            if part.signed_query is not None:
                total += part.signed_query.byte_size()
        return total

    def __repr__(self) -> str:
        return "<Referral for %s: %d part(s)>" % (
            self.request, len(self.parts),
        )
