"""Data provenance (paper Section 7, third core challenge).

"The third core challenge involves data provenance, that is, the
tracking of where data (and meta-data) have come from, and where they
have been used."

Two trackers implement the challenge:

* :class:`ProvenanceTracker` — an append-only access ledger at
  GUPster: every referral, fetch and update is recorded with
  (requester, purpose, component, stores, time). Users can audit who
  touched their data (:meth:`disclosures_for`) and applications can
  show where a fragment's pieces came from (:meth:`sources_of`).
* :class:`SourceAnnotator` — stamps merged fragments with per-part
  origins, answering "which store did this item come from?" for the
  split-component case; this is also the hook for detecting when data
  from one source would be redistributed against another source's
  access controls (:meth:`redistribution_conflicts`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ReproError
from repro.pxml import PNode, Path, parse_path
from repro.pxml.containment import subtree_covers, subtree_overlaps
from repro.access import RequestContext
from repro.access.policy import PolicyRule

__all__ = [
    "AccessRecord", "DEFAULT_MAX_RECORDS", "ProvenanceTracker",
    "SourceAnnotator",
]


class AccessRecord:
    """One entry of the access ledger."""

    __slots__ = (
        "at", "requester", "relationship", "purpose", "path",
        "stores", "operation", "granted", "note",
    )

    def __init__(
        self,
        at: float,
        context: RequestContext,
        path: Path,
        stores: Sequence[str],
        operation: str,
        granted: bool,
        note: str = "",
    ) -> None:
        self.at = at
        self.requester = context.requester
        self.relationship = context.relationship
        self.purpose = context.purpose
        self.path = path
        self.stores = list(stores)
        self.operation = operation  # 'resolve' | 'fetch' | 'update' | 'reconcile'
        self.granted = granted
        #: Free-form audit detail — e.g. which conflict policy picked
        #: which winner, and why (DESIGN.md §4.10).
        self.note = note

    def __repr__(self) -> str:
        verdict = "granted" if self.granted else "denied"
        return "<AccessRecord %.0f %s %s %s (%s)>" % (
            self.at, self.requester, self.operation, self.path, verdict,
        )


#: Default :class:`ProvenanceTracker` ledger window.
DEFAULT_MAX_RECORDS = 100_000


class ProvenanceTracker:
    """The access ledger: who touched which component, when, via
    which stores.

    The ledger keeps a *window* of the newest *max_records* entries.
    An always-on GUPster appends one record per resolve/fetch/update,
    so an uncapped ledger is linear in total traffic; a real
    deployment would spool old entries to archival storage, which
    this model represents by the ``dropped`` counter — audits can see
    that (and how much) history was truncated."""

    def __init__(self, max_records: int = DEFAULT_MAX_RECORDS) -> None:
        if max_records <= 0:
            raise ValueError("max_records must be positive")
        self.max_records = max_records
        #: Ledger entries evicted by the retention window.
        self.dropped = 0
        self._records: List[AccessRecord] = []

    def record(
        self,
        at: float,
        context: RequestContext,
        path: Union[str, Path],
        stores: Sequence[str],
        operation: str = "resolve",
        granted: bool = True,
        note: str = "",
    ) -> AccessRecord:
        entry = AccessRecord(
            at, context, parse_path(path), stores, operation, granted,
            note=note,
        )
        self._records.append(entry)
        overflow = len(self._records) - self.max_records
        if overflow > 0:
            del self._records[:overflow]
            self.dropped += overflow
        return entry

    # -- the user-facing audit ------------------------------------------------

    def disclosures_for(
        self, user_id: str, component: Optional[str] = None
    ) -> List[AccessRecord]:
        """Everything that happened to *user_id*'s data (optionally one
        component) — the e-commerce 'who has my credit card' question."""
        picked = []
        for record in self._records:
            if record.path.user_id() != user_id:
                continue
            if (
                component is not None
                and record.path.steps[1].name != component
            ):
                continue
            picked.append(record)
        return picked

    def requesters_of(self, user_id: str) -> Dict[str, int]:
        """Access counts per requester for one user's data."""
        counts: Dict[str, int] = {}
        for record in self.disclosures_for(user_id):
            if record.granted:
                counts[record.requester] = (
                    counts.get(record.requester, 0) + 1
                )
        return counts

    def denied_attempts(self, user_id: str) -> List[AccessRecord]:
        return [
            r for r in self.disclosures_for(user_id) if not r.granted
        ]

    def __len__(self) -> int:
        return len(self._records)


class SourceAnnotator:
    """Per-fragment origin tracking for merged components."""

    def __init__(self) -> None:
        #: (user, item location path) -> store id it came from
        # gupcheck: bounded[dataset] -- keyed by location path; re-annotation overwrites in place
        self._origins: Dict[str, str] = {}

    def annotate(
        self, fragment: PNode, store_id: str
    ) -> None:
        """Record that every element of *fragment* came from
        *store_id* (called once per referral part, pre-merge)."""
        for node in fragment.walk():
            self._origins[node.location_path()] = store_id

    def sources_of(self, fragment: PNode) -> Dict[str, str]:
        """Map each element location in (merged) *fragment* to its
        origin store, where known."""
        found = {}
        for node in fragment.walk():
            origin = self._origins.get(node.location_path())
            if origin is not None:
                found[node.location_path()] = origin
        return found

    def origin_of(self, node: PNode) -> Optional[str]:
        return self._origins.get(node.location_path())

    # -- the Section 7 redistribution question -----------------------------------

    def redistribution_conflicts(
        self,
        fragment: PNode,
        source_policies: Dict[str, Sequence[PolicyRule]],
        context: RequestContext,
    ) -> List[Tuple[str, str]]:
        """Would handing *fragment* to *context* violate the access
        controls of any store the pieces came from?

        "What are systematic ways ... to avoid distribution of data
        from one source that violates access controls given for
        another source?" — each element is checked against ITS source
        store's rules; returns (location, source store) pairs that no
        permit rule of the source allows."""
        conflicts = []
        for node in fragment.walk():
            location = node.location_path()
            origin = self._origins.get(location)
            if origin is None:
                continue
            rules = source_policies.get(origin, ())
            if not rules:
                continue
            allowed = False
            denied = False
            for rule in rules:
                try:
                    applicable = rule.condition.holds(context) and (
                        subtree_covers(rule.target, location)
                        or subtree_overlaps(rule.target, location)
                    )
                except (ReproError, AttributeError, TypeError,
                        ValueError):
                    # A rule whose condition cannot even be evaluated
                    # against this context is not applicable — but only
                    # the evaluation errors we understand are excused
                    # (an overbroad `except Exception` here used to
                    # swallow everything, including programming bugs).
                    applicable = False
                if not applicable:
                    continue
                if rule.effect == "deny":
                    denied = True
                else:
                    allowed = True
            if denied or not allowed:
                conflicts.append((location, origin))
        return conflicts
