"""Subscriptions: pull/poll vs GUPster-internal push (paper Section 5.2).

"In the current architecture, GUPster is a reactive (pull-based) not
pro-active (push-based) system. It is always possible to push-enable a
pull-based system using polling, but this may not be very efficient. In
our case, every polling request needs to be checked to enforce the
end-user's privacy shield. Having the subscription handled by GUPster
internally would save this extra work."

:class:`SubscriptionHub` runs the strategies on the event simulator:

* **polling** — the client polls through GUPster at a fixed interval;
  every poll pays a policy check and the full fetch path, and change
  delivery latency averages half the interval.
* **push** — the client subscribes once; GUPster hooks the store's
  native change notification and forwards changes as they happen, each
  delivery re-checked against the shield (far fewer checks than
  polling — one per *change*, not one per *tick* — but never zero: a
  revoked policy must stop deliveries, not ride a stale subscribe-time
  decision forever).
* **bus push** (E20) — the subscriber rides the change bus: deltas
  coalesce into waves, one round trip per (listener, wave), with the
  same per-delivery shield re-check memoized only within a wave.

Experiment E12 reads the delivery records and counters; E20 drives
the bus path at scale.

Accounting (E18 audit): the hub's counters are views over the
network's shared :class:`~repro.obs.MetricsRegistry` (``sub.*``), and
every delivery whose change instant is known lands its latency in the
``sub.delivery_latency_ms`` histogram. A delivery whose originating
change was never logged gets ``changed_at=None`` and a NaN latency —
counted in ``sub.latency_unknown`` — instead of the old fabricated
"changed just now" timestamp that recorded near-zero poll latencies.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Union

from repro.errors import AccessDeniedError, GupsterError, NetworkError
from repro.bus import ChangeBus, PushForwarder, SubscriberListener
from repro.obs.metrics import CounterView
from repro.pxml import Path, parse_path
from repro.pxml.evaluate import evaluate_values
from repro.access import RequestContext
from repro.core.query import QueryExecutor
from repro.core.server import GupsterServer
from repro.simnet import Network, Simulator, Timer

__all__ = ["Delivery", "SubscriptionHub"]


class Delivery:
    """One observed change delivery.

    ``changed_at`` is ``None`` when the change was never logged on the
    bus — the latency is then unknown (NaN), **not** zero."""

    __slots__ = ("mode", "value", "changed_at", "delivered_at")

    def __init__(
        self, mode: str, value: str, changed_at: Optional[float],
        delivered_at: float,
    ) -> None:
        self.mode = mode
        self.value = value
        self.changed_at = changed_at
        self.delivered_at = delivered_at

    @property
    def latency_ms(self) -> float:
        if self.changed_at is None:
            return float("nan")
        return self.delivered_at - self.changed_at

    def __repr__(self) -> str:
        return "<Delivery %s %r +%.1fms>" % (
            self.mode, self.value, self.latency_ms,
        )


class SubscriptionHub:
    """Runs polling and push subscriptions over the simulator.

    The message/failure counters live in the network's shared metrics
    registry under ``sub.*`` (the integer attributes are views), and
    every recorded :class:`Delivery` with a known change instant also
    lands its latency in the ``sub.delivery_latency_ms`` histogram.

    Change bookkeeping is the change bus's log (E20): ``note_change``
    appends, the poll path asks the log's latest-change index, and bus
    subscribers replay from per-listener cursors."""

    poll_messages = CounterView("sub.poll_messages")
    push_messages = CounterView("sub.push_messages")
    poll_failures = CounterView("sub.poll_failures")
    poll_denied = CounterView("sub.poll_denied")
    push_withheld = CounterView("sub.push_withheld")
    latency_unknown = CounterView("sub.latency_unknown")

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        server: GupsterServer,
        executor: QueryExecutor,
        bus: Optional[ChangeBus] = None,
        max_deliveries: int = 100_000,
    ) -> None:
        self.sim = sim
        self.network = network
        self.server = server
        self.executor = executor
        if max_deliveries <= 0:
            raise ValueError("max_deliveries must be positive")
        #: Delivery-audit retention: the list keeps the newest
        #: *max_deliveries* entries, dropping the oldest beyond the
        #: cap (``dropped_deliveries`` counts the truncation). The
        #: histograms/counters are unaffected — they aggregate.
        self.max_deliveries = max_deliveries
        self.dropped_deliveries = 0
        self.deliveries: List[Delivery] = []
        #: The network's shared registry — backing store for the
        #: ``sub.*`` counter views and the delivery-latency histogram.
        self.metrics = network.metrics
        self.metrics.counter(
            "sub.poll_messages",
            help="Network messages spent by polling subscriptions.",
        )
        self.metrics.counter(
            "sub.push_messages",
            help="Network messages spent by push subscriptions.",
        )
        # Polls that failed on network/coverage errors (requirement
        # 13: a flaky store must not kill the polling loop — the next
        # tick simply tries again).
        self.metrics.counter(
            "sub.poll_failures",
            help="Polls lost to transient network/coverage errors.",
        )
        self.metrics.counter(
            "sub.poll_denied",
            help="Polls denied by the shield (the poller cancels).",
        )
        self.metrics.counter(
            "sub.push_withheld",
            help="Push deliveries withheld by a per-delivery shield "
                 "re-check (e.g. after revocation).",
        )
        self.metrics.counter(
            "sub.latency_unknown",
            help="Deliveries whose originating change was never "
                 "logged, so no latency could be recorded.",
        )
        self._latency = self.metrics.histogram(
            "sub.delivery_latency_ms",
            help="Change-delivery latency, both modes (virtual ms).",
        )
        #: The change bus backing note_change / bus subscriptions.
        self.bus = bus if bus is not None else ChangeBus(
            sim, network, origin_node=executor.server_node
        )
        #: value-path -> last value seen by each poller id
        self._poll_state: Dict[int, Optional[str]] = {}
        self._poller_seq = 0
        self._subscriber_seq = 0

    def _record_delivery(self, delivery: Delivery) -> None:
        """Append *delivery*; observe its latency in the shared
        histogram when the change instant is known (stamped at the
        virtual delivery instant), count it unknown otherwise."""
        self.deliveries.append(delivery)
        overflow = len(self.deliveries) - self.max_deliveries
        if overflow > 0:
            del self.deliveries[:overflow]
            self.dropped_deliveries += overflow
        if delivery.changed_at is None:
            self.latency_unknown += 1
        else:
            self._latency.observe(
                delivery.latency_ms, now=delivery.delivered_at
            )

    # -- change bookkeeping (stores/benches call this when mutating) -----------

    def note_change(
        self, value_path: str, value: str,
        user_id: Optional[str] = None,
    ) -> None:
        """Record that the profile value at *value_path* changed now —
        an append on the change bus."""
        self.bus.append(value_path, value, user_id=user_id)

    def _changed_at(
        self, value_path: str, value: str
    ) -> Optional[float]:
        """When did the change producing *value* happen? ``None`` when
        the bus never logged it (callers must not fabricate a time)."""
        return self.bus.changed_at(value_path, value)

    # -- polling ------------------------------------------------------------------

    def start_polling(
        self,
        client: str,
        request: Union[str, Path],
        value_path: str,
        context: RequestContext,
        interval_ms: float,
        until: float,
    ) -> None:
        """Poll *request* via chaining every *interval_ms*; deliver when
        the value at *value_path* (within the fragment) changes. A
        poller the shield denies cancels itself — re-paying the fetch
        path every tick for a guaranteed denial buys nothing."""
        path = parse_path(request)
        self._poller_seq += 1
        poller_id = self._poller_seq
        self._poll_state[poller_id] = None
        recurrence: Dict[str, Timer] = {}

        def poll() -> None:
            # Every poll is a full policy-checked fetch.
            try:
                fragment, trace = self.executor.chaining(
                    client, path, context, now=self.sim.now
                )
            except AccessDeniedError:
                self.poll_denied += 1
                holder = recurrence.get("timer")
                if holder is not None:
                    holder.cancel()
                # The poller is dead; drop its state now rather than
                # waiting for the until-sweep.
                self._poll_state.pop(poller_id, None)
                return
            except (NetworkError, GupsterError):
                # Transient outage (all stores down, lost messages):
                # count it and let the next poll tick try again.
                self.poll_failures += 1
                return
            self.poll_messages += trace.hops
            value = None
            if fragment is not None:
                values = evaluate_values(fragment, value_path)
                value = values[0] if values else None
            previous = self._poll_state[poller_id]
            if value is not None and value != previous:
                self._poll_state[poller_id] = value
                delivered_at = self.sim.now + trace.elapsed_ms
                if previous is not None:  # skip the initial snapshot
                    self._record_delivery(
                        Delivery(
                            "poll", value,
                            self._changed_at(value_path, value),
                            delivered_at,
                        )
                    )

        recurrence["timer"] = self.sim.every(
            interval_ms, poll, until=until,
        )
        # Once *until* passes no tick can fire again; without this
        # sweep the poller's last-value entry would outlive it for
        # the hub's whole lifetime (one leaked entry per poller ever
        # started — unbounded on an always-on hub).
        self.sim.schedule_at(
            max(until, self.sim.now) + interval_ms,
            lambda: self._poll_state.pop(poller_id, None),
        )

    # -- push ---------------------------------------------------------------------

    def start_push(
        self,
        client: str,
        request: Union[str, Path],
        value_path: str,
        context: RequestContext,
        watch_hook: Callable[[Callable[[str], None]], None],
        store_node: str,
    ) -> None:
        """Subscribe once; *watch_hook* is called with a callback that
        the native store invokes on each change (e.g. wraps
        ``PresenceServer.watch``). GUPster forwards changes to the
        client as they arrive — each forwarded delivery re-checked
        against the shield, so a revocation stops the stream (the
        subscribe-time check alone would keep delivering forever).

        The forwarding itself (two sampled hops) is the
        :class:`~repro.bus.push.PushForwarder` driver's job; the hub
        supplies only decisions — the shield gate, the counters, the
        delivery record — keeping the wire off the core's call stack
        (the sans-io boundary the analyzer pins)."""
        path = parse_path(request)
        # The subscribe-time check: a requester the shield rejects
        # never even registers the watch.
        decision = self.server.pep.enforce(path, context)
        if not decision.permit:
            raise AccessDeniedError(
                "subscription denied for %s" % context.requester
            )

        def note(value: str) -> None:
            self.note_change(value_path, value)

        def gate() -> bool:
            return self.server.pep.enforce(path, context).permit

        def deliver(
            value: str, changed_at: float, now: float
        ) -> None:
            self._record_delivery(
                Delivery("push", value, changed_at, now)
            )

        def on_withheld() -> None:
            self.push_withheld += 1

        def on_message() -> None:
            self.push_messages += 1

        forwarder = PushForwarder(
            self.sim, self.network,
            store_node, self.executor.server_node, client,
            note=note, gate=gate, deliver=deliver,
            on_withheld=on_withheld, on_message=on_message,
        )
        watch_hook(forwarder.on_change)

    # -- push over the change bus (E20) --------------------------------------------

    def start_push_bus(
        self,
        client: str,
        request: Union[str, Path],
        value_path: str,
        context: RequestContext,
    ) -> SubscriberListener:
        """Subscribe *client* to changes of *value_path* over the
        change bus: deltas coalesce into waves (one round trip per
        wave), every delta re-checks the shield under the subscriber's
        context, and a crashed client resumes from its cursor. Returns
        the attached listener (detach it to unsubscribe)."""
        path = parse_path(request)
        decision = self.server.pep.enforce(path, context)
        if not decision.permit:
            raise AccessDeniedError(
                "subscription denied for %s" % context.requester
            )
        self._subscriber_seq += 1

        def on_delivery(
            value: str, changed_at: float, now: float
        ) -> None:
            self._record_delivery(Delivery("bus", value, changed_at, now))

        def on_withheld(_record: object) -> None:
            self.push_withheld += 1

        listener = SubscriberListener(
            name="push:%s:%d" % (context.requester, self._subscriber_seq),
            node=client,
            pep=self.server.pep,
            request=path,
            watch_path=value_path,
            context=context,
            on_delivery=on_delivery,
            on_withheld=on_withheld,
        )
        self.bus.attach(listener)
        return listener

    # -- reporting -----------------------------------------------------------------

    def deliveries_for(self, mode: str) -> List[Delivery]:
        return [d for d in self.deliveries if d.mode == mode]

    def mean_latency(self, mode: str) -> float:
        """Mean delivery latency over deliveries whose change instant
        is known (NaN when there are none)."""
        picked = [
            d for d in self.deliveries_for(mode)
            if d.changed_at is not None
        ]
        if not picked:
            return float("nan")
        total = math.fsum(d.latency_ms for d in picked)
        return total / len(picked)
