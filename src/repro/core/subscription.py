"""Subscriptions: pull/poll vs GUPster-internal push (paper Section 5.2).

"In the current architecture, GUPster is a reactive (pull-based) not
pro-active (push-based) system. It is always possible to push-enable a
pull-based system using polling, but this may not be very efficient. In
our case, every polling request needs to be checked to enforce the
end-user's privacy shield. Having the subscription handled by GUPster
internally would save this extra work."

:class:`SubscriptionHub` runs both strategies on the event simulator:

* **polling** — the client polls through GUPster at a fixed interval;
  every poll pays a policy check and the full fetch path, and change
  delivery latency averages half the interval.
* **push** — the client subscribes once (one policy check); GUPster
  hooks the store's native change notification and forwards changes as
  they happen; delivery latency is just two hops.

Experiment E12 reads the delivery records and counters.

Accounting (E18 audit): the hub's counters are views over the
network's shared :class:`~repro.obs.MetricsRegistry` (``sub.*``), and
every delivery's latency is observed into the
``sub.delivery_latency_ms`` histogram — so one snapshot/export covers
subscription behaviour alongside net.*, cache.* and health.*.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

from repro.errors import AccessDeniedError, GupsterError, NetworkError
from repro.obs.metrics import CounterView
from repro.pxml import Path, parse_path
from repro.pxml.evaluate import evaluate_values
from repro.access import RequestContext
from repro.core.query import QueryExecutor
from repro.core.server import GupsterServer
from repro.simnet import Network, Simulator

__all__ = ["Delivery", "SubscriptionHub"]


class Delivery:
    """One observed change delivery."""

    __slots__ = ("mode", "value", "changed_at", "delivered_at")

    def __init__(
        self, mode: str, value: str, changed_at: float,
        delivered_at: float,
    ) -> None:
        self.mode = mode
        self.value = value
        self.changed_at = changed_at
        self.delivered_at = delivered_at

    @property
    def latency_ms(self) -> float:
        return self.delivered_at - self.changed_at

    def __repr__(self) -> str:
        return "<Delivery %s %r +%.1fms>" % (
            self.mode, self.value, self.latency_ms,
        )


class SubscriptionHub:
    """Runs polling and push subscriptions over the simulator.

    The message/failure counters live in the network's shared metrics
    registry under ``sub.*`` (the integer attributes are views), and
    every recorded :class:`Delivery` also lands its latency in the
    ``sub.delivery_latency_ms`` histogram."""

    poll_messages = CounterView("sub.poll_messages")
    push_messages = CounterView("sub.push_messages")
    poll_failures = CounterView("sub.poll_failures")

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        server: GupsterServer,
        executor: QueryExecutor,
    ) -> None:
        self.sim = sim
        self.network = network
        self.server = server
        self.executor = executor
        self.deliveries: List[Delivery] = []
        #: The network's shared registry — backing store for the
        #: ``sub.*`` counter views and the delivery-latency histogram.
        self.metrics = network.metrics
        self.metrics.counter(
            "sub.poll_messages",
            help="Network messages spent by polling subscriptions.",
        )
        self.metrics.counter(
            "sub.push_messages",
            help="Network messages spent by push subscriptions.",
        )
        # Polls that failed on network/coverage errors (requirement
        # 13: a flaky store must not kill the polling loop — the next
        # tick simply tries again).
        self.metrics.counter(
            "sub.poll_failures",
            help="Polls lost to transient network/coverage errors.",
        )
        self._latency = self.metrics.histogram(
            "sub.delivery_latency_ms",
            help="Change-delivery latency, both modes (virtual ms).",
        )
        #: value-path -> last value seen by each poller id
        self._poll_state: Dict[int, Optional[str]] = {}
        self._poller_seq = 0
        self._change_log: Dict[str, List[tuple]] = {}

    def _record_delivery(self, delivery: Delivery) -> None:
        """Append *delivery* and observe its latency in the shared
        histogram (stamped at the virtual delivery instant)."""
        self.deliveries.append(delivery)
        self._latency.observe(
            delivery.latency_ms, now=delivery.delivered_at
        )

    # -- change bookkeeping (benches call this when mutating stores) -----------

    def note_change(self, value_path: str, value: str) -> None:
        """Record that the profile value at *value_path* changed now."""
        self._change_log.setdefault(value_path, []).append(
            (self.sim.now, value)
        )

    def _changed_at(self, value_path: str, value: str) -> float:
        """When did the change producing *value* happen?"""
        for when, logged in reversed(
            self._change_log.get(value_path, [])
        ):
            if logged == value:
                return when
        return self.sim.now

    # -- polling ------------------------------------------------------------------

    def start_polling(
        self,
        client: str,
        request: Union[str, Path],
        value_path: str,
        context: RequestContext,
        interval_ms: float,
        until: float,
    ) -> None:
        """Poll *request* via chaining every *interval_ms*; deliver when
        the value at *value_path* (within the fragment) changes."""
        path = parse_path(request)
        self._poller_seq += 1
        poller_id = self._poller_seq
        self._poll_state[poller_id] = None

        def poll() -> None:
            # Every poll is a full policy-checked fetch.
            try:
                fragment, trace = self.executor.chaining(
                    client, path, context, now=self.sim.now
                )
            except AccessDeniedError:
                return
            except (NetworkError, GupsterError):
                # Transient outage (all stores down, lost messages):
                # count it and let the next poll tick try again.
                self.poll_failures += 1
                return
            self.poll_messages += trace.hops
            value = None
            if fragment is not None:
                values = evaluate_values(fragment, value_path)
                value = values[0] if values else None
            previous = self._poll_state[poller_id]
            if value is not None and value != previous:
                self._poll_state[poller_id] = value
                delivered_at = self.sim.now + trace.elapsed_ms
                if previous is not None:  # skip the initial snapshot
                    self._record_delivery(
                        Delivery(
                            "poll", value,
                            self._changed_at(value_path, value),
                            delivered_at,
                        )
                    )

        self.sim.every(interval_ms, poll, until=until)

    # -- push ---------------------------------------------------------------------

    def start_push(
        self,
        client: str,
        request: Union[str, Path],
        value_path: str,
        context: RequestContext,
        watch_hook: Callable[[Callable[[str], None]], None],
        store_node: str,
    ) -> None:
        """Subscribe once; *watch_hook* is called with a callback that
        the native store invokes on each change (e.g. wraps
        ``PresenceServer.watch``). GUPster forwards changes to the
        client as they arrive."""
        path = parse_path(request)
        # One policy check at subscription time (the saving the paper
        # points out).
        decision = self.server.pep.enforce(path, context)
        if not decision.permit:
            raise AccessDeniedError(
                "subscription denied for %s" % context.requester
            )

        def on_change(value: str) -> None:
            changed_at = self.sim.now
            self.note_change(value_path, value)
            # store -> GUPster -> client, each hop at its sampled latency.
            to_gup = self.network.sample_hop(
                store_node, self.executor.server_node, 128
            )
            self.push_messages += 1

            def at_gupster() -> None:
                to_client = self.network.sample_hop(
                    self.executor.server_node, client, 128
                )
                self.push_messages += 1

                def at_client() -> None:
                    self._record_delivery(
                        Delivery("push", value, changed_at, self.sim.now)
                    )

                self.sim.schedule(to_client, at_client)

            self.sim.schedule(to_gup, at_gupster)

        watch_hook(on_change)

    # -- reporting -----------------------------------------------------------------

    def deliveries_for(self, mode: str) -> List[Delivery]:
        return [d for d in self.deliveries if d.mode == mode]

    def mean_latency(self, mode: str) -> float:
        picked = self.deliveries_for(mode)
        if not picked:
            return float("nan")
        return sum(d.latency_ms for d in picked) / len(picked)
