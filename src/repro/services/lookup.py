"""The canonical profile lookup queries (paper requirement 5).

"Most of them are lookup queries like 'retrieve presence information
for Alice', 'retrieve Alice's appointments for today', 'retrieve
Alice's buddies who are available'."

:class:`ProfileLookupService` runs exactly those three query shapes
through GUPster. The buddies query is the interesting one: it spans
*multiple users' profiles* (the caller's buddy list, then each buddy's
presence) — a fan-out the referral architecture handles without joins,
which is the paper's argument for why profile integration is simpler
than general data integration.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import AccessDeniedError, NoCoverageError
from repro.pxml import evaluate, evaluate_values
from repro.access import RequestContext
from repro.core.query import QueryExecutor
from repro.core.server import GupsterServer
from repro.simnet import Trace

__all__ = ["ProfileLookupService"]


class ProfileLookupService:
    """Runs the requirement-5 canonical lookup queries through
    GUPster (presence / today's appointments / available buddies)."""

    def __init__(
        self,
        server: GupsterServer,
        executor: QueryExecutor,
        service_node: str = "client-app",
    ):
        self.server = server
        self.executor = executor
        self.service_node = service_node

    # -- query 1: presence ----------------------------------------------------

    def presence_of(
        self, user_id: str, context: RequestContext, now: float = 0.0
    ) -> Tuple[str, Trace]:
        """'Retrieve presence information for Alice.'"""
        path = "/user[@id='%s']/presence" % user_id
        fragment, trace = self.executor.referral(
            self.service_node, path, context, now
        )
        values = (
            evaluate_values(fragment, "/user/presence/status")
            if fragment is not None else []
        )
        return (values[0] if values else "offline"), trace

    # -- query 2: today's appointments -------------------------------------------

    def appointments_on(
        self,
        user_id: str,
        date: str,
        context: RequestContext,
        now: float = 0.0,
    ) -> Tuple[List[Tuple[str, str]], Trace]:
        """'Retrieve Alice's appointments for today' — *date* is the
        ``YYYY-MM-DD`` day; returns (start, subject) pairs."""
        path = "/user[@id='%s']/calendar" % user_id
        fragment, trace = self.executor.referral(
            self.service_node, path, context, now
        )
        picked: List[Tuple[str, str]] = []
        if fragment is not None:
            for appt in evaluate(
                fragment, "/user/calendar/appointment"
            ):
                start_el = appt.child("start")
                start = (
                    start_el.text
                    if start_el is not None and start_el.text else ""
                )
                if not start.startswith(date):
                    continue
                subject_el = appt.child("subject")
                picked.append(
                    (start,
                     subject_el.text
                     if subject_el is not None and subject_el.text
                     else "")
                )
        picked.sort()
        return picked, trace

    # -- query 3: available buddies -------------------------------------------------

    def available_buddies(
        self,
        user_id: str,
        context: RequestContext,
        now: float = 0.0,
    ) -> Tuple[List[Tuple[str, str]], Trace]:
        """'Retrieve Alice's buddies who are available' — fetch the
        buddy list, then each buddy's presence in parallel, filtered by
        each buddy's own privacy shield (a buddy whose shield denies
        the caller simply doesn't appear available)."""
        trace = self.executor.network.trace()
        list_path = "/user[@id='%s']/buddy-list" % user_id
        fragment, list_trace = self.executor.referral(
            self.service_node, list_path, context, now
        )
        trace.join([list_trace])
        if fragment is None:
            return [], trace
        buddies: List[Tuple[str, str]] = []
        for buddy in evaluate(fragment, "/user/buddy-list/buddy"):
            alias_el = buddy.child("alias")
            buddies.append(
                (buddy.attrs.get("id", ""),
                 alias_el.text
                 if alias_el is not None and alias_el.text else "")
            )
        available: List[Tuple[str, str]] = []
        branches = []
        for buddy_id, alias in buddies:
            branch = trace.fork()
            buddy_context = RequestContext(
                context.requester,
                relationship="buddy",
                purpose=context.purpose,
                hour=context.hour,
                weekday=context.weekday,
            )
            try:
                presence, buddy_trace = self._buddy_presence(
                    buddy_id, buddy_context, now
                )
            except (AccessDeniedError, NoCoverageError):
                continue
            branch.join([buddy_trace])
            branches.append(branch)
            if presence == "available":
                available.append((buddy_id, alias))
        trace.join(branches)
        return available, trace

    def _buddy_presence(
        self, buddy_id: str, context: RequestContext, now: float
    ) -> Tuple[Optional[str], Trace]:
        path = "/user[@id='%s']/presence" % buddy_id
        fragment, buddy_trace = self.executor.referral(
            self.service_node, path, context, now
        )
        values = (
            evaluate_values(fragment, "/user/presence/status")
            if fragment is not None else []
        )
        return (values[0] if values else None), buddy_trace
