"""Profile portability: switching carriers without losing your data
(paper Section 2.1: Alice should be able to "keep her personal data and
preferences if she decides to switch from SprintPCS to AT&T").

With GUPster the move is mechanical: every component the old carrier
registered for the user is fetched (one last time), written into the
new carrier's GUP-enabled store, re-registered, and the old
registrations dropped. The report shows what moved and what could not
(components the new store does not support — the lock-in residue).
"""

from __future__ import annotations

from typing import List

from repro.adapters.base import GupAdapter
from repro.core.server import GupsterServer
from repro.pxml import Path

__all__ = ["PortabilityReport", "CarrierPortabilityService"]


class PortabilityReport:
    """What a carrier switch moved, and what could not move."""

    def __init__(self, user_id: str, source: str, target: str):
        self.user_id = user_id
        self.source = source
        self.target = target
        self.moved: List[str] = []
        self.unsupported: List[str] = []
        self.retained_elsewhere: List[str] = []

    def __repr__(self) -> str:
        return (
            "<PortabilityReport %s %s->%s moved=%d unsupported=%d>"
            % (self.user_id, self.source, self.target,
               len(self.moved), len(self.unsupported))
        )


class CarrierPortabilityService:
    """Moves a user's components from one carrier's store to
    another, updating coverage registrations."""

    def __init__(self, server: GupsterServer):
        self.server = server

    def port_user(
        self,
        user_id: str,
        source_store_id: str,
        target_adapter: GupAdapter,
        drop_source: bool = True,
    ) -> PortabilityReport:
        """Move every component the source store holds for *user_id*
        into *target_adapter*'s store, updating coverage."""
        report = PortabilityReport(
            user_id, source_store_id, target_adapter.store_id
        )
        source_adapter = self.server.adapters.get(source_store_id)
        if source_adapter is None:
            raise KeyError("unknown store %r" % source_store_id)
        if target_adapter.store_id not in self.server.adapters:
            self.server.adapters[target_adapter.store_id] = (
                target_adapter
            )

        registered: List[Path] = [
            path
            for path in self.server.coverage.paths_for_user(user_id)
            if source_store_id in self.server.coverage.stores_for(path)
        ]
        for path in registered:
            component = path.steps[1].name
            other_holders = [
                store
                for store in self.server.coverage.stores_for(path)
                if store != source_store_id
            ]
            if component not in target_adapter.COMPONENTS:
                report.unsupported.append(str(path))
                if other_holders:
                    report.retained_elsewhere.append(str(path))
                continue
            fragment = source_adapter.get(path)
            if fragment is not None:
                target_adapter.put(path.prefix(2), fragment)
                self.server.coverage.register(
                    path, target_adapter.store_id
                )
                report.moved.append(str(path))
            if drop_source:
                self.server.coverage.unregister(path, source_store_id)
        return report
