"""Selective reach-me (paper Example 2, Section 2.2).

"The selective reach-me service permits the network to optimally route
a call ... to reach Alice. To do so, the service needs to aggregate
information for all the networks Alice is in contact with" — location
and on/off air from wireless, call status from the PSTN, presence from
the internet, call status from VoIP, calendar from the portal or
intranet, and the device list.

The service gathers that state through GUPster (one parallel fan-out),
then evaluates user-provisioned routing rules. The paper's example
rules ship as :func:`paper_rules`:

* working hours + presence "available" (verified with IM): office
  phone first, then soft phone;
* 8-9am and 6-7pm commute: cell phone;
* Fridays working from home: home phone.

Requirement: "the access and processing of the disparate and
distributed data must have fast response time, so that a selective
reach-me decision can be rendered in just a few seconds" — experiment
E4 measures exactly this.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.errors import NoCoverageError, AccessDeniedError
from repro.pxml import PNode, evaluate_values
from repro.access import RequestContext
from repro.core.query import QueryExecutor
from repro.core.server import GupsterServer
from repro.simnet import Trace

__all__ = [
    "ReachMeState", "RoutingRule", "RoutingDecision", "ReachMeService",
    "paper_rules",
]


class ReachMeState:
    """The aggregated cross-network view of one user, right now."""

    def __init__(self):
        self.presence: str = "offline"
        self.on_air: bool = False
        self.location_zone: Optional[str] = None
        self.pstn_status: Optional[str] = None       # idle | busy
        self.voip_status: Optional[str] = None       # online | offline
        self.internet_online: bool = False           # ISP session up
        self.in_meeting: bool = False
        self.devices: List[str] = []                 # device types
        self.hour: int = 12
        self.weekday: int = 0

    def is_working_hours(self) -> bool:
        return self.weekday < 5 and 9 <= self.hour < 18

    def is_commute(self) -> bool:
        return self.weekday < 5 and (
            8 <= self.hour < 9 or 18 <= self.hour < 19
        )

    def __repr__(self) -> str:
        return (
            "<ReachMeState presence=%s on_air=%s pstn=%s voip=%s "
            "meeting=%s %02d:00 wd=%d>"
            % (self.presence, self.on_air, self.pstn_status,
               self.voip_status, self.in_meeting, self.hour,
               self.weekday)
        )


class RoutingRule:
    """If *condition* holds over the state, try *targets* in order."""

    def __init__(
        self,
        name: str,
        condition: Callable[[ReachMeState], bool],
        targets: List[str],
    ):
        self.name = name
        self.condition = condition
        self.targets = list(targets)

    def __repr__(self) -> str:
        return "<RoutingRule %s -> %s>" % (self.name, self.targets)


class RoutingDecision:
    """The service's answer: where to route, and what it cost."""

    def __init__(
        self,
        targets: List[str],
        rule_name: str,
        state: ReachMeState,
        trace: Trace,
        sources_used: int,
    ):
        self.targets = targets
        self.rule_name = rule_name
        self.state = state
        self.trace = trace
        self.sources_used = sources_used

    @property
    def first_target(self) -> Optional[str]:
        return self.targets[0] if self.targets else None

    def __repr__(self) -> str:
        return "<RoutingDecision %s via %r (%.1f ms)>" % (
            self.targets, self.rule_name, self.trace.elapsed_ms,
        )


def paper_rules() -> List[RoutingRule]:
    """The Section 2.2 example rule set, in order of priority."""
    return [
        RoutingRule(
            "friday-home",
            lambda s: s.weekday == 4 and 9 <= s.hour < 18,
            ["home-phone", "cell-phone"],
        ),
        RoutingRule(
            "commute-cell",
            lambda s: s.is_commute() and s.on_air,
            ["cell-phone"],
        ),
        RoutingRule(
            "office-when-available",
            lambda s: (
                s.is_working_hours()
                and s.presence == "available"
                and not s.in_meeting
            ),
            ["office-phone", "softphone"],
        ),
        RoutingRule(
            "meeting-or-busy",
            lambda s: s.is_working_hours()
            and (s.in_meeting or s.presence == "busy"),
            ["voicemail"],
        ),
        RoutingRule(
            "reachable-on-cell",
            lambda s: s.on_air,
            ["cell-phone", "voicemail"],
        ),
        # "When she is near a WiFi hot-spot she can be reached on her
        # laptop via email, IM, and VoIP" (Section 2.2).
        RoutingRule(
            "online-off-hours",
            lambda s: (
                s.internet_online
                and s.presence == "available"
                and not s.is_working_hours()
            ),
            ["im", "email"],
        ),
        RoutingRule("fallback", lambda s: True, ["voicemail"]),
    ]


class ReachMeService:
    """Aggregates profile state via GUPster and routes calls."""

    #: (component, applier) pairs the service aggregates.
    SOURCES = ("presence", "location", "call-status", "calendar",
               "devices")

    def __init__(
        self,
        server: GupsterServer,
        executor: QueryExecutor,
        service_node: str = "reachme-service",
        rules: Optional[List[RoutingRule]] = None,
    ):
        self.server = server
        self.executor = executor
        self.service_node = service_node
        self.rules = rules if rules is not None else paper_rules()
        self.decisions = 0

    # -- state aggregation ---------------------------------------------------------

    def gather_state(
        self,
        user_id: str,
        hour: int,
        weekday: int,
        now: float = 0.0,
        use_cache: bool = False,
    ) -> Tuple[ReachMeState, Trace, int]:
        """Fetch every available source in parallel and fold into a
        :class:`ReachMeState`. Missing components are skipped (not
        every user has every network). Returns (state, trace, sources
        actually reached)."""
        state = ReachMeState()
        state.hour = hour
        state.weekday = weekday
        # The service acts on the user's behalf (it is *their* reach-me
        # provisioning) — so it runs with owner authority.
        context = RequestContext(
            user_id, relationship="self",
            purpose="cache" if use_cache else "query",
            hour=hour, weekday=weekday,
        )
        trace = self.executor.network.trace()
        branches = []
        fragments: List[Tuple[str, Optional[PNode]]] = []
        reached = 0
        for component in self.SOURCES:
            path = "/user[@id='%s']/%s" % (user_id, component)
            branch = trace.fork()
            try:
                if use_cache:
                    fragment, sub_trace, _hit = self.executor.cached(
                        self.service_node, path, context, now
                    )
                else:
                    fragment, sub_trace = self.executor.referral(
                        self.service_node, path, context, now
                    )
            except (NoCoverageError, AccessDeniedError):
                continue
            branch.join([sub_trace])
            branches.append(branch)
            fragments.append((component, fragment))
            reached += 1
        trace.join(branches)
        for component, fragment in fragments:
            if fragment is not None:
                self._apply(state, component, fragment)
        return state, trace, reached

    def _apply(
        self, state: ReachMeState, component: str, fragment: PNode
    ) -> None:
        if component == "presence":
            values = evaluate_values(fragment, "/user/presence/status")
            if values:
                state.presence = values[0]
        elif component == "location":
            on_air = evaluate_values(fragment, "/user/location/on-air")
            if on_air:
                state.on_air = on_air[0] == "true"
            zones = evaluate_values(fragment, "/user/location/zone")
            if zones:
                state.location_zone = zones[0]
        elif component == "call-status":
            from repro.pxml import evaluate
            for status_el in evaluate(fragment, "/user/call-status"):
                network = status_el.attrs.get("network")
                state_el = status_el.child("state")
                value = (
                    state_el.text
                    if state_el is not None and state_el.text else ""
                )
                if network == "pstn":
                    state.pstn_status = value
                elif network == "voip":
                    state.voip_status = (
                        "online" if value == "online" else "offline"
                    )
                elif network == "internet":
                    state.internet_online = value == "online"
        elif component == "calendar":
            starts = evaluate_values(
                fragment, "/user/calendar/appointment/start"
            )
            ends = evaluate_values(
                fragment, "/user/calendar/appointment/end"
            )
            for start, end in zip(starts, ends):
                start_hour = _hour_of(start)
                end_hour = _hour_of(end)
                if (
                    start_hour is not None and end_hour is not None
                    and start_hour <= state.hour < end_hour
                ):
                    state.in_meeting = True
        elif component == "devices":
            state.devices = evaluate_values(
                fragment, "/user/devices/device/@type"
            )

    # -- routing ------------------------------------------------------------------

    def decide(
        self,
        user_id: str,
        hour: int,
        weekday: int,
        now: float = 0.0,
        use_cache: bool = False,
    ) -> RoutingDecision:
        """Aggregate, evaluate the rules, adapt to live availability."""
        self.decisions += 1
        state, trace, reached = self.gather_state(
            user_id, hour, weekday, now, use_cache
        )
        for rule in self.rules:
            if rule.condition(state):
                targets = self._filter_targets(rule.targets, state)
                if targets:
                    return RoutingDecision(
                        targets, rule.name, state, trace, reached
                    )
        return RoutingDecision(
            ["voicemail"], "fallback", state, trace, reached
        )

    @staticmethod
    def _filter_targets(
        targets: List[str], state: ReachMeState
    ) -> List[str]:
        """Drop targets the live state says are pointless."""
        kept = []
        for target in targets:
            if target == "office-phone" and state.pstn_status == "busy":
                continue
            if target == "softphone" and state.voip_status == "offline":
                continue
            if target == "cell-phone" and not state.on_air:
                continue
            if (
                target in ("im", "email")
                and not state.internet_online
            ):
                continue
            kept.append(target)
        return kept


def _hour_of(stamp: str) -> Optional[int]:
    if "T" in stamp:
        try:
            return int(stamp.split("T")[1][:2])
        except (ValueError, IndexError):
            return None
    return None
