"""Roaming profile service (paper Example 1, Section 2.1).

Alice's pains, made runnable:

* access her corporate calendar while traveling in Europe
  (:meth:`fetch_while_roaming` — the client node sits on a high-latency
  wireless link, everything still flows through one GUPster request);
* share her address book among SprintPCS, Vodafone and Yahoo!
  (:meth:`synchronize_address_book` — device book ↔ the merged network
  book, via the SyncML session with a chosen reconciliation policy).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import NoCoverageError
from repro.pxml import PNode
from repro.access import RequestContext
from repro.core.query import QueryExecutor
from repro.core.server import GupsterServer
from repro.simnet import Trace
from repro.sync import Reconciler, SyncEndpoint, SyncReport, SyncSession

__all__ = ["RoamingProfileService"]


class RoamingProfileService:
    """The Example 1 operations: fetch any component while
    roaming, and synchronize the device book with the network."""

    def __init__(
        self, server: GupsterServer, executor: QueryExecutor
    ):
        self.server = server
        self.executor = executor
        #: (user, device adapter id) -> persistent sync session
        self._sessions: Dict[Tuple[str, str], SyncSession] = {}

    # -- cross-network reads ---------------------------------------------------

    def fetch_while_roaming(
        self,
        user_id: str,
        component: str,
        roaming_node: str,
        now: float = 0.0,
    ) -> Tuple[Optional[PNode], Trace]:
        """Fetch any profile component from wherever Alice is.

        The point of the example: the *same* request works from a
        European wireless link as from the office LAN — only the
        latency differs."""
        path = "/user[@id='%s']/%s" % (user_id, component)
        context = RequestContext(user_id, relationship="self")
        return self.executor.referral(roaming_node, path, context, now)

    # -- device <-> network synchronization --------------------------------------

    def synchronize_address_book(
        self,
        user_id: str,
        device_adapter_id: str,
        policy: Optional[str] = None,
        now: float = 0.0,
    ) -> Tuple[SyncReport, Trace]:
        """Two-way sync between the user's device book and the merged
        network book, then write both sides back through GUPster.

        Returns the protocol report plus the network trace of moving
        the sync messages over the (wireless) link."""
        device_adapter = self.server.adapters[device_adapter_id]
        path = "/user[@id='%s']/address-book" % user_id
        if policy is None:
            # The user's reconciliation policy is re-ified schema
            # metadata (requirement 8): read it from the adjunct when
            # the server carries one.
            if self.server.adjunct is not None:
                policy = self.server.adjunct.property_for(
                    path, "reconcile", default="merge"
                )
            else:
                policy = "merge"

        # Load both replicas into sync endpoints.
        device_endpoint = self._endpoint_from(
            device_adapter.get(path), "device:" + device_adapter_id, now
        )
        context = RequestContext(user_id, relationship="self")
        try:
            network_view, _fetch_trace = self.executor.chaining(
                self.server.name, path, context, now
            )
        except NoCoverageError:
            network_view = None
        network_endpoint = self._endpoint_from(
            network_view, "network:" + user_id, now
        )

        # The roaming bridge rebuilds its endpoints from the stores on
        # every invocation, so per-item change tracking does not
        # survive between calls — which in SyncML terms means the
        # anchors cannot match: every bridge-mediated sync is honestly
        # a slow sync (snapshot comparison with skip-identical).
        # Device-resident sync clients that keep their logs use
        # SyncSession directly and get fast syncs (see E8).
        key = (user_id, device_adapter_id)
        session = SyncSession(
            device_endpoint, network_endpoint, Reconciler(policy)
        )
        self._sessions[key] = session
        report = session.run(now)

        # Ship the sync messages over the wireless link.
        trace = self.executor.network.trace()
        trace.round_trip(
            device_adapter_id, self.server.name,
            report.bytes // 2, report.bytes - report.bytes // 2,
            "syncml session",
        )

        # Write back: device side directly, network side enter-once.
        device_adapter.put(path, device_endpoint.snapshot())
        update_context = RequestContext(
            user_id, relationship="self", purpose="provision"
        )
        try:
            self.executor.provision(
                self.server.name, path,
                network_endpoint.snapshot(), update_context, now,
            )
        except NoCoverageError:
            pass
        return report, trace

    @staticmethod
    def _endpoint_from(
        view: Optional[PNode], name: str, now: float
    ) -> SyncEndpoint:
        endpoint = SyncEndpoint(name)
        if view is not None:
            book = (
                view.child("address-book")
                if view.tag == "user" else view
            )
            if book is not None:
                endpoint.load_snapshot(book, now)
        return endpoint
