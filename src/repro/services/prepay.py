"""Pre-paid billing (the "Pre-Pay" service inside the WSP, Figure 1).

The paper lists pre-pay as a canonical converged service hosted by the
wireless operator, and billing models ("pre-paid vs. post-paid") among
the profile data converged services must see. This service:

* keeps prepaid balances and a rated call ledger;
* screens call delivery — a prepaid subscriber with an empty balance
  is blocked *before* the HLR routing result is used;
* exposes the billing slice as a GUP ``services`` component through
  :class:`PrepayAdapter`, so third-party applications (and the user's
  self-care portal) read balance like any other profile data;
* fires a low-balance notification hook (the push path a top-up
  reminder service would subscribe to).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.errors import StoreError
from repro.pxml import PNode
from repro.adapters.base import GupAdapter

if TYPE_CHECKING:  # type-only: services never touch stores at runtime
    from repro.stores.hlr import HLR, MSC

__all__ = ["RatePlan", "PrePayService", "PrepayAdapter"]


class RatePlan:
    """Per-minute rates (cents) by network type."""

    def __init__(self, rates: Optional[Dict[str, int]] = None):
        self.rates = dict(rates or {
            "wireless": 10, "pstn": 5, "voip": 2,
        })

    def rate_for(self, network: str) -> int:
        if network not in self.rates:
            raise StoreError("no rate for network %r" % network)
        return self.rates[network]

    def charge(self, network: str, minutes: int) -> int:
        if minutes < 0:
            raise ValueError("negative call duration")
        return self.rate_for(network) * minutes


class PrePayService:
    """Balance management + call screening for prepaid subscribers."""

    def __init__(
        self,
        hlr: HLR,
        rates: Optional[RatePlan] = None,
        low_balance_cents: int = 100,
        on_low_balance: Optional[Callable[[str, int], None]] = None,
    ):
        self.hlr = hlr
        self.rates = rates if rates is not None else RatePlan()
        self.low_balance_cents = low_balance_cents
        self.on_low_balance = on_low_balance
        self._balances: Dict[str, int] = {}
        #: user -> [(network, minutes, cents)]
        self._ledger: Dict[str, List[Tuple[str, int, int]]] = {}
        self.calls_blocked = 0

    # -- account management ----------------------------------------------------

    def open_account(
        self, user_id: str, initial_cents: int = 0
    ) -> None:
        if user_id in self._balances:
            raise StoreError("prepaid account %r exists" % user_id)
        record = self.hlr.subscriber_by_user(user_id)
        record.prepaid = True
        self._balances[user_id] = initial_cents
        self._ledger[user_id] = []

    def has_account(self, user_id: str) -> bool:
        return user_id in self._balances

    def account_ids(self) -> List[str]:
        return sorted(self._balances)

    def balance(self, user_id: str) -> int:
        if user_id not in self._balances:
            raise StoreError("no prepaid account %r" % user_id)
        return self._balances[user_id]

    def top_up(self, user_id: str, cents: int) -> int:
        if cents <= 0:
            raise ValueError("top-up must be positive")
        self.balance(user_id)  # existence check
        self._balances[user_id] += cents
        return self._balances[user_id]

    def ledger(self, user_id: str) -> List[Tuple[str, int, int]]:
        return list(self._ledger.get(user_id, ()))

    # -- rating ---------------------------------------------------------------

    def affordable_minutes(self, user_id: str, network: str) -> int:
        rate = self.rates.rate_for(network)
        return self.balance(user_id) // rate if rate else 0

    def record_call(
        self, user_id: str, network: str, minutes: int
    ) -> int:
        """Debit a completed call; returns the remaining balance."""
        cost = self.rates.charge(network, minutes)
        balance = self.balance(user_id)
        if cost > balance:
            cost = balance  # the switch cuts the call at zero
        self._balances[user_id] = balance - cost
        self._ledger[user_id].append((network, minutes, cost))
        remaining = self._balances[user_id]
        if (
            remaining < self.low_balance_cents
            and self.on_low_balance is not None
        ):
            self.on_low_balance(user_id, remaining)
        return remaining

    # -- call screening (the converged-service integration) ----------------------

    def screened_delivery(
        self, msc: MSC, caller: str, callee_msisdn: str
    ) -> str:
        """Call delivery with prepaid screening: the paper's point that
        billing data participates in call handling."""
        record = self.hlr.subscriber(callee_msisdn)
        if record.prepaid and self.has_account(record.user_id):
            if self.affordable_minutes(record.user_id, "wireless") < 1:
                self.calls_blocked += 1
                return "prepaid-blocked"
        return msc.deliver_call(caller, callee_msisdn)


class PrepayAdapter(GupAdapter):
    """Exposes the prepaid balance as the GUP <wallet> component."""

    COMPONENTS = ("wallet",)

    def __init__(self, store_id: str, service: PrePayService):
        super().__init__(store_id, region="core")
        self.service = service

    def users(self) -> List[str]:
        return sorted(
            user for user in self.service.account_ids()
        )

    def export_user(self, user_id: str) -> Optional[PNode]:
        if not self.service.has_account(user_id):
            return None
        root = self._user_root(user_id)
        wallet = root.append(PNode("wallet"))
        wallet.append(
            PNode(
                "account",
                {
                    "id": "prepaid",
                    "bank": self.service.hlr.carrier,
                    "balance": str(self.service.balance(user_id)),
                    "currency": "USD-cents",
                },
            )
        )
        return root
