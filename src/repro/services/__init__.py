"""Converged services built on GUPster: selective reach-me (Example 2),
the roaming profile (Example 1), and carrier portability."""

from repro.services.lookup import ProfileLookupService
from repro.services.prepay import (
    PrepayAdapter,
    PrePayService,
    RatePlan,
)
from repro.services.portability import (
    CarrierPortabilityService,
    PortabilityReport,
)
from repro.services.reachme import (
    ReachMeService,
    ReachMeState,
    RoutingDecision,
    RoutingRule,
    paper_rules,
)
from repro.services.roaming import RoamingProfileService

__all__ = [
    "ReachMeService",
    "ReachMeState",
    "RoutingRule",
    "RoutingDecision",
    "paper_rules",
    "RoamingProfileService",
    "CarrierPortabilityService",
    "PortabilityReport",
    "PrePayService", "PrepayAdapter", "RatePlan",
    "ProfileLookupService",
]
