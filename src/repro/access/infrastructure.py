"""The policy infrastructure roles of Figure 10.

* :class:`PolicyRepository` — the PRP, "in charge of storing policies".
* :class:`PolicyAdministrationPoint` — the PAP, "in charge of
  provisioning the rules ... and other administrative tasks (e.g.,
  checking that the rules are valid)".
* :class:`PolicyEnforcementPoint` — the PEP, "in charge of asking for a
  decision and enforcing it".

In the basic GUPster deployment one server plays PAP + PRP + PDP + PEP
(Section 4.6). The roles are separate classes precisely so experiment
E5 can also assemble the *alternative* the paper argues against —
per-store policy replicas that must be kept in sync — and measure the
difference.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.errors import PolicyError
from repro.pxml import Path, parse_path
from repro.access.context import RequestContext
from repro.access.policy import (
    Decision,
    PolicyDecisionPoint,
    PolicyRule,
)

__all__ = [
    "PolicyRepository",
    "PolicyAdministrationPoint",
    "PolicyEnforcementPoint",
]


class PolicyRepository:
    """Stores each user's privacy-shield rules (the PRP).

    A monotone ``revision`` stamps every change so replicas can sync
    incrementally: ``changes_since(revision)`` is the replication feed.
    """

    def __init__(self, name: str = "prp"):
        self.name = name
        self._rules: Dict[str, Dict[str, PolicyRule]] = {}
        self.revision = 0
        self._changelog: List[tuple] = []  # (revision, op, owner, rule)

    def _bump(self, op: str, owner: str, rule: PolicyRule) -> None:
        self.revision += 1
        self._changelog.append((self.revision, op, owner, rule))

    def store(self, rule: PolicyRule) -> None:
        bucket = self._rules.setdefault(rule.owner, {})
        existing = bucket.get(rule.rule_id)
        if existing is not None:
            rule.version = existing.version + 1
        bucket[rule.rule_id] = rule
        self._bump("store", rule.owner, rule)

    def remove(self, owner: str, rule_id: str) -> None:
        bucket = self._rules.get(owner, {})
        rule = bucket.pop(rule_id, None)
        if rule is None:
            raise PolicyError("no rule %r for %r" % (rule_id, owner))
        self._bump("remove", owner, rule)

    def rules_for(self, owner: str) -> List[PolicyRule]:
        return list(self._rules.get(owner, {}).values())

    def rule_count(self) -> int:
        return sum(len(bucket) for bucket in self._rules.values())

    def owners(self) -> List[str]:
        return sorted(self._rules)

    # -- replication (the cost E5 measures) -----------------------------------

    def changes_since(self, revision: int) -> List[tuple]:
        return [c for c in self._changelog if c[0] > revision]

    def apply_changes(self, changes: Sequence[tuple]) -> int:
        """Apply a replication feed; returns entries applied."""
        applied = 0
        for revision, op, owner, rule in changes:
            if revision <= self.revision:
                continue
            if op == "store":
                self._rules.setdefault(owner, {})[rule.rule_id] = rule
            else:
                self._rules.get(owner, {}).pop(rule.rule_id, None)
            self.revision = revision
            self._changelog.append((revision, op, owner, rule))
            applied += 1
        return applied


class PolicyAdministrationPoint:
    """Validates and provisions rules (the PAP).

    Validation is the "checking that the rules are valid" duty: the
    target must parse in the GUPster fragment, and a user may only
    administer rules over *their own* profile subtree.
    """

    def __init__(self, repository: PolicyRepository):
        self.repository = repository
        self.provisioned = 0
        self.rejected = 0

    def provision_rule(
        self, acting_user: str, rule: PolicyRule
    ) -> PolicyRule:
        if rule.owner != acting_user:
            self.rejected += 1
            raise PolicyError(
                "%r cannot provision rules for %r"
                % (acting_user, rule.owner)
            )
        target_owner = rule.target.user_id()
        if target_owner is not None and target_owner != acting_user:
            self.rejected += 1
            raise PolicyError(
                "rule target %s is not %r's data"
                % (rule.target, acting_user)
            )
        self.repository.store(rule)
        self.provisioned += 1
        return rule

    def revoke_rule(self, acting_user: str, rule_id: str) -> None:
        owned = {
            rule.rule_id for rule in
            self.repository.rules_for(acting_user)
        }
        if rule_id not in owned:
            self.rejected += 1
            raise PolicyError(
                "%r owns no rule %r" % (acting_user, rule_id)
            )
        self.repository.remove(acting_user, rule_id)

    def list_rules(self, acting_user: str) -> List[PolicyRule]:
        return self.repository.rules_for(acting_user)


class PolicyEnforcementPoint:
    """Asks the PDP and enforces the outcome (the PEP).

    ``enforce`` either returns the decision (with the rewrite set for
    the caller to act on) or raises — callers choose via ``raising``.
    """

    def __init__(
        self,
        repository: PolicyRepository,
        pdp: Optional[PolicyDecisionPoint] = None,
    ):
        self.repository = repository
        self.pdp = pdp if pdp is not None else PolicyDecisionPoint()
        self.enforced = 0
        self.denied = 0

    def enforce(
        self,
        request: Union[str, Path],
        context: RequestContext,
    ) -> Decision:
        request_path = parse_path(request)
        owner = request_path.user_id()
        if owner is None:
            raise PolicyError(
                "request %s does not identify a profile owner"
                % request_path
            )
        self.enforced += 1
        # The owner always has full access to their own data.
        if (
            context.requester == owner
            and context.relationship == "self"
        ):
            return Decision(True, [request_path], ["owner access"])
        rules = self.repository.rules_for(owner)
        decision = self.pdp.decide(rules, request_path, context)
        if not decision.permit:
            self.denied += 1
        return decision
