"""The request context — the half of a GUPster request that XACML lacks.

Paper Section 4.6: "a request consists of two facets: a context and a
path. ... The context provides some information about the context of
the request, i.e. identity of the requester (e.g., third party
application, end user, etc.), purpose of the request (e.g., plain
request, caching request, subscription-based request, etc.). We
envision the context to be an XML document as well, defined using a
request context schema."

And Section 6: "the notion of request context in XACML is too limited
(restricted to principals)". This module is the extension the paper
sketches: requester identity, the requester's *relationship* to the
profile owner (co-worker / family / boss — the example policies need
it), the purpose, and the request time (the "during working hours"
policies need it).

Contexts serialize to/from XML per the context schema, as the paper
requires.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import PolicyError
from repro.pxml import PNode

__all__ = ["RequestContext", "PURPOSES", "RELATIONSHIPS"]

PURPOSES = ("query", "cache", "subscribe", "provision")

RELATIONSHIPS = (
    "self", "family", "boss", "co-worker", "buddy", "third-party",
    "anonymous",
)


class RequestContext:
    """Who is asking, in what capacity, why, and when."""

    __slots__ = ("requester", "relationship", "purpose", "hour", "weekday")

    def __init__(
        self,
        requester: str,
        relationship: str = "third-party",
        purpose: str = "query",
        hour: int = 12,
        weekday: int = 0,
    ):
        if relationship not in RELATIONSHIPS:
            raise PolicyError("unknown relationship %r" % relationship)
        if purpose not in PURPOSES:
            raise PolicyError("unknown purpose %r" % purpose)
        if not 0 <= hour <= 23:
            raise PolicyError("hour must be 0..23")
        if not 0 <= weekday <= 6:
            raise PolicyError("weekday must be 0..6 (Monday=0)")
        self.requester = requester
        self.relationship = relationship
        self.purpose = purpose
        self.hour = hour
        self.weekday = weekday

    # -- derived -------------------------------------------------------------

    def is_working_hours(self) -> bool:
        """The 9am-6pm weekday window the paper's policies reference."""
        return self.weekday < 5 and 9 <= self.hour < 18

    def at(self, hour: int, weekday: Optional[int] = None):
        """A copy of this context at a different time."""
        return RequestContext(
            self.requester,
            self.relationship,
            self.purpose,
            hour,
            self.weekday if weekday is None else weekday,
        )

    def cache_scope(self) -> str:
        """Privacy-cache partition key for this requester.

        The privacy shield rewrites each request to the requester's
        permitted slice, so a cached fragment is only valid for
        requesters whose shield evaluation could have produced it.
        Identity + relationship determine every rule the paper's
        policies can apply (time-of-day rules are additionally bounded
        by the entry TTL), so they form the cache partition."""
        return "%s|%s" % (self.requester, self.relationship)

    # -- XML (the request context schema) ----------------------------------------

    def to_xml(self) -> PNode:
        root = PNode("context")
        root.append(PNode("requester", text=self.requester))
        root.append(PNode("relationship", text=self.relationship))
        root.append(PNode("purpose", text=self.purpose))
        when = root.append(PNode("when"))
        when.attrs["hour"] = str(self.hour)
        when.attrs["weekday"] = str(self.weekday)
        return root

    @classmethod
    def from_xml(cls, node: PNode) -> "RequestContext":
        if node.tag != "context":
            raise PolicyError("not a context document")

        def text_of(tag: str, default: str) -> str:
            child = node.child(tag)
            return (
                child.text if child is not None and child.text
                else default
            )

        when = node.child("when")
        hour = int(when.attrs.get("hour", "12")) if when is not None else 12
        weekday = (
            int(when.attrs.get("weekday", "0")) if when is not None else 0
        )
        return cls(
            text_of("requester", "anonymous"),
            text_of("relationship", "third-party"),
            text_of("purpose", "query"),
            hour,
            weekday,
        )

    def byte_size(self) -> int:
        """Wire size when attached to a request."""
        return self.to_xml().byte_size()

    def __repr__(self) -> str:
        return (
            "<RequestContext %s (%s) purpose=%s %02d:00 wd=%d>"
            % (self.requester, self.relationship, self.purpose,
               self.hour, self.weekday)
        )
