"""The privacy-shield policy language.

A policy rule says: for profile data under *target* (an XPath-fragment
path), when the request *condition* holds over the context, *permit* or
*deny*. The paper's running examples all fit this shape:

    "any co-worker can access my presence information during
    working-hours; my boss and my family can access my presence
    information at any time; my family can access my personal address
    book and calendar."

Conditions are composable predicates over :class:`RequestContext`
(XACML-style combinators, but over the *extended* context). Evaluation
semantics are deny-overrides with default-deny: a request region is
granted only if some permit rule covers it and no applicable deny rule
overlaps it — the conservative reading, so the shield never over-grants.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.errors import PolicyError
from repro.pxml import Path, parse_path
from repro.pxml.containment import (
    intersect_regions,
    subtree_covers,
    subtree_overlaps,
)
from repro.access.context import RequestContext

__all__ = [
    "Condition", "always", "requester_is", "relationship_in",
    "purpose_in", "hour_between", "weekday_in", "working_hours",
    "all_of", "any_of", "negate",
    "PolicyRule", "Decision", "PolicyDecisionPoint",
]


# ---------------------------------------------------------------------------
# Conditions
# ---------------------------------------------------------------------------

class Condition:
    """A named predicate over the request context."""

    def __init__(
        self, description: str, test: Callable[[RequestContext], bool]
    ):
        self.description = description
        self._test = test

    def holds(self, context: RequestContext) -> bool:
        return self._test(context)

    def __repr__(self) -> str:
        return "<Condition %s>" % self.description


def always() -> Condition:
    """A condition that is always true."""
    return Condition("always", lambda ctx: True)


def requester_is(*requesters: str) -> Condition:
    """True when the requester id is one of *requesters*."""
    allowed = frozenset(requesters)
    return Condition(
        "requester in %s" % sorted(allowed),
        lambda ctx: ctx.requester in allowed,
    )


def relationship_in(*relationships: str) -> Condition:
    """True when the requester's relationship is listed."""
    allowed = frozenset(relationships)
    return Condition(
        "relationship in %s" % sorted(allowed),
        lambda ctx: ctx.relationship in allowed,
    )


def purpose_in(*purposes: str) -> Condition:
    """True when the request purpose is listed."""
    allowed = frozenset(purposes)
    return Condition(
        "purpose in %s" % sorted(allowed),
        lambda ctx: ctx.purpose in allowed,
    )


def hour_between(start: int, end: int) -> Condition:
    """True when start <= hour < end (no wrap-around)."""
    if not 0 <= start < end <= 24:
        raise PolicyError("bad hour range %d..%d" % (start, end))
    return Condition(
        "hour in [%d, %d)" % (start, end),
        lambda ctx: start <= ctx.hour < end,
    )


def weekday_in(*days: int) -> Condition:
    """True on the listed weekdays (Monday=0)."""
    allowed = frozenset(days)
    if not all(0 <= d <= 6 for d in allowed):
        raise PolicyError("weekdays are 0..6")
    return Condition(
        "weekday in %s" % sorted(allowed),
        lambda ctx: ctx.weekday in allowed,
    )


def working_hours() -> Condition:
    """The paper's 9am-6pm weekday window."""
    return Condition(
        "working hours (Mon-Fri 9-18)",
        lambda ctx: ctx.is_working_hours(),
    )


def all_of(*conditions: Condition) -> Condition:
    """Conjunction of conditions."""
    return Condition(
        "(" + " and ".join(c.description for c in conditions) + ")",
        lambda ctx: all(c.holds(ctx) for c in conditions),
    )


def any_of(*conditions: Condition) -> Condition:
    """Disjunction of conditions."""
    return Condition(
        "(" + " or ".join(c.description for c in conditions) + ")",
        lambda ctx: any(c.holds(ctx) for c in conditions),
    )


def negate(condition: Condition) -> Condition:
    """Logical negation of a condition."""
    return Condition(
        "not " + condition.description,
        lambda ctx: not condition.holds(ctx),
    )


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

class PolicyRule:
    """One rule of a user's privacy shield."""

    _counter = 0

    def __init__(
        self,
        owner: str,
        target: Union[str, Path],
        effect: str,
        condition: Optional[Condition] = None,
        rule_id: Optional[str] = None,
    ):
        if effect not in ("permit", "deny"):
            raise PolicyError("effect must be 'permit' or 'deny'")
        self.owner = owner
        self.target = parse_path(target)
        target_owner = self.target.user_id()
        if target_owner is not None and target_owner != owner:
            raise PolicyError(
                "rule owner %r cannot target %r's data"
                % (owner, target_owner)
            )
        self.effect = effect
        self.condition = condition if condition is not None else always()
        if rule_id is None:
            PolicyRule._counter += 1
            rule_id = "rule-%d" % PolicyRule._counter
        self.rule_id = rule_id
        #: Bumped on every update; replication (E5) compares versions.
        self.version = 1

    def applies_to(
        self, request: Union[str, Path], context: RequestContext
    ) -> bool:
        """Does this rule constrain any part of *request* now?"""
        return subtree_overlaps(self.target, request) and (
            self.condition.holds(context)
        )

    def __repr__(self) -> str:
        return "<PolicyRule %s %s %s when %s>" % (
            self.rule_id, self.effect, self.target,
            self.condition.description,
        )


class Decision:
    """PDP output: overall permit plus the permitted sub-paths.

    ``permitted_paths`` is the rewrite set (paper Section 5.3: "It
    rewrites the query accordingly (for instance only a subset of the
    information asked for can be returned)"): each element is a path the
    requester may see, each covered by the original request.
    """

    def __init__(
        self,
        permit: bool,
        permitted_paths: Sequence[Path] = (),
        reasons: Sequence[str] = (),
    ):
        self.permit = permit
        self.permitted_paths = list(permitted_paths)
        self.reasons = list(reasons)

    def __repr__(self) -> str:
        verdict = "PERMIT" if self.permit else "DENY"
        return "<Decision %s %s>" % (verdict, self.permitted_paths)


class PolicyDecisionPoint:
    """The PDP of Figure 10: pure decision, no side effects.

    Given the owner's rules, a request path and a context:

    1. collect permit rules whose condition holds and whose target
       overlaps the request;
    2. narrow each to the intersection with the request (rule covers
       request → whole request; request covers rule → the rule's
       target; partial overlap → the rule's target, conservatively);
    3. drop any narrowed grant that an applicable deny rule overlaps
       (deny-overrides, conservative);
    4. default deny when nothing survives.
    """

    def __init__(self):
        self.decisions_made = 0

    def decide(
        self,
        rules: Sequence[PolicyRule],
        request: Union[str, Path],
        context: RequestContext,
    ) -> Decision:
        self.decisions_made += 1
        request_path = parse_path(request)
        reasons: List[str] = []

        grants: List[Tuple[Path, PolicyRule]] = []
        denies: List[PolicyRule] = []
        for rule in rules:
            if not rule.applies_to(request_path, context):
                continue
            if rule.effect == "deny":
                denies.append(rule)
                reasons.append("deny by %s" % rule.rule_id)
            else:
                narrowed = self._narrow(rule.target, request_path)
                if narrowed is not None:
                    grants.append((narrowed, rule))

        surviving: List[Path] = []
        for narrowed, rule in grants:
            blocked = any(
                subtree_overlaps(deny.target, narrowed)
                for deny in denies
            )
            if blocked:
                reasons.append(
                    "grant from %s blocked by deny" % rule.rule_id
                )
            else:
                reasons.append("permit by %s" % rule.rule_id)
                if not any(
                    subtree_covers(existing, narrowed)
                    for existing in surviving
                ):
                    surviving = [
                        kept for kept in surviving
                        if not subtree_covers(narrowed, kept)
                    ]
                    surviving.append(narrowed)

        if not surviving:
            if not reasons:
                reasons.append("default deny (no applicable rule)")
            return Decision(False, [], reasons)
        return Decision(True, surviving, reasons)

    @staticmethod
    def _narrow(
        target: Path, request: Path
    ) -> Optional[Path]:
        """Intersection of a rule target with the request region —
        the grant never exceeds either the request or the rule."""
        if subtree_covers(target, request):
            return request
        if subtree_covers(request, target):
            return target
        # Partial overlap (e.g. request /user/address-book/item[@x='1']
        # vs target .../item[@type='personal']): grant exactly the
        # region satisfying both constraints.
        return intersect_regions(target, request)
