"""The privacy shield (paper Section 4.6): request contexts, policy
rules with the extended (beyond-XACML) context conditions, and the
PAP/PRP/PDP/PEP infrastructure of Figure 10."""

from repro.access.context import PURPOSES, RELATIONSHIPS, RequestContext
from repro.access.infrastructure import (
    PolicyAdministrationPoint,
    PolicyEnforcementPoint,
    PolicyRepository,
)
from repro.access.policy import (
    Condition,
    Decision,
    PolicyDecisionPoint,
    PolicyRule,
    all_of,
    always,
    any_of,
    hour_between,
    negate,
    purpose_in,
    relationship_in,
    requester_is,
    weekday_in,
    working_hours,
)

__all__ = [
    "RequestContext", "PURPOSES", "RELATIONSHIPS",
    "Condition", "always", "requester_is", "relationship_in",
    "purpose_in", "hour_between", "weekday_in", "working_hours",
    "all_of", "any_of", "negate",
    "PolicyRule", "Decision", "PolicyDecisionPoint",
    "PolicyRepository", "PolicyAdministrationPoint",
    "PolicyEnforcementPoint",
]
