"""Deterministic discrete-event engine.

Time-driven experiments (cache staleness in E7, polling vs push in E12,
location-update churn) need events that fire at simulated instants. This
engine is a classic event heap: callbacks scheduled at future virtual
times, executed in timestamp order. Determinism matters — two events at
the same instant fire in scheduling order (a monotonically increasing
sequence number breaks ties), so runs are exactly reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["Simulator", "Timer"]


class Timer:
    """Handle to a scheduled event; allows cancellation."""

    __slots__ = ("when", "cancelled")

    def __init__(self, when: float):
        self.when = when
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Simulator:
    """An event heap with a virtual clock (milliseconds)."""

    def __init__(self):
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Timer, Callable, tuple]] = []
        self._sequence = 0
        self._processed = 0

    def schedule(
        self, delay: float, callback: Callable, *args: Any
    ) -> Timer:
        """Run ``callback(*args)`` after *delay* ms of virtual time."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        timer = Timer(self.now + delay)
        self._sequence += 1
        heapq.heappush(
            self._heap,
            (timer.when, self._sequence, timer, callback, args),
        )
        return timer

    def schedule_at(
        self, when: float, callback: Callable, *args: Any
    ) -> Timer:
        """Run ``callback(*args)`` at absolute virtual time *when*."""
        return self.schedule(when - self.now, callback, *args)

    def every(
        self,
        interval: float,
        callback: Callable,
        *args: Any,
        until: Optional[float] = None,
    ) -> Timer:
        """Run ``callback(*args)`` every *interval* ms, optionally until
        an absolute time. Returns the timer of the *next* occurrence;
        cancelling it stops the recurrence."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        holder = Timer(self.now + interval)

        def tick():
            if holder.cancelled:
                return
            callback(*args)
            next_when = self.now + interval
            if until is None or next_when <= until:
                inner = self.schedule(interval, tick)
                holder.when = inner.when

        inner = self.schedule(interval, tick)
        holder.when = inner.when
        return holder

    # -- execution ----------------------------------------------------------

    def step(self) -> bool:
        """Execute the next pending event. Returns False when idle."""
        while self._heap:
            when, _seq, timer, callback, args = heapq.heappop(self._heap)
            if timer.cancelled:
                continue
            self.now = when
            callback(*args)
            self._processed += 1
            return True
        return False

    def run(self, until: Optional[float] = None) -> None:
        """Execute events until the heap drains or *until* is reached.

        With *until* set, the clock is left exactly at *until* even if
        the last event fired earlier (so measurements line up)."""
        while self._heap:
            when = self._heap[0][0]
            if until is not None and when > until:
                break
            self.step()
        if until is not None and self.now < until:
            self.now = until

    @property
    def pending(self) -> int:
        return sum(1 for item in self._heap if not item[2].cancelled)

    @property
    def processed(self) -> int:
        return self._processed
