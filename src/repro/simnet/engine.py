"""Deterministic discrete-event engine.

Time-driven experiments (cache staleness in E7, polling vs push in E12,
location-update churn, the E16 fault schedules) need events that fire at
simulated instants. This engine is a classic event heap: callbacks
scheduled at future virtual times, executed in timestamp order.
Determinism matters — two events at the same instant fire in scheduling
order (a monotonically increasing sequence number breaks ties), so runs
are exactly reproducible.

Cancellation is lazy but bounded: a cancelled timer stays in the heap
until it would fire *or* until cancelled entries exceed half the heap,
at which point the heap is compacted in one pass. Compaction preserves
the (when, sequence) total order, so execution order — and therefore
every simulated measurement — is unchanged by when (or whether) a
compaction happens.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["Simulator", "Timer"]

#: Never bother compacting heaps smaller than this.
_COMPACT_MIN_HEAP = 8


class Timer:
    """Handle to a scheduled event; allows cancellation."""

    __slots__ = ("when", "cancelled", "_sim", "_live")

    def __init__(self, when: float, sim: Optional["Simulator"] = None):
        self.when = when
        self.cancelled = False
        #: Owning simulator (None for synthetic handles such as the
        #: recurrence holder returned by :meth:`Simulator.every`).
        self._sim = sim
        #: True while this timer's entry is physically in the heap.
        self._live = sim is not None

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        if self._sim is not None and self._live:
            self._sim._note_cancelled()


class Simulator:
    """An event heap with a virtual clock (milliseconds)."""

    def __init__(self):
        self.now: float = 0.0
        #: Pending events only: step() pops every entry it dispatches
        #: (the drain loop lives in the experiment harness, outside
        #: the analyzed tree), and cancelled entries compact at 50%.
        # gupcheck: bounded[drained-by-run] -- step() pops dispatched entries; cancellations compact
        self._heap: List[Tuple[float, int, Timer, Callable, tuple]] = []
        self._sequence = 0
        self._processed = 0
        #: Cancelled entries still physically present in the heap.
        self._cancelled = 0
        self._compactions = 0

    def schedule(
        self, delay: float, callback: Callable, *args: Any
    ) -> Timer:
        """Run ``callback(*args)`` after *delay* ms of virtual time."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        timer = Timer(self.now + delay, self)
        self._sequence += 1
        heapq.heappush(
            self._heap,
            (timer.when, self._sequence, timer, callback, args),
        )
        return timer

    def schedule_at(
        self, when: float, callback: Callable, *args: Any
    ) -> Timer:
        """Run ``callback(*args)`` at absolute virtual time *when*."""
        return self.schedule(when - self.now, callback, *args)

    def every(
        self,
        interval: float,
        callback: Callable,
        *args: Any,
        until: Optional[float] = None,
    ) -> Timer:
        """Run ``callback(*args)`` every *interval* ms, optionally until
        an absolute time (inclusive). Returns a handle whose
        cancellation stops the recurrence. When even the *first*
        occurrence would land past *until*, nothing is scheduled."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        holder = Timer(self.now + interval)

        def tick():
            if holder.cancelled:
                return
            callback(*args)
            next_when = self.now + interval
            if until is None or next_when <= until:
                inner = self.schedule(interval, tick)
                holder.when = inner.when

        # Guard the first occurrence too: a recurrence must never fire
        # past its *until* bound, even when interval > until - now.
        if until is None or self.now + interval <= until:
            inner = self.schedule(interval, tick)
            holder.when = inner.when
        else:
            holder.cancelled = True  # nothing will ever fire
        return holder

    # -- cancellation bookkeeping -------------------------------------------

    def _note_cancelled(self) -> None:
        self._cancelled += 1
        if (
            len(self._heap) >= _COMPACT_MIN_HEAP
            and self._cancelled * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries in one pass. Heapifying the filtered
        list preserves the (when, sequence) total order, so execution
        order is untouched — determinism is preserved."""
        survivors = []
        for item in self._heap:
            if item[2].cancelled:
                item[2]._live = False
            else:
                survivors.append(item)
        self._heap = survivors
        heapq.heapify(self._heap)
        self._cancelled = 0
        self._compactions += 1

    # -- execution ----------------------------------------------------------

    def step(self) -> bool:
        """Execute the next pending event. Returns False when idle."""
        while self._heap:
            when, _seq, timer, callback, args = heapq.heappop(self._heap)
            timer._live = False
            if timer.cancelled:
                self._cancelled -= 1
                continue
            self.now = when
            callback(*args)
            self._processed += 1
            return True
        return False

    def run(self, until: Optional[float] = None) -> None:
        """Execute events until the heap drains or *until* is reached.

        With *until* set, the clock is left exactly at *until* even if
        the last event fired earlier (so measurements line up)."""
        while self._heap:
            when = self._heap[0][0]
            if until is not None and when > until:
                break
            self.step()
        if until is not None and self.now < until:
            self.now = until

    @property
    def pending(self) -> int:
        """Live (non-cancelled) scheduled events — O(1)."""
        return len(self._heap) - self._cancelled

    @property
    def processed(self) -> int:
        return self._processed

    @property
    def compactions(self) -> int:
        """How many lazy heap compactions have run (observability)."""
        return self._compactions
