"""Virtual-time driver for sans-io programs.

:class:`SimnetDriver` consumes the typed intent stream of a
:mod:`repro.sansio` program and charges every intent to a
:class:`~repro.simnet.Trace` — hop for hop, compute for compute — so a
refactored pattern costs exactly what its pre-refactor inline version
did (the golden latency fixtures pin this bit-for-bit). Transport
failures raised by the trace (:class:`~repro.errors.NodeUnreachableError`,
:class:`~repro.errors.PacketLossError`) are *thrown into* the program
at the failing yield, which is where the protocol logic decides to
fail over, back off, or degrade.

The wall-clock counterpart is
:class:`repro.serve.transport.WallTransport`; both drivers honour the
same intent contract (see :mod:`repro.sansio.intents`), which the
equivalence gate in ``tests/test_sansio_equivalence.py`` exercises
under fault injection.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Optional, Tuple

from repro.sansio.intents import (
    Compute,
    Fork,
    Intent,
    LegOutcome,
    Mark,
    PartReport,
    Program,
    Send,
    Sleep,
    SpanClose,
    SpanOpen,
    SpanSet,
    StoreGet,
    StorePut,
)
from repro.simnet.network import Trace

__all__ = ["SimnetDriver"]

#: (context-manager handle, entered span) pairs — the driver's stand-in
#: for the ``with trace.span(...)`` nesting of the inline code.
_SpanStack = List[Tuple[Any, Any]]


class SimnetDriver:
    """Runs sans-io programs against the simulated network.

    *adapters* maps store ids to profile-store adapters (normally
    ``server.adapters``) — the driver performs ``StoreGet``/``StorePut``
    against them, mirroring the in-process calls the inline code made.
    """

    def __init__(self, adapters: Mapping[str, Any]) -> None:
        self.adapters = adapters

    def run(self, program: Program, trace: Trace) -> Any:
        """Drive *program* to completion on *trace*; returns the
        program's return value. Exceptions the program does not handle
        propagate, with any spans it left open closed first (the
        sans-io equivalent of unwinding ``with`` blocks)."""
        spans: _SpanStack = []
        try:
            to_send: Any = None
            to_throw: Optional[BaseException] = None
            while True:
                try:
                    if to_throw is not None:
                        error, to_throw = to_throw, None
                        intent = program.throw(error)
                    else:
                        intent = program.send(to_send)
                except StopIteration as stop:
                    return stop.value
                to_send = None
                try:
                    to_send = self._perform(intent, trace, spans)
                except Exception as err:
                    to_throw = err
        except BaseException:
            while spans:
                handle, _span = spans.pop()
                handle.__exit__(None, None, None)
            raise
        finally:
            program.close()

    def _perform(
        self, intent: Intent, trace: Trace, spans: _SpanStack
    ) -> Any:
        if isinstance(intent, Send):
            trace.hop(intent.src, intent.dst, intent.nbytes, intent.note)
        elif isinstance(intent, Compute):
            trace.compute(intent.ms, intent.note)
        elif isinstance(intent, Sleep):
            trace.wait(intent.ms, intent.note)
        elif isinstance(intent, StoreGet):
            return self.adapters[intent.store_id].get(intent.path)
        elif isinstance(intent, StorePut):
            adapter = self.adapters.get(intent.store_id)
            if adapter is not None:
                adapter.put(intent.path, intent.fragment)
        elif isinstance(intent, SpanOpen):
            handle = trace.span(intent.name, **(intent.attrs or {}))
            spans.append((handle, handle.__enter__()))
        elif isinstance(intent, SpanSet):
            spans[-1][1].set(intent.key, intent.value)
        elif isinstance(intent, SpanClose):
            handle, _span = spans.pop()
            handle.__exit__(None, None, None)
        elif isinstance(intent, Mark):
            self._mark(intent, trace)
        elif isinstance(intent, PartReport):
            trace.part_status.extend(intent.statuses)
        elif isinstance(intent, Fork):
            return self._fork(intent, trace)
        else:  # pragma: no cover - new intents must be handled here
            raise TypeError("unknown intent %r" % (intent,))
        return None

    def _mark(self, intent: Mark, trace: Trace) -> None:
        if intent.kind == "retry":
            for _ in range(intent.count):
                trace.note_retry()
        elif intent.kind == "failover":
            for _ in range(intent.count):
                trace.note_failover()
        elif intent.kind == "stale_serve":
            for _ in range(intent.count):
                trace.note_stale_serve()
        elif intent.kind == "degraded":
            trace.note_degraded(intent.count)
        else:  # degraded_item — Mark validates the vocabulary
            trace.note_degraded_item(intent.count)

    def _fork(self, intent: Fork, trace: Trace) -> List[LegOutcome]:
        """Sequential legs on forked branch traces, joined once —
        virtual-time parallelism (elapsed = max over branches). A
        captured leg error lands in its outcome with the branch still
        joined; an uncaptured error propagates before the join, exactly
        like the inline fan-out loops this replaces."""
        outcomes: List[LegOutcome] = []
        branches: List[Trace] = []
        for leg in intent.programs:
            branch = trace.fork()
            try:
                value = self.run(leg, branch)
            except intent.capture as err:
                outcomes.append(LegOutcome(error=err))
            else:
                outcomes.append(LegOutcome(value=value))
            branches.append(branch)
        trace.join(branches)
        return outcomes
