"""Deterministic simulation substrate: virtual-time event engine and the
converged-network latency/byte-accounting model every benchmark uses."""

from repro.simnet.engine import Simulator, Timer
from repro.simnet.network import (
    DEFAULT_BANDWIDTH_BPMS,
    LinkSpec,
    Network,
    NetworkNode,
    Trace,
)

__all__ = [
    "Simulator",
    "Timer",
    "Network",
    "NetworkNode",
    "LinkSpec",
    "Trace",
    "DEFAULT_BANDWIDTH_BPMS",
]
