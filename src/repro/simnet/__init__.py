"""Deterministic simulation substrate: virtual-time event engine, the
converged-network latency/byte-accounting model every benchmark uses,
and the seedable fault-injection layer (E16)."""

from repro.simnet.engine import Simulator, Timer
from repro.simnet.faults import FaultSchedule
from repro.simnet.network import (
    DEFAULT_BANDWIDTH_BPMS,
    LinkSpec,
    Network,
    NetworkNode,
    ResilienceCounters,
    Trace,
)

__all__ = [
    "Simulator",
    "Timer",
    "Network",
    "NetworkNode",
    "LinkSpec",
    "Trace",
    "FaultSchedule",
    "ResilienceCounters",
    "DEFAULT_BANDWIDTH_BPMS",
]
