"""Simulated converged network: nodes, links, latency, byte accounting.

Every distributed cost in the benchmarks comes from this module. Nodes
(data stores, GUPster servers, client devices) are registered with the
network; message hops sample a deterministic latency (base + seeded
jitter + serialization time from a per-link bandwidth) and are charged
to a :class:`Trace`.

A Trace models one logical operation (e.g. "synchronize Arnaud's
address book"): sequential hops add up; parallel fan-out is expressed
with :meth:`Trace.fork`/:meth:`Trace.join` (elapsed time is the max of
the branches, bytes are the sum — the standard latency/throughput
split).

Failures: a failed node refuses hops with
:class:`~repro.errors.NodeUnreachableError` after a configurable detect
timeout is charged, which is how the availability experiments (E6/E16)
measure the cost of retrying against a mirror. The fault-injection
layer (:mod:`repro.simnet.faults`) additionally drives three *link*
impairments hooked here:

* **packet loss** — a per-link loss rate (or a deterministic forced
  drop) makes a hop time out with
  :class:`~repro.errors.PacketLossError`, a *transient* failure that
  retry policies treat differently from a hard-down node;
* **latency spikes** — a per-node multiplicative factor on propagation
  + transfer time (congestion);
* **node flaps** — plain :meth:`Network.fail`/:meth:`Network.restore`
  scheduled at virtual instants.

Resilience observability: every trace carries retry/failover/timeout/
stale-serve/degraded counters, and the network aggregates the same
counters across all traces (:attr:`Network.counters`) so a benchmark
can report fleet-wide behaviour under churn. With no faults injected
the loss RNG is never consulted and every counter stays zero — the
no-fault cost model is bit-for-bit identical to the pre-fault one.

Hierarchical observability (E18): the network owns a
:class:`~repro.obs.MetricsRegistry` (``Network.metrics``) that backs
:class:`ResilienceCounters` — the old integer attributes survive as
*views* over registry counters — and can attach a
:class:`~repro.obs.SpanRecorder` (:meth:`Network.enable_observability`).
With a recorder attached, every Trace opens a root span and each
``hop``/``compute``/``wait`` charge records a leaf span carrying the
link, byte count and outcome; callers can group charges under named
spans with ``with trace.span("referral", store=...)``. The layer sits
strictly *under* the cost model: with no recorder (the default)
nothing is allocated and every sampled latency is bit-identical to
the pre-observability streams (``tests/data/golden_latencies.json``
pins this).

Degraded-response accounting (pinned semantics, E18 audit): the
network-level ``degraded_responses`` counter counts **root traces**
that end up degraded, exactly once each. Branch traces created by
:meth:`Trace.fork` never touch the network counter — their
``degraded_parts`` flow into the parent at :meth:`Trace.join`, which
performs the single root-level transition check. (Previously each
*branch* performed its own first-transition increment, so a fan-out
where two legs degraded counted one response twice, and a parent that
only became degraded via ``join`` was counted through its branches —
by luck, once — only when exactly one leg degraded.)
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.errors import NodeUnreachableError, PacketLossError
from repro.obs.metrics import CounterView, MetricsRegistry
from repro.obs.spans import Span, SpanRecorder

__all__ = [
    "NetworkNode",
    "LinkSpec",
    "Network",
    "Trace",
    "ResilienceCounters",
]

#: Default link bandwidth: 10 Mbit/s ≈ 1250 bytes per millisecond.
DEFAULT_BANDWIDTH_BPMS = 1250.0

#: Charged when a hop targets a failed node (failure detection timeout).
DEFAULT_DETECT_TIMEOUT_MS = 200.0


class NetworkNode:
    """A named participant of the converged network."""

    __slots__ = ("name", "region", "processing_ms", "failed")

    def __init__(
        self, name: str, region: str = "core", processing_ms: float = 0.1
    ):
        self.name = name
        self.region = region
        #: Fixed per-message handling cost at this node.
        self.processing_ms = processing_ms
        self.failed = False

    def __repr__(self) -> str:
        status = " FAILED" if self.failed else ""
        return "<Node %s (%s)%s>" % (self.name, self.region, status)


class LinkSpec:
    """Latency/bandwidth description of one (directed) link."""

    __slots__ = ("base_ms", "jitter_ms", "bandwidth_bpms")

    def __init__(
        self,
        base_ms: float,
        jitter_ms: float = 0.0,
        bandwidth_bpms: float = DEFAULT_BANDWIDTH_BPMS,
    ):
        self.base_ms = base_ms
        self.jitter_ms = jitter_ms
        self.bandwidth_bpms = bandwidth_bpms


#: Region-pair latency defaults reflecting the paper's world: managed
#: telecom cores are fast; the public internet is the "weakest link"
#: (requirement 13); cellular air interfaces are slow.
DEFAULT_REGION_LATENCY: Dict[Tuple[str, str], LinkSpec] = {
    ("core", "core"): LinkSpec(2.0, 0.5),
    ("core", "internet"): LinkSpec(25.0, 10.0),
    ("internet", "internet"): LinkSpec(40.0, 15.0),
    ("core", "wireless"): LinkSpec(60.0, 20.0, 40.0),
    ("internet", "wireless"): LinkSpec(90.0, 30.0, 40.0),
    ("wireless", "wireless"): LinkSpec(120.0, 40.0, 40.0),
    ("core", "enterprise"): LinkSpec(15.0, 5.0),
    ("internet", "enterprise"): LinkSpec(30.0, 10.0),
    ("enterprise", "enterprise"): LinkSpec(5.0, 1.0),
    ("wireless", "enterprise"): LinkSpec(80.0, 25.0, 40.0),
}


class ResilienceCounters:
    """Fleet-wide failure/recovery accounting (E16 reads this).

    Since E18 the integers live in a :class:`~repro.obs.MetricsRegistry`
    under ``net.*`` names; the attributes below are registry views."""

    __slots__ = ("registry",)

    #: (attribute, registry name, help) triples, in report order.
    FIELDS: Tuple[Tuple[str, str, str], ...] = (
        ("retries", "net.retries",
         "Backed-off re-attempts after a failed sweep of choices."),
        ("failovers", "net.failovers",
         "Switches to an alternative store/mirror after a failure."),
        ("timeouts", "net.timeouts",
         "Failure-detection timeouts charged (dead node or lost packet)."),
        ("loss_drops", "net.loss_drops",
         "Hops dropped by injected packet loss."),
        ("stale_serves", "net.stale_serves",
         "Cache answers served past TTL because the origin failed."),
        ("degraded_responses", "net.degraded_responses",
         "Root responses returned with at least one unreachable part."),
    )

    retries = CounterView("net.retries", "registry")
    failovers = CounterView("net.failovers", "registry")
    timeouts = CounterView("net.timeouts", "registry")
    loss_drops = CounterView("net.loss_drops", "registry")
    stale_serves = CounterView("net.stale_serves", "registry")
    degraded_responses = CounterView("net.degraded_responses", "registry")

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        for _attr, metric, help_text in self.FIELDS:
            self.registry.counter(metric, help=help_text)

    def reset(self) -> None:
        for _attr, metric, _help in self.FIELDS:
            self.registry.counter(metric).reset()

    def as_dict(self) -> Dict[str, int]:
        return {attr: getattr(self, attr) for attr, _m, _h in self.FIELDS}

    def total(self) -> int:
        return sum(getattr(self, attr) for attr, _m, _h in self.FIELDS)

    def __repr__(self) -> str:
        return "<ResilienceCounters %s>" % self.as_dict()


class Network:
    """The simulated converged network."""

    def __init__(self, seed: int = 2003):
        # gupcheck: bounded[topology] -- one entry per declared node; the world is fixed per run
        self._nodes: Dict[str, NetworkNode] = {}
        # gupcheck: bounded[topology] -- two entries per declared link; link() overwrites a pair
        self._links: Dict[Tuple[str, str], LinkSpec] = {}
        # gupcheck: bounded[topology] -- keyed by region pair; region vocabulary is fixed per run
        self._region_links: Dict[Tuple[str, str], LinkSpec] = dict(
            DEFAULT_REGION_LATENCY
        )
        self._rng = random.Random(seed)
        self.detect_timeout_ms = DEFAULT_DETECT_TIMEOUT_MS
        #: Per-link packet-loss probability (symmetric, set via
        #: :meth:`set_loss`). Empty ⇒ the loss RNG is never consulted,
        #: so un-faulted runs reproduce the historical latency streams.
        self._loss: Dict[Tuple[str, str], float] = {}
        #: Deterministic forced drops: next N hops on a link are lost.
        self._forced_drops: Dict[Tuple[str, str], int] = {}
        #: Per-node latency multipliers (congestion spikes).
        self._latency_factors: Dict[str, float] = {}
        # A dedicated RNG for loss decisions so injecting loss on one
        # link does not perturb the jitter stream of other links.
        self._loss_rng = random.Random(seed ^ 0x5EED)
        #: The metric registry every instrument in this world shares
        #: (net.* counters here; cache.*, health.*, … are registered by
        #: the components a benchmark wires to this network).
        self.metrics = MetricsRegistry()
        #: Aggregated resilience counters across all traces (registry
        #: views — see :class:`ResilienceCounters`).
        self.counters = ResilienceCounters(self.metrics)
        #: Span sink; ``None`` (the default) disables span recording
        #: entirely — no Span is ever constructed.
        self.recorder: Optional[SpanRecorder] = None

    # -- topology -----------------------------------------------------------

    def add_node(
        self,
        name: str,
        region: str = "core",
        processing_ms: float = 0.1,
    ) -> NetworkNode:
        if name in self._nodes:
            raise ValueError("node %r already exists" % name)
        node = NetworkNode(name, region, processing_ms)
        self._nodes[name] = node
        return node

    def node(self, name: str) -> NetworkNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise NodeUnreachableError("unknown node %r" % name) from None

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    def nodes(self) -> List[NetworkNode]:
        return list(self._nodes.values())

    def link(
        self,
        a: str,
        b: str,
        base_ms: float,
        jitter_ms: float = 0.0,
        bandwidth_bpms: float = DEFAULT_BANDWIDTH_BPMS,
    ) -> None:
        """Explicit symmetric link overriding region defaults."""
        spec = LinkSpec(base_ms, jitter_ms, bandwidth_bpms)
        self._links[(a, b)] = spec
        self._links[(b, a)] = spec

    def set_region_latency(
        self, region_a: str, region_b: str, spec: LinkSpec
    ) -> None:
        self._region_links[(region_a, region_b)] = spec
        self._region_links[(region_b, region_a)] = spec

    def _spec_for(self, src: NetworkNode, dst: NetworkNode) -> LinkSpec:
        explicit = self._links.get((src.name, dst.name))
        if explicit is not None:
            return explicit
        pair = (src.region, dst.region)
        spec = self._region_links.get(pair)
        if spec is None:
            spec = self._region_links.get((dst.region, src.region))
        if spec is None:
            spec = LinkSpec(20.0, 5.0)
        return spec

    # -- failures and impairments -------------------------------------------

    def fail(self, name: str) -> None:
        self.node(name).failed = True

    def restore(self, name: str) -> None:
        self.node(name).failed = False

    def set_loss(self, a: str, b: str, rate: float) -> None:
        """Symmetric per-link packet-loss probability in [0, 1]."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError("loss rate must be within [0, 1]")
        if rate == 0.0:
            self._loss.pop((a, b), None)
            self._loss.pop((b, a), None)
        else:
            self._loss[(a, b)] = rate
            self._loss[(b, a)] = rate

    def clear_loss(self, a: str, b: str) -> None:
        self.set_loss(a, b, 0.0)

    def force_drops(self, a: str, b: str, count: int = 1) -> None:
        """Deterministically drop the next *count* hops on the link,
        in either direction (one shared budget) — the building block
        for reproducible transient-failure tests."""
        if count < 0:
            raise ValueError("drop count must be >= 0")
        key = (a, b) if a <= b else (b, a)
        if count == 0:
            self._forced_drops.pop(key, None)
        else:
            self._forced_drops[key] = count

    def set_latency_factor(self, name: str, factor: float) -> None:
        """Multiply propagation + transfer latency of every hop
        touching node *name* (congestion spike). Factor 1.0 clears."""
        if factor <= 0:
            raise ValueError("latency factor must be positive")
        if factor == 1.0:
            self._latency_factors.pop(name, None)
        else:
            self._latency_factors[name] = factor

    def clear_latency_factor(self, name: str) -> None:
        self.set_latency_factor(name, 1.0)

    def _should_drop(self, src: str, dst: str) -> bool:
        """Consume one loss decision for a hop src→dst. Only consults
        the loss RNG when a loss rate is configured for the link, so
        un-faulted runs draw exactly the historical random stream."""
        link = (src, dst) if src <= dst else (dst, src)
        forced = self._forced_drops.get(link, 0)
        if forced > 0:
            if forced == 1:
                del self._forced_drops[link]
            else:
                self._forced_drops[link] = forced - 1
            return True
        rate = self._loss.get((src, dst))
        if rate:
            return self._loss_rng.random() < rate
        return False

    # -- measurement ---------------------------------------------------------

    def trace(self) -> "Trace":
        """Start accounting for one logical operation."""
        return Trace(self)

    def reset_counters(self) -> None:
        self.counters.reset()

    # -- observability (E18) -------------------------------------------------

    def enable_observability(self) -> SpanRecorder:
        """Attach (or return the already-attached) span recorder.

        Only traces created *after* this call record spans — a trace
        binds its recorder at construction so its span tree cannot be
        half-recorded."""
        if self.recorder is None:
            self.recorder = SpanRecorder()
        return self.recorder

    def disable_observability(self) -> None:
        """Detach the recorder; subsequent traces record nothing."""
        self.recorder = None

    def sample_hop(
        self, src: str, dst: str, nbytes: int
    ) -> float:
        """Latency of one message hop (ms), deterministic given the seed
        and call order. Raises if either endpoint is failed/unknown
        (the caller is charged the detection timeout first by Trace)."""
        source = self.node(src)
        target = self.node(dst)
        spec = self._spec_for(source, target)
        jitter = spec.jitter_ms * self._rng.random()
        transfer = nbytes / spec.bandwidth_bpms
        factor = 1.0
        if self._latency_factors:
            factor = self._latency_factors.get(
                src, 1.0
            ) * self._latency_factors.get(dst, 1.0)
        return (
            (spec.base_ms + jitter + transfer) * factor
            + target.processing_ms
        )


class _NullSpanHandle:
    """The no-op ``trace.span(...)`` result when no recorder is
    attached: context manager + attribute sink, all free."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanHandle":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, key: str, value: object) -> "_NullSpanHandle":
        return self


_NULL_SPAN = _NullSpanHandle()


class _SpanHandle:
    """Context manager opening a named span on a recording trace. The
    span starts at ``__enter__`` and finishes at ``__exit__`` — at the
    trace's *virtual* now both times — so its duration is exactly the
    sum of the charges made inside the ``with`` block."""

    __slots__ = ("_trace", "_name", "_attrs", "_span")

    def __init__(
        self,
        trace: "Trace",
        name: str,
        attrs: Optional[Dict[str, object]],
    ) -> None:
        self._trace = trace
        self._name = name
        self._attrs = attrs
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        trace = self._trace
        rec = trace._rec
        assert rec is not None
        top = trace._stack[-1]
        self._span = rec.start(
            self._name,
            trace._now,
            parent_id=top.span_id,
            trace_id=trace.trace_id,
            tid=trace.tid,
            attrs=self._attrs,
        )
        trace._stack.append(self._span)
        return self._span

    def __exit__(self, *exc: object) -> bool:
        trace = self._trace
        span = self._span
        rec = trace._rec
        if span is None or rec is None:  # pragma: no cover - misuse
            return False
        stack = trace._stack
        # Pop back to (and including) this span; tolerate an inner
        # span leaked by a misbehaving caller rather than corrupting
        # every later parent link.
        while len(stack) > 1 and stack[-1] is not span:
            stack.pop()
        if len(stack) > 1:
            stack.pop()
        rec.finish(span, trace._now)
        return False


class Trace:
    """Cost accumulator for one logical operation over the network.

    With a :class:`~repro.obs.SpanRecorder` attached to the network,
    the trace additionally maintains a hierarchical span tree: a root
    span covering the whole operation, one leaf span per charge
    (``hop``/``compute``/``wait``), and caller-named grouping spans
    via :meth:`span`. All span timestamps are ``_base + elapsed_ms``
    — pure virtual time — and recording changes **no** sampled
    latency (the cost-model code paths are byte-identical; span
    bookkeeping only ever reads ``elapsed_ms``)."""

    def __init__(self, network: Network, parent: Optional["Trace"] = None):
        self._network = network
        self.elapsed_ms: float = 0.0
        self.bytes_total: int = 0
        self.hops: int = 0
        self.log: List[str] = []
        # -- resilience observability (E16) ---------------------------------
        #: Backed-off re-attempts charged to this operation.
        self.retries: int = 0
        #: Failovers to an alternative store/mirror.
        self.failovers: int = 0
        #: Failure-detection timeouts charged.
        self.timeouts_charged: int = 0
        #: Cache entries served past TTL because the origin was down.
        self.stale_serves: int = 0
        #: Referral parts that could not be fetched (degradation).
        self.degraded_parts: int = 0
        #: Per-part delivery report filled by degradable query patterns
        #: (list of :class:`repro.core.resilience.PartStatus`).
        self.part_status: List[object] = []
        # -- hierarchical observability (E18) --------------------------------
        #: Branches (from :meth:`fork`) defer degraded-response and
        #: span-root bookkeeping to their parent.
        self._is_branch = parent is not None
        #: Number of joins performed (names the fork groups).
        self._join_seq = 0
        rec = network.recorder
        self._rec = rec
        if rec is None:
            self.trace_id = 0
            self.tid = 0
            self._base = 0.0
            self._root: Optional[Span] = None
            self._stack: List[Span] = []
            return
        if parent is None or parent._root is None:
            self.trace_id = rec.new_trace_id()
            self.tid = 0
            self._base = 0.0
            self._root = rec.start(
                "trace", 0.0, trace_id=self.trace_id, tid=0
            )
        else:
            self.trace_id = parent.trace_id
            self.tid = rec.next_tid()
            self._base = parent._base + parent.elapsed_ms
            self._root = rec.start(
                "branch",
                self._base,
                parent_id=parent._stack[-1].span_id,
                trace_id=self.trace_id,
                tid=self.tid,
            )
        # The root is kept *closed* at the high-water mark of charges
        # (its end advances with every charge), so a finished query
        # never leaves an open span behind.
        self._root.end_ms = self._base
        self._stack = [self._root]

    # -- observability plumbing ----------------------------------------------

    @property
    def _now(self) -> float:
        """This trace's absolute virtual instant (branch base + own
        elapsed). Only meaningful for span timestamps — the cost model
        itself never reads it."""
        return self._base + self.elapsed_ms

    def _leaf(
        self, name: str, start_ms: float,
        attrs: Optional[Dict[str, object]],
    ) -> None:
        rec = self._rec
        if rec is None:  # pragma: no cover - callers pre-check
            return
        end = self._now
        rec.leaf(
            name,
            start_ms,
            end,
            parent_id=self._stack[-1].span_id,
            trace_id=self.trace_id,
            tid=self.tid,
            attrs=attrs,
        )
        root = self._root
        if root is not None:
            root.end_ms = end

    def span(self, name: str, **attrs: object):
        """Open a named child span covering the charges made inside
        the returned context manager (store id, requester scope, retry
        number… go in ``attrs``). Free when observability is off."""
        if self._rec is None:
            return _NULL_SPAN
        return _SpanHandle(self, name, attrs if attrs else None)

    def event(self, name: str, **attrs: object) -> None:
        """A point-in-time annotation on the current span."""
        if self._rec is not None:
            self._stack[-1].event(
                name, self._now, attrs if attrs else None
            )

    # -- sequential costs -----------------------------------------------------

    def hop(
        self, src: str, dst: str, nbytes: int, note: str = ""
    ) -> None:
        """One message from *src* to *dst* carrying *nbytes*."""
        if self._rec is None:
            return self._hop(src, dst, nbytes, note)
        start = self._now
        status = "ok"
        try:
            return self._hop(src, dst, nbytes, note)
        except NodeUnreachableError:
            status = "unreachable"
            raise
        except PacketLossError:
            status = "lost"
            raise
        finally:
            attrs: Dict[str, object] = {
                "src": src, "dst": dst, "bytes": nbytes,
                "status": status,
            }
            if note:
                attrs["note"] = note
            self._leaf("hop", start, attrs)

    def _hop(
        self, src: str, dst: str, nbytes: int, note: str = ""
    ) -> None:
        target = self._network.node(dst)
        source = self._network.node(src)
        if source.failed:
            raise NodeUnreachableError("source %r is down" % src)
        if target.failed:
            self.elapsed_ms += self._network.detect_timeout_ms
            self.timeouts_charged += 1
            self._network.counters.timeouts += 1
            self.log.append(
                "%s -> %s: FAILED (timeout charged)" % (src, dst)
            )
            raise NodeUnreachableError("node %r is down" % dst)
        if self._network._should_drop(src, dst):
            self.elapsed_ms += self._network.detect_timeout_ms
            self.timeouts_charged += 1
            self._network.counters.timeouts += 1
            self._network.counters.loss_drops += 1
            self.log.append(
                "%s -> %s: LOST (timeout charged)" % (src, dst)
            )
            raise PacketLossError(
                "message %s -> %s lost" % (src, dst)
            )
        latency = self._network.sample_hop(src, dst, nbytes)
        self.elapsed_ms += latency
        self.bytes_total += nbytes
        self.hops += 1
        if note:
            self.log.append(
                "%s -> %s: %d B, %.2f ms (%s)"
                % (src, dst, nbytes, latency, note)
            )
        else:
            self.log.append(
                "%s -> %s: %d B, %.2f ms" % (src, dst, nbytes, latency)
            )

    def round_trip(
        self,
        src: str,
        dst: str,
        request_bytes: int,
        response_bytes: int,
        note: str = "",
    ) -> None:
        """Request + response over the same link."""
        self.hop(src, dst, request_bytes, note + " (request)" if note else "")
        self.hop(dst, src, response_bytes, note + " (response)" if note else "")

    def compute(self, ms: float, note: str = "") -> None:
        """Local processing time (query rewriting, policy evaluation...)."""
        if ms < 0:
            raise ValueError("negative compute time")
        if self._rec is None:
            self.elapsed_ms += ms
            if note:
                self.log.append("compute: %.3f ms (%s)" % (ms, note))
            return
        start = self._now
        self.elapsed_ms += ms
        if note:
            self.log.append("compute: %.3f ms (%s)" % (ms, note))
        self._leaf(
            "compute", start, {"note": note} if note else None
        )

    def wait(self, ms: float, note: str = "") -> None:
        """Idle wall-clock time charged to the operation (retry
        backoff). No bytes move and nothing computes."""
        if ms < 0:
            raise ValueError("negative wait time")
        if self._rec is None:
            self.elapsed_ms += ms
            if note:
                self.log.append("wait: %.3f ms (%s)" % (ms, note))
            return
        start = self._now
        self.elapsed_ms += ms
        if note:
            self.log.append("wait: %.3f ms (%s)" % (ms, note))
        self._leaf("wait", start, {"note": note} if note else None)

    # -- resilience accounting -------------------------------------------------

    def note_retry(self) -> None:
        self.retries += 1
        self._network.counters.retries += 1
        if self._rec is not None:
            self.event("retry", count=self.retries)

    def note_failover(self) -> None:
        self.failovers += 1
        self._network.counters.failovers += 1
        if self._rec is not None:
            self.event("failover", count=self.failovers)

    def note_stale_serve(self) -> None:
        self.stale_serves += 1
        self._network.counters.stale_serves += 1
        if self._rec is not None:
            self.event("stale_serve", count=self.stale_serves)

    def note_degraded(self, parts: int = 1) -> None:
        """Record *parts* unreachable referral parts.

        The fleet-wide ``degraded_responses`` counter counts **root**
        traces only (see the module docstring for the pinned
        semantics); a branch's degradation reaches the network
        aggregate through its parent's :meth:`join`."""
        first = self.degraded_parts == 0
        self.degraded_parts += parts
        if first and parts and not self._is_branch:
            self._network.counters.degraded_responses += 1
        if self._rec is not None and parts:
            self.event("degraded", parts=parts)

    def note_degraded_item(self, parts: int = 1) -> None:
        """Batch accounting: one batched *item* (a logical response
        sharing this trace with its batch-mates) degraded with *parts*
        unreachable referral parts.

        Unlike :meth:`note_degraded` — whose fleet-wide counter counts
        root traces once on first transition — every call here charges
        one ``degraded_responses``: a batch of 20 queries with 3
        degraded items is 3 degraded responses, exactly as if they had
        been issued sequentially."""
        if not parts:
            return
        self.degraded_parts += parts
        self._network.counters.degraded_responses += 1
        if self._rec is not None:
            self.event("degraded_item", parts=parts)

    @property
    def degraded(self) -> bool:
        """True when this response is partial (some parts missing)."""
        return self.degraded_parts > 0

    # -- parallel composition ---------------------------------------------------

    def fork(self) -> "Trace":
        """A branch trace for one leg of a parallel fan-out."""
        return Trace(self._network, parent=self)

    def join(self, branches: List["Trace"]) -> None:
        """Merge parallel branches: elapsed += max, bytes/hops += sum.
        Resilience counters and part reports sum across branches (the
        network-level aggregate was already charged at event time —
        except ``degraded_responses``, whose root-level transition is
        decided here; see :meth:`note_degraded`)."""
        if not branches:
            return
        was_degraded = self.degraded_parts > 0
        self._join_seq += 1
        group = "j%d" % self._join_seq
        self.elapsed_ms += max(branch.elapsed_ms for branch in branches)
        for branch in branches:
            self.bytes_total += branch.bytes_total
            self.hops += branch.hops
            self.retries += branch.retries
            self.failovers += branch.failovers
            self.timeouts_charged += branch.timeouts_charged
            self.stale_serves += branch.stale_serves
            self.degraded_parts += branch.degraded_parts
            self.part_status.extend(branch.part_status)
            self.log.extend("| " + line for line in branch.log)
            if branch._root is not None and branch._root.name == "branch":
                # Stamp the fork group so exporters reconcile this
                # join as max-over-group, not a sequential sum.
                branch._root.set("fork_group", group)
        if (
            not self._is_branch
            and not was_degraded
            and self.degraded_parts > 0
        ):
            self._network.counters.degraded_responses += 1
        if self._rec is not None and self._root is not None:
            self._root.end_ms = self._now

    def snapshot(self) -> Dict[str, float]:
        return {
            "elapsed_ms": self.elapsed_ms,
            "bytes": float(self.bytes_total),
            "hops": float(self.hops),
            "retries": float(self.retries),
            "failovers": float(self.failovers),
            "timeouts": float(self.timeouts_charged),
            "stale_serves": float(self.stale_serves),
            "degraded_parts": float(self.degraded_parts),
        }
