"""Simulated converged network: nodes, links, latency, byte accounting.

Every distributed cost in the benchmarks comes from this module. Nodes
(data stores, GUPster servers, client devices) are registered with the
network; message hops sample a deterministic latency (base + seeded
jitter + serialization time from a per-link bandwidth) and are charged
to a :class:`Trace`.

A Trace models one logical operation (e.g. "synchronize Arnaud's
address book"): sequential hops add up; parallel fan-out is expressed
with :meth:`Trace.fork`/:meth:`Trace.join` (elapsed time is the max of
the branches, bytes are the sum — the standard latency/throughput
split).

Failures: a failed node refuses hops with
:class:`~repro.errors.NodeUnreachableError` after a configurable detect
timeout is charged, which is how the availability experiment (E6)
measures the cost of retrying against a mirror.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.errors import NodeUnreachableError

__all__ = ["NetworkNode", "LinkSpec", "Network", "Trace"]

#: Default link bandwidth: 10 Mbit/s ≈ 1250 bytes per millisecond.
DEFAULT_BANDWIDTH_BPMS = 1250.0

#: Charged when a hop targets a failed node (failure detection timeout).
DEFAULT_DETECT_TIMEOUT_MS = 200.0


class NetworkNode:
    """A named participant of the converged network."""

    __slots__ = ("name", "region", "processing_ms", "failed")

    def __init__(
        self, name: str, region: str = "core", processing_ms: float = 0.1
    ):
        self.name = name
        self.region = region
        #: Fixed per-message handling cost at this node.
        self.processing_ms = processing_ms
        self.failed = False

    def __repr__(self) -> str:
        status = " FAILED" if self.failed else ""
        return "<Node %s (%s)%s>" % (self.name, self.region, status)


class LinkSpec:
    """Latency/bandwidth description of one (directed) link."""

    __slots__ = ("base_ms", "jitter_ms", "bandwidth_bpms")

    def __init__(
        self,
        base_ms: float,
        jitter_ms: float = 0.0,
        bandwidth_bpms: float = DEFAULT_BANDWIDTH_BPMS,
    ):
        self.base_ms = base_ms
        self.jitter_ms = jitter_ms
        self.bandwidth_bpms = bandwidth_bpms


#: Region-pair latency defaults reflecting the paper's world: managed
#: telecom cores are fast; the public internet is the "weakest link"
#: (requirement 13); cellular air interfaces are slow.
DEFAULT_REGION_LATENCY: Dict[Tuple[str, str], LinkSpec] = {
    ("core", "core"): LinkSpec(2.0, 0.5),
    ("core", "internet"): LinkSpec(25.0, 10.0),
    ("internet", "internet"): LinkSpec(40.0, 15.0),
    ("core", "wireless"): LinkSpec(60.0, 20.0, 40.0),
    ("internet", "wireless"): LinkSpec(90.0, 30.0, 40.0),
    ("wireless", "wireless"): LinkSpec(120.0, 40.0, 40.0),
    ("core", "enterprise"): LinkSpec(15.0, 5.0),
    ("internet", "enterprise"): LinkSpec(30.0, 10.0),
    ("enterprise", "enterprise"): LinkSpec(5.0, 1.0),
    ("wireless", "enterprise"): LinkSpec(80.0, 25.0, 40.0),
}


class Network:
    """The simulated converged network."""

    def __init__(self, seed: int = 2003):
        self._nodes: Dict[str, NetworkNode] = {}
        self._links: Dict[Tuple[str, str], LinkSpec] = {}
        self._region_links: Dict[Tuple[str, str], LinkSpec] = dict(
            DEFAULT_REGION_LATENCY
        )
        self._rng = random.Random(seed)
        self.detect_timeout_ms = DEFAULT_DETECT_TIMEOUT_MS

    # -- topology -----------------------------------------------------------

    def add_node(
        self,
        name: str,
        region: str = "core",
        processing_ms: float = 0.1,
    ) -> NetworkNode:
        if name in self._nodes:
            raise ValueError("node %r already exists" % name)
        node = NetworkNode(name, region, processing_ms)
        self._nodes[name] = node
        return node

    def node(self, name: str) -> NetworkNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise NodeUnreachableError("unknown node %r" % name) from None

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    def nodes(self) -> List[NetworkNode]:
        return list(self._nodes.values())

    def link(
        self,
        a: str,
        b: str,
        base_ms: float,
        jitter_ms: float = 0.0,
        bandwidth_bpms: float = DEFAULT_BANDWIDTH_BPMS,
    ) -> None:
        """Explicit symmetric link overriding region defaults."""
        spec = LinkSpec(base_ms, jitter_ms, bandwidth_bpms)
        self._links[(a, b)] = spec
        self._links[(b, a)] = spec

    def set_region_latency(
        self, region_a: str, region_b: str, spec: LinkSpec
    ) -> None:
        self._region_links[(region_a, region_b)] = spec
        self._region_links[(region_b, region_a)] = spec

    def _spec_for(self, src: NetworkNode, dst: NetworkNode) -> LinkSpec:
        explicit = self._links.get((src.name, dst.name))
        if explicit is not None:
            return explicit
        pair = (src.region, dst.region)
        spec = self._region_links.get(pair)
        if spec is None:
            spec = self._region_links.get((dst.region, src.region))
        if spec is None:
            spec = LinkSpec(20.0, 5.0)
        return spec

    # -- failures -----------------------------------------------------------

    def fail(self, name: str) -> None:
        self.node(name).failed = True

    def restore(self, name: str) -> None:
        self.node(name).failed = False

    # -- measurement ---------------------------------------------------------

    def trace(self) -> "Trace":
        """Start accounting for one logical operation."""
        return Trace(self)

    def sample_hop(
        self, src: str, dst: str, nbytes: int
    ) -> float:
        """Latency of one message hop (ms), deterministic given the seed
        and call order. Raises if either endpoint is failed/unknown
        (the caller is charged the detection timeout first by Trace)."""
        source = self.node(src)
        target = self.node(dst)
        spec = self._spec_for(source, target)
        jitter = spec.jitter_ms * self._rng.random()
        transfer = nbytes / spec.bandwidth_bpms
        return (
            spec.base_ms + jitter + transfer + target.processing_ms
        )


class Trace:
    """Cost accumulator for one logical operation over the network."""

    def __init__(self, network: Network):
        self._network = network
        self.elapsed_ms: float = 0.0
        self.bytes_total: int = 0
        self.hops: int = 0
        self.log: List[str] = []

    # -- sequential costs -----------------------------------------------------

    def hop(
        self, src: str, dst: str, nbytes: int, note: str = ""
    ) -> None:
        """One message from *src* to *dst* carrying *nbytes*."""
        target = self._network.node(dst)
        source = self._network.node(src)
        if source.failed:
            raise NodeUnreachableError("source %r is down" % src)
        if target.failed:
            self.elapsed_ms += self._network.detect_timeout_ms
            self.log.append(
                "%s -> %s: FAILED (timeout charged)" % (src, dst)
            )
            raise NodeUnreachableError("node %r is down" % dst)
        latency = self._network.sample_hop(src, dst, nbytes)
        self.elapsed_ms += latency
        self.bytes_total += nbytes
        self.hops += 1
        if note:
            self.log.append(
                "%s -> %s: %d B, %.2f ms (%s)"
                % (src, dst, nbytes, latency, note)
            )
        else:
            self.log.append(
                "%s -> %s: %d B, %.2f ms" % (src, dst, nbytes, latency)
            )

    def round_trip(
        self,
        src: str,
        dst: str,
        request_bytes: int,
        response_bytes: int,
        note: str = "",
    ) -> None:
        """Request + response over the same link."""
        self.hop(src, dst, request_bytes, note + " (request)" if note else "")
        self.hop(dst, src, response_bytes, note + " (response)" if note else "")

    def compute(self, ms: float, note: str = "") -> None:
        """Local processing time (query rewriting, policy evaluation...)."""
        if ms < 0:
            raise ValueError("negative compute time")
        self.elapsed_ms += ms
        if note:
            self.log.append("compute: %.3f ms (%s)" % (ms, note))

    # -- parallel composition ---------------------------------------------------

    def fork(self) -> "Trace":
        """A branch trace for one leg of a parallel fan-out."""
        return Trace(self._network)

    def join(self, branches: List["Trace"]) -> None:
        """Merge parallel branches: elapsed += max, bytes/hops += sum."""
        if not branches:
            return
        self.elapsed_ms += max(branch.elapsed_ms for branch in branches)
        for branch in branches:
            self.bytes_total += branch.bytes_total
            self.hops += branch.hops
            self.log.extend("| " + line for line in branch.log)

    def snapshot(self) -> Dict[str, float]:
        return {
            "elapsed_ms": self.elapsed_ms,
            "bytes": float(self.bytes_total),
            "hops": float(self.hops),
        }
