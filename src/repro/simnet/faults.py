"""Deterministic, seedable fault injection for the converged network.

The paper's requirement 13 calls the public internet "the weakest
link", and Section 5.1 argues the mirrored meta-data constellation by
its behaviour *under failure* — yet a simulator that never fails
anything can only measure the sunny day. This module scripts failures
against virtual time so experiment E16 (availability under churn) is
exactly reproducible:

* **node flaps** — a node goes down at one instant and comes back at
  another, optionally on a periodic schedule;
* **link packet loss** — a per-link drop probability (seeded, drawn
  from the network's dedicated loss RNG) or a deterministic "drop the
  next N messages" directive for tests;
* **latency spikes** — a multiplicative congestion factor on every hop
  touching a node, for a bounded window.

A :class:`FaultSchedule` arms all of this on an existing
:class:`~repro.simnet.engine.Simulator`; nothing happens until the
simulation clock reaches the scheduled instants, and two runs with the
same seed and the same schedule observe byte-identical traces.
MOBILEATLAS-style testbeds bake controlled degradation into the
measurement substrate for the same reason: credible availability
numbers need scripted, repeatable faults.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.simnet.engine import Simulator
from repro.simnet.network import Network

__all__ = ["FaultSchedule"]


class FaultSchedule:
    """Scripts node/link faults against a simulator's virtual clock.

    All ``at``/``start``/``end`` arguments are absolute virtual times
    (ms). Scheduling an event in the past of the simulator clock fires
    it immediately (time zero delay) — convenient for "the store is
    already down when the run starts" setups.
    """

    def __init__(
        self, sim: Simulator, network: Network, seed: int = 2003
    ):
        self.sim = sim
        self.network = network
        #: Private RNG: randomized schedules (``random_flaps``) are a
        #: pure function of this seed, independent of the network RNG.
        self._rng = random.Random(seed)
        #: Applied events, for assertions: (virtual time, description).
        self.events: List[Tuple[float, str]] = []
        #: Events armed on the simulator (fired or not).
        self.injected = 0

    # -- plumbing -----------------------------------------------------------

    def _at(self, when: float, action, description: str) -> None:
        def fire():
            action()
            self.events.append((self.sim.now, description))

        self.sim.schedule(max(0.0, when - self.sim.now), fire)
        self.injected += 1

    # -- node flaps ----------------------------------------------------------

    def down(self, node: str, at: float) -> None:
        """Node *node* fails at time *at*."""
        self._at(at, lambda: self.network.fail(node), "down %s" % node)

    def up(self, node: str, at: float) -> None:
        """Node *node* recovers at time *at*."""
        self._at(at, lambda: self.network.restore(node), "up %s" % node)

    def flap(self, node: str, down_at: float, up_at: float) -> None:
        """One down/up cycle for *node*."""
        if up_at <= down_at:
            raise ValueError("flap must recover after it fails")
        self.down(node, down_at)
        self.up(node, up_at)

    def flap_every(
        self,
        node: str,
        period: float,
        downtime: float,
        start: float = 0.0,
        until: Optional[float] = None,
    ) -> int:
        """Periodic flapping: from *start*, every *period* ms the node
        goes down for *downtime* ms. Returns the number of cycles
        armed. The whole schedule is computed eagerly (not via
        recurrence callbacks), so it is a pure function of its
        arguments."""
        if period <= 0 or downtime <= 0 or downtime >= period:
            raise ValueError("need 0 < downtime < period")
        cycles = 0
        down_at = start + (period - downtime)
        while until is None or down_at + downtime <= until:
            self.flap(node, down_at, down_at + downtime)
            cycles += 1
            down_at += period
            if until is None and cycles:
                break  # un-bounded schedules arm a single cycle
        return cycles

    def random_flaps(
        self,
        nodes: Sequence[str],
        mean_up_ms: float,
        down_ms: float,
        until: float,
        start: float = 0.0,
    ) -> int:
        """Seeded random churn: each node independently alternates
        exponentially-distributed uptime with fixed *down_ms* outages.
        Deterministic given the schedule seed. Returns flaps armed."""
        if mean_up_ms <= 0 or down_ms <= 0:
            raise ValueError("durations must be positive")
        flaps = 0
        for node in nodes:
            at = start + self._rng.expovariate(1.0 / mean_up_ms)
            while at + down_ms <= until:
                self.flap(node, at, at + down_ms)
                flaps += 1
                at += down_ms + self._rng.expovariate(1.0 / mean_up_ms)
        return flaps

    # -- link impairments -----------------------------------------------------

    def link_loss(
        self,
        a: str,
        b: str,
        rate: float,
        start: float = 0.0,
        end: Optional[float] = None,
    ) -> None:
        """Packet loss at probability *rate* on the (symmetric) a↔b
        link from *start*, cleared at *end* when given."""
        self._at(
            start,
            lambda: self.network.set_loss(a, b, rate),
            "loss %s<->%s p=%.3f" % (a, b, rate),
        )
        if end is not None:
            self._at(
                end,
                lambda: self.network.clear_loss(a, b),
                "loss-clear %s<->%s" % (a, b),
            )

    def drop_next(
        self, a: str, b: str, count: int = 1, at: float = 0.0
    ) -> None:
        """Deterministically drop the next *count* messages on a↔b
        starting at time *at* (reproducible transient failures)."""
        self._at(
            at,
            lambda: self.network.force_drops(a, b, count),
            "drop-next %s<->%s x%d" % (a, b, count),
        )

    def latency_spike(
        self,
        node: str,
        factor: float,
        start: float = 0.0,
        end: Optional[float] = None,
    ) -> None:
        """Congestion at *node*: hops touching it slow down by
        *factor* between *start* and *end*."""
        if factor < 1.0:
            raise ValueError("a spike slows things down (factor >= 1)")
        self._at(
            start,
            lambda: self.network.set_latency_factor(node, factor),
            "spike %s x%.1f" % (node, factor),
        )
        if end is not None:
            self._at(
                end,
                lambda: self.network.clear_latency_factor(node),
                "spike-clear %s" % node,
            )

    # -- reporting -----------------------------------------------------------

    def applied(self) -> int:
        """Events that have actually fired so far."""
        return len(self.events)

    def __repr__(self) -> str:
        return "<FaultSchedule %d armed, %d applied>" % (
            self.injected, len(self.events),
        )
