"""SARIF 2.1.0 export for CI annotations.

Serializes a gupcheck :class:`~repro.analysis.framework.Report` as a
Static Analysis Results Interchange Format log so GitHub code
scanning renders findings inline on PRs.  Active violations become
plain results; in-source-suppressed and baselined findings are
emitted with a ``suppressions`` entry so the history stays visible
without re-alerting.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.framework import (
    Report, Rule, SUPPRESSION_RULE, Violation,
)

__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "to_sarif", "to_sarif_json"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
    "master/Schemata/sarif-schema-2.1.0.json"
)

#: Major-bumped with the analysis engine: 4.x adds the
#: interprocedural resource-bound analysis (container-growth, the
#: verdict inventory and the declared-bound contract surface); 3.x
#: added the CFG/typestate rules and effect inference.
_TOOL_VERSION = "4.0.0"
_FINGERPRINT_KEY = "gupcheckFingerprint/v1"


def _rule_metadata(rules: Sequence[Rule]) -> List[Dict[str, Any]]:
    metadata: List[Dict[str, Any]] = []
    for rule in rules:
        metadata.append({
            "id": rule.name,
            "shortDescription": {"text": rule.description},
            "defaultConfiguration": {
                "level": rule.severity,
            },
        })
    metadata.append({
        "id": SUPPRESSION_RULE,
        "shortDescription": {
            "text": "suppression comments must name known rules "
                    "and carry a justification",
        },
        "defaultConfiguration": {"level": "error"},
    })
    return metadata


def _result(
    violation: Violation,
    rule_index: Dict[str, int],
    paths: Dict[str, str],
    suppression: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    uri = paths.get(violation.path, violation.path)
    uri = os.path.relpath(uri).replace(os.sep, "/")
    result: Dict[str, Any] = {
        "ruleId": violation.rule,
        "level": violation.severity,
        "message": {"text": violation.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": uri},
                "region": {
                    "startLine": max(violation.line, 1),
                    "startColumn": violation.col + 1,
                },
            },
        }],
        "partialFingerprints": {
            _FINGERPRINT_KEY: violation.fingerprint(),
        },
    }
    if violation.rule in rule_index:
        result["ruleIndex"] = rule_index[violation.rule]
    if suppression is not None:
        result["suppressions"] = [suppression]
    return result


def to_sarif(
    report: Report, rules: Optional[Sequence[Rule]] = None
) -> Dict[str, Any]:
    """SARIF 2.1.0 log (as a dict) for *report*."""
    if rules is None:
        from repro.analysis.rules import default_rules

        rules = default_rules()
    metadata = _rule_metadata(rules)
    rule_index = {
        entry["id"]: position
        for position, entry in enumerate(metadata)
    }
    results: List[Dict[str, Any]] = []
    for violation in report.violations:
        results.append(
            _result(violation, rule_index, report.paths)
        )
    for violation in report.baselined:
        results.append(_result(
            violation, rule_index, report.paths,
            suppression={
                "kind": "external",
                "justification": "accepted in gupcheck baseline",
            },
        ))
    for violation in report.suppressed:
        results.append(_result(
            violation, rule_index, report.paths,
            suppression={
                "kind": "inSource",
                "justification": violation.justification or "",
            },
        ))
    run: Dict[str, Any] = {
        "tool": {
            "driver": {
                "name": "gupcheck",
                "version": _TOOL_VERSION,
                "informationUri": (
                    "https://example.invalid/gupcheck"
                ),
                "rules": metadata,
            },
        },
        "results": results,
        "columnKind": "utf16CodeUnits",
    }
    if report.errors:
        run["invocations"] = [{
            "executionSuccessful": False,
            "toolExecutionNotifications": [
                {
                    "level": "error",
                    "message": {
                        "text": "%s: %s" % (path, message),
                    },
                }
                for path, message in report.errors
            ],
        }]
    else:
        run["invocations"] = [{"executionSuccessful": True}]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [run],
    }


def to_sarif_json(
    report: Report, rules: Optional[Sequence[Rule]] = None
) -> str:
    """The SARIF log as pretty-printed JSON text."""
    return json.dumps(
        to_sarif(report, rules), indent=2, sort_keys=True
    ) + "\n"
