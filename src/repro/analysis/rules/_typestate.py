"""Shared driver for the CFG-based typestate rules.

Each typestate rule models a tiny abstract machine over function-local
variables: a *state* (mapping or set, compared with ``==``), a
``step`` folding one statement into the state, and observation hooks
that turn bad transitions into violations.  This module owns the
plumbing every such rule repeats:

* enumerate the scopes of a module (the module body plus every
  ``def``, each analyzed with nested defs as opaque statements);
* build the scope's CFG and run the machine to fixpoint with the
  generic solver;
* replay the solved block-entry states statement-by-statement so the
  machine can report violations against *stable* states (reporting
  during fixpoint iteration would fire on transient garbage).

Blocks the fixpoint never reached hold dead code — skipped, because a
leak on an unreachable path is not a leak.
"""

from __future__ import annotations

import ast
from typing import Any, Iterator, List, Optional

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import solve
from repro.analysis.framework import ModuleInfo, Rule, Violation

__all__ = ["TypestateMachine", "TypestateRule", "scopes_of"]


def scopes_of(tree: ast.Module) -> Iterator[ast.AST]:
    """The module body and every function definition, outermost
    first.  Each scope's CFG treats nested ``def``/``class`` bodies
    as opaque single statements."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


class TypestateMachine:
    """One scope's abstract machine.  Subclasses define the lattice."""

    def initial(self) -> Any:
        """State at scope entry."""
        raise NotImplementedError

    def join(self, left: Any, right: Any) -> Any:
        """Combine states at a control-flow merge."""
        raise NotImplementedError

    def step(self, state: Any, stmt: ast.stmt) -> Any:
        """Fold *stmt* into *state*, returning a fresh state."""
        raise NotImplementedError

    def observe(
        self,
        state: Any,
        stmt: ast.stmt,
        module: ModuleInfo,
        found: List[Violation],
    ) -> None:
        """Report violations visible at *stmt* given the state that
        holds just before it (called on the solved states only)."""

    def at_exit(
        self,
        state: Optional[Any],
        module: ModuleInfo,
        found: List[Violation],
    ) -> None:
        """Report violations visible at scope exit (``state`` is
        ``None`` when no path reaches the exit, e.g. ``while True``)."""


class TypestateRule(Rule):
    """Base class running a :class:`TypestateMachine` per scope."""

    def machine(
        self, module: ModuleInfo, scope: ast.AST
    ) -> Optional[TypestateMachine]:
        """The machine for *scope*, or ``None`` to skip it (cheap
        relevance pre-check — most scopes touch no tracked object)."""
        raise NotImplementedError

    def check(self, module: ModuleInfo) -> List[Violation]:
        found: List[Violation] = []
        for scope in scopes_of(module.tree):
            machine = self.machine(module, scope)
            if machine is None:
                continue
            self._run_scope(machine, scope, module, found)
        return found

    def _run_scope(
        self,
        machine: TypestateMachine,
        scope: ast.AST,
        module: ModuleInfo,
        found: List[Violation],
    ) -> None:
        cfg = build_cfg(scope)

        def transfer(index: int, state: Any) -> Any:
            for stmt in cfg.blocks[index].stmts:
                state = machine.step(state, stmt)
            return state

        solution = solve(
            cfg, machine.initial(), transfer, machine.join
        )
        for index in cfg.rpo():
            state = solution.before.get(index)
            if state is None:
                continue  # dead code — no runtime path gets here
            for stmt in cfg.blocks[index].stmts:
                machine.observe(state, stmt, module, found)
                state = machine.step(state, stmt)
        machine.at_exit(
            solution.before.get(cfg.exit), module, found
        )
