"""exception-totality — pxml raises GUP errors and never swallows them.

The data-model layer promises callers a *total* error surface: catch
:class:`~repro.errors.ReproError` (or a subsystem base like
``PXMLError``) and you have caught everything the library will throw.
PR 1 fixed exactly this class of bug — a non-ASCII element name
escaping :func:`repro.pxml.parse.parse` as a bare ``ValueError``. Two
things break the promise:

* raising a non-GUP exception type (``ValueError``/``KeyError``/...),
  which callers that honour the contract will not catch;
* a bare/overbroad ``except`` that catches GUP errors *and everything
  else* and does not re-raise, silently eating both.

The allowed raise set is every ``ReproError`` subclass exported by
:mod:`repro.errors` plus ``NotImplementedError`` / ``AssertionError``
(programming contracts, not data errors), bare re-raises, and raising
a lowercase-named local (re-raising a caught variable).
"""

from __future__ import annotations

import ast
from typing import FrozenSet, List, Optional

from repro.analysis.framework import ModuleInfo, Rule, Violation

__all__ = ["ExceptionTotalityRule"]

#: Contract errors that are acceptable anywhere.
_CONTRACT_ERRORS = frozenset({"NotImplementedError", "AssertionError"})
#: Catch-all names an ``except`` may not use without re-raising.
_OVERBROAD = frozenset({"Exception", "BaseException"})

#: Static fallback if :mod:`repro.errors` cannot be imported (keeps the
#: rule usable on a detached fixture tree).
_FALLBACK_GUP_ERRORS = frozenset({
    "ReproError", "PXMLError", "ParseError", "PathSyntaxError",
    "UnsupportedPathError", "SchemaError", "MergeConflictError",
    "ModelError", "StoreError", "UnknownSubscriberError",
    "ProvisioningDeniedError", "AdapterError", "NetworkError",
    "NodeUnreachableError", "PacketLossError", "TimeoutError_",
    "PartialResultError", "GupsterError", "CoverageError",
    "NoCoverageError", "AccessDeniedError", "SignatureError",
    "StaleQueryError", "PolicyError", "SyncError",
    "AnchorMismatchError", "ValidationError",
})


def _gup_error_names() -> FrozenSet[str]:
    try:
        from repro import errors
    except ImportError:
        return _FALLBACK_GUP_ERRORS
    names = {
        name
        for name, obj in vars(errors).items()
        if isinstance(obj, type) and issubclass(obj, errors.ReproError)
    }
    return frozenset(names) if names else _FALLBACK_GUP_ERRORS


class ExceptionTotalityRule(Rule):
    """Keeps the pxml error surface total: GUP raises, no swallowing."""

    name = "exception-totality"
    description = (
        "pxml modules raise only GUP error types and never swallow "
        "them with bare/overbroad except"
    )
    prefixes = ("repro/pxml/",)

    def __init__(self, allowed: Optional[FrozenSet[str]] = None) -> None:
        self._allowed = (
            allowed if allowed is not None else _gup_error_names()
        ) | _CONTRACT_ERRORS

    def check(self, module: ModuleInfo) -> List[Violation]:
        found: List[Violation] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Raise):
                self._check_raise(module, node, found)
            elif isinstance(node, ast.ExceptHandler):
                self._check_handler(module, node, found)
        return found

    # -- raises -------------------------------------------------------------

    def _check_raise(self, module: ModuleInfo, node: ast.Raise,
                     found: List[Violation]) -> None:
        if node.exc is None:
            return  # bare re-raise preserves the original type
        name = self._exception_name(node.exc)
        if name is None:
            return  # unresolvable expression; give it the benefit
        if name in self._allowed:
            return
        if name[:1].islower():
            return  # re-raising a caught local (`raise err`)
        found.append(self.violation(
            module, node,
            "raises non-GUP exception %s — use a ReproError subclass "
            "(repro.errors) so `except ReproError` stays total" % name,
        ))

    @staticmethod
    def _exception_name(exc: ast.expr) -> Optional[str]:
        target = exc
        if isinstance(target, ast.Call):
            target = target.func
        if isinstance(target, ast.Attribute):
            return target.attr
        if isinstance(target, ast.Name):
            return target.id
        return None

    # -- handlers -----------------------------------------------------------

    def _check_handler(self, module: ModuleInfo, node: ast.ExceptHandler,
                       found: List[Violation]) -> None:
        broad = self._broad_names(node.type)
        if not broad:
            return
        if self._reraises(node):
            return
        label = " / ".join(sorted(broad)) if node.type is not None \
            else "bare except"
        found.append(self.violation(
            module, node,
            "overbroad `except %s` swallows GUP errors — catch the "
            "specific ReproError subclass or re-raise" % label,
        ))

    @staticmethod
    def _broad_names(type_expr: Optional[ast.expr]) -> List[str]:
        if type_expr is None:
            return ["(bare)"]
        candidates = (
            type_expr.elts if isinstance(type_expr, ast.Tuple)
            else [type_expr]
        )
        return [
            candidate.id
            for candidate in candidates
            if isinstance(candidate, ast.Name)
            and candidate.id in _OVERBROAD
        ]

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(
            isinstance(node, ast.Raise)
            for stmt in handler.body
            for node in ast.walk(stmt)
        )
