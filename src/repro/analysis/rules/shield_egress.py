"""shield-egress — profile data leaves the server layer only shielded.

The paper's privacy requirement (§5) is absolute: *every* read of
profile data on behalf of a requester passes the privacy shield. The
server/query/cache layer is where that can silently stop being true —
a new code path that fetches from an adapter or probes the cache and
returns the fragment without an ``enforce`` is invisible to runtime
tests until someone writes the exact missing test (PR 1's cache
bypass). This rule does a taint-style walk over
``core/server.py`` / ``core/query.py`` / ``core/cache.py``:

* **sources** — calls that yield profile data: ``*.export_user()``,
  ``get``/``get_stale`` on cache- or adapter-like receivers, and (by a
  per-class fixpoint) any same-class helper whose own return value is
  tainted and unsanitized;
* **egress functions** — functions/methods that take a requester
  ``RequestContext`` (parameter named ``context`` or so annotated) —
  these claim to act *for a requester* — or a **batch** of them
  (``contexts`` / ``Sequence[RequestContext]``): the E19 batched
  fan-out is a new egress site and every item inside a batch must
  reach the shield exactly like a lone query would;
* **sanitizers** — privacy-shield touchpoints: ``pep.enforce``,
  ``_shield_cached``, ``resolve`` / ``resolve_for_update`` /
  ``_resolve_tracked`` (which enforce internally), and the shielded
  cache facades ``cache_lookup`` / ``cache_stale_lookup``.

An egress function that returns tainted data without calling a
sanitizer is flagged. Internal plumbing without a requester context
(``ComponentCache`` itself, ``_fetch_part_from``) is exempt — scoping
its keys is the ``cache-key-scope`` rule's job, and the deliberately
unshielded ``direct()`` baseline takes no context by design.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set

from repro.analysis.framework import ModuleInfo, Rule, Violation

__all__ = ["ShieldEgressRule"]

#: Privacy-shield touchpoints: a call to any of these names counts as
#: the shield being consulted on the path.
_SANITIZERS = frozenset({
    "enforce", "_shield_cached", "resolve", "resolve_for_update",
    "_resolve_tracked", "cache_lookup", "cache_stale_lookup",
})
#: Methods yielding profile data on any receiver.
_SOURCE_ANY = frozenset({"export_user"})
#: Methods yielding profile data when the receiver looks like a cache
#: or an adapter.
_SOURCE_ON_DATAISH = frozenset({"get", "get_stale"})
_DATAISH_MARKERS = ("cache", "adapter")


def _receiver_parts(expr: ast.expr) -> List[str]:
    parts: List[str] = []
    node: Optional[ast.expr] = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    parts.reverse()
    return parts


def _takes_request_context(fn: ast.FunctionDef) -> bool:
    args = fn.args
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        if arg.arg in ("context", "contexts"):
            return True
        if arg.annotation is not None \
                and _mentions_request_context(arg.annotation):
            return True
    return False


def _mentions_request_context(annotation: ast.expr) -> bool:
    """True when *annotation*'s subtree names RequestContext anywhere:
    bare ``RequestContext``, dotted ``access.RequestContext``, a string
    form, or a batch container like ``Sequence[RequestContext]`` /
    ``List[RequestContext]`` — the E19 batch fan-out is an egress site
    exactly like the per-query paths."""
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name) and node.id == "RequestContext":
            return True
        if isinstance(node, ast.Attribute) \
                and node.attr == "RequestContext":
            return True
        if isinstance(node, ast.Constant) \
                and isinstance(node.value, str) \
                and "RequestContext" in node.value:
            return True
    return False


class _FunctionFacts:
    __slots__ = ("tainted_returns", "has_sanitizer")

    def __init__(self, tainted_returns: List[ast.Return],
                 has_sanitizer: bool) -> None:
        self.tainted_returns = tainted_returns
        self.has_sanitizer = has_sanitizer

    @property
    def returns_tainted(self) -> bool:
        return bool(self.tainted_returns)


class _TaintWalk:
    """Conservative intra-function taint propagation.

    A name is tainted once assigned from an expression whose subtree
    contains a source call or an already-tainted name; container
    mutations (``x.append(tainted)``) taint the container. The body is
    swept twice so taint introduced late in a loop body reaches uses
    earlier in it.
    """

    _MUTATORS = frozenset({"append", "extend", "add", "insert",
                           "update", "setdefault"})

    def __init__(self, tainted_peers: FrozenSet[str]) -> None:
        self._tainted_peers = tainted_peers
        self.tainted: Set[str] = set()
        self.tainted_returns: List[ast.Return] = []

    # -- sources ------------------------------------------------------------

    def _is_source_call(self, call: ast.Call) -> bool:
        func = call.func
        if isinstance(func, ast.Attribute):
            if func.attr in _SOURCE_ANY:
                return True
            if func.attr in _SOURCE_ON_DATAISH:
                parts = _receiver_parts(func.value)
                return any(
                    marker in part.lower()
                    for part in parts
                    for marker in _DATAISH_MARKERS
                )
            if func.attr in self._tainted_peers \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id == "self":
                return True
            return False
        if isinstance(func, ast.Name):
            return func.id in self._tainted_peers
        return False

    def _is_tainted(self, expr: Optional[ast.expr]) -> bool:
        if expr is None:
            return False
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and node.id in self.tainted:
                return True
            if isinstance(node, ast.Call) and self._is_source_call(node):
                return True
        return False

    # -- propagation --------------------------------------------------------

    def _taint_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.tainted.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._taint_target(element)
        elif isinstance(target, ast.Starred):
            self._taint_target(target.value)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            root = target.value
            while isinstance(root, (ast.Attribute, ast.Subscript)):
                root = root.value
            if isinstance(root, ast.Name) and root.id != "self":
                self.tainted.add(root.id)

    def run(self, fn: ast.FunctionDef) -> None:
        for _sweep in range(2):
            self.tainted_returns = []
            for stmt in fn.body:
                self._visit(stmt)

    def _visit(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            if self._is_tainted(stmt.value):
                for target in stmt.targets:
                    self._taint_target(target)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None and self._is_tainted(stmt.value):
                self._taint_target(stmt.target)
        elif isinstance(stmt, ast.AugAssign):
            if self._is_tainted(stmt.value):
                self._taint_target(stmt.target)
        elif isinstance(stmt, ast.Return):
            if self._is_tainted(stmt.value):
                self.tainted_returns.append(stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            if self._is_tainted(stmt.iter):
                self._taint_target(stmt.target)
            for child in stmt.body + stmt.orelse:
                self._visit(child)
        elif isinstance(stmt, (ast.If, ast.While)):
            for child in stmt.body + stmt.orelse:
                self._visit(child)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None \
                        and self._is_tainted(item.context_expr):
                    self._taint_target(item.optional_vars)
            for child in stmt.body:
                self._visit(child)
        elif isinstance(stmt, ast.Try):
            for child in stmt.body + stmt.orelse + stmt.finalbody:
                self._visit(child)
            for handler in stmt.handlers:
                for child in handler.body:
                    self._visit(child)
        elif isinstance(stmt, ast.Expr) \
                and isinstance(stmt.value, ast.Call):
            call = stmt.value
            func = call.func
            if isinstance(func, ast.Attribute) \
                    and func.attr in self._MUTATORS:
                arguments = list(call.args) + [
                    keyword.value for keyword in call.keywords
                ]
                if any(self._is_tainted(argument)
                       for argument in arguments):
                    self._taint_target(func.value)
        # Nested defs/classes are opaque to the walk (conservatively
        # ignored; closures over tainted state are rare in this layer).


def _has_sanitizer(fn: ast.FunctionDef) -> bool:
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        if isinstance(func, ast.Attribute):
            name = func.attr
        elif isinstance(func, ast.Name):
            name = func.id
        if name in _SANITIZERS:
            return True
    return False


def _function_facts(fn: ast.FunctionDef,
                    tainted_peers: FrozenSet[str]) -> _FunctionFacts:
    walk = _TaintWalk(tainted_peers)
    walk.run(fn)
    return _FunctionFacts(walk.tainted_returns, _has_sanitizer(fn))


class ShieldEgressRule(Rule):
    """Taint-walks server/query/cache egress to the privacy shield."""

    name = "shield-egress"
    description = (
        "context-mediated egress in server/query/cache reaches a "
        "privacy-shield check before returning profile data"
    )
    prefixes = (
        "repro/core/server.py",
        "repro/core/query.py",
        "repro/core/cache.py",
    )

    def check(self, module: ModuleInfo) -> List[Violation]:
        found: List[Violation] = []
        module_functions = [
            node for node in module.tree.body
            if isinstance(node, ast.FunctionDef)
        ]
        self._check_group(module, module_functions, found)
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                methods = [
                    item for item in node.body
                    if isinstance(item, ast.FunctionDef)
                ]
                self._check_group(module, methods, found)
        return found

    def _check_group(self, module: ModuleInfo,
                     functions: List[ast.FunctionDef],
                     found: List[Violation]) -> None:
        if not functions:
            return
        facts = self._fixpoint(functions)
        for fn in functions:
            fn_facts = facts[fn.name]
            if not _takes_request_context(fn):
                continue
            if fn_facts.returns_tainted and not fn_facts.has_sanitizer:
                for tainted_return in fn_facts.tainted_returns:
                    found.append(self.violation(
                        module, tainted_return,
                        "%s() returns profile data to a requester "
                        "context without a privacy-shield check "
                        "(no enforce/_shield_cached/resolve on the "
                        "path)" % fn.name,
                    ))

    @staticmethod
    def _fixpoint(
        functions: List[ast.FunctionDef],
    ) -> Dict[str, _FunctionFacts]:
        """Iterate until the set of tainted-returning, unsanitized
        helpers stabilizes, so taint flows through same-class (or
        same-module) plumbing like ``_fetch_part_from``."""
        tainted_peers: FrozenSet[str] = frozenset()
        facts: Dict[str, _FunctionFacts] = {}
        for _round in range(len(functions) + 1):
            facts = {
                fn.name: _function_facts(fn, tainted_peers)
                for fn in functions
            }
            new_peers = frozenset(
                name for name, fn_facts in facts.items()
                if fn_facts.returns_tainted
                and not fn_facts.has_sanitizer
            )
            if new_peers == tainted_peers:
                break
            tainted_peers = new_peers
        return facts
