"""shield-egress — profile data leaves the server layer only shielded.

The paper's privacy requirement (§5) is absolute: *every* read of
profile data on behalf of a requester passes the privacy shield. The
server/query/cache layer is where that can silently stop being true —
a new code path that fetches from an adapter or probes the cache and
returns the fragment without an ``enforce`` is invisible to runtime
tests until someone writes the exact missing test (PR 1's cache
bypass). This rule does a taint-style walk over
``core/server.py`` / ``core/query.py`` / ``core/cache.py``:

* **sources** — calls that yield profile data: ``*.export_user()``,
  ``get``/``get_stale`` on cache- or adapter-like receivers, and (by a
  per-class fixpoint) any same-class helper whose own return value is
  tainted and unsanitized;
* **egress functions** — functions/methods that take a requester
  ``RequestContext`` (parameter named ``context`` or so annotated) —
  these claim to act *for a requester* — or a **batch** of them
  (``contexts`` / ``Sequence[RequestContext]``): the E19 batched
  fan-out is a new egress site and every item inside a batch must
  reach the shield exactly like a lone query would;
* **sanitizers** — privacy-shield touchpoints: ``pep.enforce``,
  ``_shield_cached``, ``resolve`` / ``resolve_for_update`` /
  ``_resolve_tracked`` (which enforce internally), and the shielded
  cache facades ``cache_lookup`` / ``cache_stale_lookup``.

An egress function that returns tainted data without calling a
sanitizer is flagged. Internal plumbing without a requester context
(``ComponentCache`` itself, ``_fetch_part_from``) is exempt — scoping
its keys is the ``cache-key-scope`` rule's job, and the deliberately
unshielded ``direct()`` baseline takes no context by design.

**Bus delivery callbacks are requester egress too** (E20): in
``repro/bus/`` modules, a delivery batch parameter (``records``,
``deltas``, ``batch``…) is profile data *by construction* — it is what
the change log replays — and ``*.since()`` on a log/bus receiver is a
source like a cache probe. A context-taking delivery function that
passes tainted data to a **delivery sink** (``deliver``,
``on_delivery``, ``_record_delivery``…) without the shield on the path
is flagged exactly like a tainted return: forwarding to a subscriber
IS returning profile data to a requester, just inverted.

**Federation exports are egress to another administrative domain**
(E22): in ``repro/federation/`` modules, an attribute payload
parameter (``value``/``values``…) is profile data by construction,
and a context-taking function that hands it to a **foreign write
sink** (``write`` / ``write_attr``) must pass the shield first —
an outbound sync write is a disclosure exactly like answering a
query, except the requester is a whole directory.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set

from repro.analysis.framework import ModuleInfo, Rule, Violation

__all__ = ["ShieldEgressRule"]

#: Privacy-shield touchpoints: a call to any of these names counts as
#: the shield being consulted on the path.
_SANITIZERS = frozenset({
    "enforce", "_shield_cached", "resolve", "resolve_for_update",
    "_resolve_tracked", "cache_lookup", "cache_stale_lookup",
})
#: Methods yielding profile data on any receiver.
_SOURCE_ANY = frozenset({"export_user"})
#: Methods yielding profile data when the receiver looks like a cache,
#: an adapter, or a change log/bus (the E20 replay surface).
_SOURCE_ON_DATAISH = frozenset({"get", "get_stale", "since"})
_DATAISH_MARKERS = ("cache", "adapter", "log", "bus")
#: In bus modules, these parameter names carry replayed change records
#: — tainted at function entry (the log is where they came from).
_BUS_PAYLOAD_PARAMS = frozenset({
    "records", "record", "deltas", "delta", "batch",
})
#: Calls that hand data onward to a listener/subscriber — the egress
#: mirror of a ``return`` for the push path.
_DELIVERY_SINKS = frozenset({
    "deliver", "_deliver", "_deliver_records", "on_delivery",
    "_on_delivery", "record_delivery", "_record_delivery",
})
#: Rule-scope modules where the delivery-sink egress model applies.
_BUS_PREFIX = "repro/bus/"
#: In federation modules, these parameter names carry attribute values
#: bound for (or from) the foreign directory — tainted at entry.
_FED_PAYLOAD_PARAMS = frozenset({
    "value", "values", "record", "records", "resolution",
})
#: Calls that push data into the foreign directory — outbound egress.
_FED_SINKS = frozenset({"write", "write_attr"})
#: Rule-scope modules where the foreign-write egress model applies.
_FED_PREFIX = "repro/federation/"


def _receiver_parts(expr: ast.expr) -> List[str]:
    parts: List[str] = []
    node: Optional[ast.expr] = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    parts.reverse()
    return parts


def _takes_request_context(fn: ast.FunctionDef) -> bool:
    args = fn.args
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        if arg.arg in ("context", "contexts"):
            return True
        if arg.annotation is not None \
                and _mentions_request_context(arg.annotation):
            return True
    return False


def _mentions_request_context(annotation: ast.expr) -> bool:
    """True when *annotation*'s subtree names RequestContext anywhere:
    bare ``RequestContext``, dotted ``access.RequestContext``, a string
    form, or a batch container like ``Sequence[RequestContext]`` /
    ``List[RequestContext]`` — the E19 batch fan-out is an egress site
    exactly like the per-query paths."""
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name) and node.id == "RequestContext":
            return True
        if isinstance(node, ast.Attribute) \
                and node.attr == "RequestContext":
            return True
        if isinstance(node, ast.Constant) \
                and isinstance(node.value, str) \
                and "RequestContext" in node.value:
            return True
    return False


class _FunctionFacts:
    __slots__ = ("tainted_returns", "tainted_sinks", "has_sanitizer")

    def __init__(self, tainted_returns: List[ast.Return],
                 tainted_sinks: List[ast.Call],
                 has_sanitizer: bool) -> None:
        self.tainted_returns = tainted_returns
        self.tainted_sinks = tainted_sinks
        self.has_sanitizer = has_sanitizer

    @property
    def returns_tainted(self) -> bool:
        return bool(self.tainted_returns)


class _TaintWalk:
    """Conservative intra-function taint propagation.

    A name is tainted once assigned from an expression whose subtree
    contains a source call or an already-tainted name; container
    mutations (``x.append(tainted)``) taint the container. The body is
    swept twice so taint introduced late in a loop body reaches uses
    earlier in it.
    """

    _MUTATORS = frozenset({"append", "extend", "add", "insert",
                           "update", "setdefault"})

    def __init__(
        self,
        tainted_peers: FrozenSet[str],
        pre_tainted: FrozenSet[str] = frozenset(),
        sinks: FrozenSet[str] = frozenset(),
    ) -> None:
        self._tainted_peers = tainted_peers
        self._pre_tainted = pre_tainted
        self._sinks = sinks
        self.tainted: Set[str] = set(pre_tainted)
        self.tainted_returns: List[ast.Return] = []
        self.tainted_sinks: List[ast.Call] = []

    # -- sources ------------------------------------------------------------

    def _is_source_call(self, call: ast.Call) -> bool:
        func = call.func
        if isinstance(func, ast.Attribute):
            if func.attr in _SOURCE_ANY:
                return True
            if func.attr in _SOURCE_ON_DATAISH:
                parts = _receiver_parts(func.value)
                return any(
                    marker in part.lower()
                    for part in parts
                    for marker in _DATAISH_MARKERS
                )
            if func.attr in self._tainted_peers \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id == "self":
                return True
            return False
        if isinstance(func, ast.Name):
            return func.id in self._tainted_peers
        return False

    def _is_tainted(self, expr: Optional[ast.expr]) -> bool:
        if expr is None:
            return False
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and node.id in self.tainted:
                return True
            if isinstance(node, ast.Call) and self._is_source_call(node):
                return True
        return False

    # -- propagation --------------------------------------------------------

    def _taint_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.tainted.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._taint_target(element)
        elif isinstance(target, ast.Starred):
            self._taint_target(target.value)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            root = target.value
            while isinstance(root, (ast.Attribute, ast.Subscript)):
                root = root.value
            if isinstance(root, ast.Name) and root.id != "self":
                self.tainted.add(root.id)

    def run(self, fn: ast.FunctionDef) -> None:
        for _sweep in range(2):
            self.tainted_returns = []
            self.tainted_sinks = []
            for stmt in fn.body:
                self._visit(stmt)

    def _visit(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            if self._is_tainted(stmt.value):
                for target in stmt.targets:
                    self._taint_target(target)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None and self._is_tainted(stmt.value):
                self._taint_target(stmt.target)
        elif isinstance(stmt, ast.AugAssign):
            if self._is_tainted(stmt.value):
                self._taint_target(stmt.target)
        elif isinstance(stmt, ast.Return):
            if self._is_tainted(stmt.value):
                self.tainted_returns.append(stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            if self._is_tainted(stmt.iter):
                self._taint_target(stmt.target)
            for child in stmt.body + stmt.orelse:
                self._visit(child)
        elif isinstance(stmt, (ast.If, ast.While)):
            for child in stmt.body + stmt.orelse:
                self._visit(child)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None \
                        and self._is_tainted(item.context_expr):
                    self._taint_target(item.optional_vars)
            for child in stmt.body:
                self._visit(child)
        elif isinstance(stmt, ast.Try):
            for child in stmt.body + stmt.orelse + stmt.finalbody:
                self._visit(child)
            for handler in stmt.handlers:
                for child in handler.body:
                    self._visit(child)
        elif isinstance(stmt, ast.Expr) \
                and isinstance(stmt.value, ast.Call):
            call = stmt.value
            func = call.func
            arguments = list(call.args) + [
                keyword.value for keyword in call.keywords
            ]
            if isinstance(func, ast.Attribute) \
                    and func.attr in self._MUTATORS:
                if any(self._is_tainted(argument)
                       for argument in arguments):
                    self._taint_target(func.value)
            if self._sinks:
                sink_name = None
                if isinstance(func, ast.Attribute):
                    sink_name = func.attr
                elif isinstance(func, ast.Name):
                    sink_name = func.id
                if sink_name in self._sinks and any(
                    self._is_tainted(argument)
                    for argument in arguments
                ):
                    self.tainted_sinks.append(call)
        # Nested defs/classes are opaque to the walk (conservatively
        # ignored; closures over tainted state are rare in this layer).


def _has_sanitizer(fn: ast.FunctionDef) -> bool:
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        if isinstance(func, ast.Attribute):
            name = func.attr
        elif isinstance(func, ast.Name):
            name = func.id
        if name in _SANITIZERS:
            return True
    return False


#: Per-mode (payload params, sink names) for the push-egress models.
_MODES: Dict[str, "tuple[FrozenSet[str], FrozenSet[str]]"] = {
    "bus": (_BUS_PAYLOAD_PARAMS, _DELIVERY_SINKS),
    "fed": (_FED_PAYLOAD_PARAMS, _FED_SINKS),
}


def _function_facts(fn: ast.FunctionDef,
                    tainted_peers: FrozenSet[str],
                    mode: Optional[str] = None) -> _FunctionFacts:
    pre_tainted: FrozenSet[str] = frozenset()
    sinks: FrozenSet[str] = frozenset()
    if mode is not None:
        payload_params, sinks = _MODES[mode]
        args = fn.args
        pre_tainted = frozenset(
            arg.arg
            for arg in args.posonlyargs + args.args + args.kwonlyargs
            if arg.arg in payload_params
        )
    walk = _TaintWalk(
        tainted_peers, pre_tainted=pre_tainted, sinks=sinks
    )
    walk.run(fn)
    return _FunctionFacts(
        walk.tainted_returns, walk.tainted_sinks, _has_sanitizer(fn)
    )


class ShieldEgressRule(Rule):
    """Taint-walks server/query/cache egress to the privacy shield."""

    name = "shield-egress"
    description = (
        "context-mediated egress in server/query/cache reaches a "
        "privacy-shield check before returning profile data"
    )
    prefixes = (
        "repro/core/server.py",
        "repro/core/query.py",
        "repro/core/cache.py",
        "repro/bus/",
        "repro/federation/",
    )

    def check(self, module: ModuleInfo) -> List[Violation]:
        found: List[Violation] = []
        mode: Optional[str] = None
        if module.relpath.startswith(_BUS_PREFIX):
            mode = "bus"
        elif module.relpath.startswith(_FED_PREFIX):
            mode = "fed"
        module_functions = [
            node for node in module.tree.body
            if isinstance(node, ast.FunctionDef)
        ]
        self._check_group(module, module_functions, found, mode)
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                methods = [
                    item for item in node.body
                    if isinstance(item, ast.FunctionDef)
                ]
                self._check_group(module, methods, found, mode)
        return found

    def _check_group(self, module: ModuleInfo,
                     functions: List[ast.FunctionDef],
                     found: List[Violation],
                     mode: Optional[str]) -> None:
        if not functions:
            return
        facts = self._fixpoint(functions, mode)
        for fn in functions:
            fn_facts = facts[fn.name]
            if not _takes_request_context(fn):
                continue
            if fn_facts.has_sanitizer:
                continue
            for tainted_return in fn_facts.tainted_returns:
                found.append(self.violation(
                    module, tainted_return,
                    "%s() returns profile data to a requester "
                    "context without a privacy-shield check "
                    "(no enforce/_shield_cached/resolve on the "
                    "path)" % fn.name,
                ))
            for tainted_sink in fn_facts.tainted_sinks:
                found.append(self.violation(
                    module, tainted_sink,
                    "%s() forwards profile data to a delivery "
                    "or foreign-write sink for a requester context "
                    "without a privacy-shield check (pushes are "
                    "egress; enforce per item)" % fn.name,
                ))

    @staticmethod
    def _fixpoint(
        functions: List[ast.FunctionDef],
        mode: Optional[str],
    ) -> Dict[str, _FunctionFacts]:
        """Iterate until the set of tainted-returning, unsanitized
        helpers stabilizes, so taint flows through same-class (or
        same-module) plumbing like ``_fetch_part_from``."""
        tainted_peers: FrozenSet[str] = frozenset()
        facts: Dict[str, _FunctionFacts] = {}
        for _round in range(len(functions) + 1):
            facts = {
                fn.name: _function_facts(fn, tainted_peers, mode)
                for fn in functions
            }
            new_peers = frozenset(
                name for name, fn_facts in facts.items()
                if fn_facts.returns_tainted
                and not fn_facts.has_sanitizer
            )
            if new_peers == tainted_peers:
                break
            tainted_peers = new_peers
        return facts
