"""span-balance — observability spans are closed on every path.

A span that is opened but never finished exports as a zero-duration
"unfinished" artifact and breaks the E18 reconciliation invariant
(the tree no longer explains the trace's elapsed time). The safe
idiom is the context manager::

    with trace.span("query.referral", store=store_id):
        ...

Since gupcheck v3 this is a real open→close typestate over the
function's CFG instead of a scope-wide name scan.  A handle bound
from a span-opening call enters the OPEN state; *any* later
reference to the name — entering it (``with handle:``), handing it
to a call (``rec.finish(handle)``), calling a method on it, closing
it directly (``handle.end_ms = ...``), returning/yielding it,
aliasing or storing it, capturing it in a nested ``def`` — releases
it on that path.  A handle still OPEN when *any* path reaches the
function exit is reported at its open site: flow-sensitivity catches
the early-``return`` that skips the ``finish()`` call, which the old
scope-wide scan sanctioned.  A span-opening call used as a bare
expression statement is a discarded handle and reported outright.

To stay quiet on unrelated ``.span()`` methods (most notably
``re.Match.span()``), a call only counts as *span-opening* when its
first positional argument is a string literal or it passes keyword
attributes — the ``trace.span("name", attr=...)`` shape — and
``.start()`` additionally requires a recorder-ish receiver
(``rec`` / ``recorder`` / ``*_rec``). ``re.Match.span()`` takes an
optional *int* group, so it never matches.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.framework import ModuleInfo, Violation
from repro.analysis.rules._typestate import (
    TypestateMachine,
    TypestateRule,
)

__all__ = ["SpanBalanceRule"]

#: Receiver names that mark a ``.start()`` call as a span recorder's.
_RECORDER_NAMES = frozenset({"rec", "recorder"})

#: State: handle name -> open-site line numbers not yet released on
#: some path.  Join is per-name union (open on any path counts).
_State = Dict[str, FrozenSet[int]]


def _is_str_constant(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, str)


def _receiver_name(func: ast.Attribute) -> Optional[str]:
    """Trailing identifier of the receiver (``rec``, ``self._rec``,
    ``network.recorder`` → ``rec``/``_rec``/``recorder``)."""
    value = func.value
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Attribute):
        return value.attr
    return None


def _opens_span(call: ast.Call) -> bool:
    """True when *call* opens an observability span."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return False
    named = bool(call.args) and _is_str_constant(call.args[0])
    if func.attr == "span":
        return named or bool(call.keywords)
    if func.attr == "start":
        receiver = _receiver_name(func)
        if receiver is None:
            return False
        recorderish = (
            receiver in _RECORDER_NAMES or receiver.endswith("_rec")
            or receiver.endswith("recorder")
        )
        return recorderish and named
    return False


def _header_nodes(stmt: ast.stmt) -> List[ast.AST]:
    """The expressions a statement evaluates *itself* — compound
    statements own only their header; bodies live in other blocks.
    Nested ``def``/``class`` return whole (their body runs later but
    any captured handle is thereby released to the closure)."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.target, stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        nodes: List[ast.AST] = []
        for item in stmt.items:
            nodes.append(item.context_expr)
            if item.optional_vars is not None:
                nodes.append(item.optional_vars)
        return nodes
    if isinstance(stmt, ast.Try):
        return []
    match_type = getattr(ast, "Match", None)
    if match_type is not None and isinstance(stmt, match_type):
        return [stmt.subject]
    return [stmt]


def _referenced_names(stmt: ast.stmt) -> Set[str]:
    """Names the statement's own evaluation touches."""
    names: Set[str] = set()
    for node in _header_nodes(stmt):
        for child in ast.walk(node):
            if isinstance(child, ast.Name):
                names.add(child.id)
    return names


def _opening_bind(stmt: ast.stmt) -> Optional[Tuple[str, ast.Call]]:
    """``name = <span-opening call>`` → ``(name, call)``."""
    if (
        isinstance(stmt, ast.Assign)
        and isinstance(stmt.value, ast.Call)
        and _opens_span(stmt.value)
        and len(stmt.targets) == 1
        and isinstance(stmt.targets[0], ast.Name)
    ):
        return stmt.targets[0].id, stmt.value
    return None


class _SpanMachine(TypestateMachine):
    def initial(self) -> _State:
        return {}

    def join(self, left: _State, right: _State) -> _State:
        merged = dict(left)
        for name, sites in right.items():
            merged[name] = merged.get(name, frozenset()) | sites
        return merged

    def step(self, state: _State, stmt: ast.stmt) -> _State:
        bind = _opening_bind(stmt)
        if bind is not None:
            name, _call = bind
            new = dict(state)
            new[name] = frozenset({stmt.lineno})
            return new
        referenced = _referenced_names(stmt)
        if not referenced:
            return state
        new = {
            name: sites for name, sites in state.items()
            if name not in referenced
        }
        return new if len(new) != len(state) else state

    def observe(
        self,
        state: _State,
        stmt: ast.stmt,
        module: ModuleInfo,
        found: List[Violation],
    ) -> None:
        del state  # the discard shape needs no flow facts
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)
            and _opens_span(stmt.value)
        ):
            found.append(_RULE.violation(
                module, stmt,
                "span handle discarded — the span is never "
                "entered; use `with ....span(...):`",
            ))

    def at_exit(
        self,
        state: Optional[_State],
        module: ModuleInfo,
        found: List[Violation],
    ) -> None:
        if not state:
            return
        reported: Set[Tuple[str, int]] = set()
        for name in sorted(state):
            for line in sorted(state[name]):
                if (name, line) in reported:
                    continue
                reported.add((name, line))
                site = ast.stmt()
                site.lineno = line
                site.col_offset = 0
                found.append(_RULE.violation(
                    module, site,
                    "span handle `%s` is opened but never entered, "
                    "finished or released on some path to function "
                    "exit" % name,
                ))


class SpanBalanceRule(TypestateRule):
    """Flags span handles that are discarded or leak on some path."""

    name = "span-balance"
    description = (
        "observability spans are entered via `with` or explicitly "
        "finished on every path — an abandoned handle exports an "
        "unfinished span"
    )
    prefixes = ("repro/",)

    def machine(
        self, module: ModuleInfo, scope: ast.AST
    ) -> Optional[TypestateMachine]:
        if ".span(" not in module.source \
                and ".start(" not in module.source:
            return None
        return _SpanMachine()


#: Violation factory shared with the machine (messages/severity come
#: from the rule class, states from the machine).
_RULE = SpanBalanceRule()
