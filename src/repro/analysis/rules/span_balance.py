"""span-balance — observability spans are closed on every path.

A span that is opened but never finished exports as a zero-duration
"unfinished" artifact and breaks the E18 reconciliation invariant
(the tree no longer explains the trace's elapsed time). The safe
idiom is the context manager::

    with trace.span("query.referral", store=store_id):
        ...

This rule flags the two leak shapes that dodge it:

* a span-opening call used as a bare expression statement — the
  handle is discarded, so the span can never be entered or finished;
* a handle bound to a local name that is then neither entered
  (``with handle:``), handed to ``finish()`` (or any call), closed
  directly (``handle.end_ms = ...``), nor allowed to escape
  (returned/yielded/stored/aliased) — an open span abandoned on the
  floor of the function.

To stay quiet on unrelated ``.span()`` methods (most notably
``re.Match.span()``), a call only counts as *span-opening* when its
first positional argument is a string literal or it passes keyword
attributes — the ``trace.span("name", attr=...)`` shape — and
``.start()`` additionally requires a recorder-ish receiver
(``rec`` / ``recorder`` / ``*_rec``). ``re.Match.span()`` takes an
optional *int* group, so it never matches.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple

from repro.analysis.framework import ModuleInfo, Rule, Violation

__all__ = ["SpanBalanceRule"]

#: Receiver names that mark a ``.start()`` call as a span recorder's.
_RECORDER_NAMES = frozenset({"rec", "recorder"})


def _is_str_constant(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, str)


def _receiver_name(func: ast.Attribute) -> Optional[str]:
    """Trailing identifier of the receiver (``rec``, ``self._rec``,
    ``network.recorder`` → ``rec``/``_rec``/``recorder``)."""
    value = func.value
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Attribute):
        return value.attr
    return None


def _opens_span(call: ast.Call) -> bool:
    """True when *call* opens an observability span."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return False
    named = bool(call.args) and _is_str_constant(call.args[0])
    if func.attr == "span":
        return named or bool(call.keywords)
    if func.attr == "start":
        receiver = _receiver_name(func)
        if receiver is None:
            return False
        recorderish = (
            receiver in _RECORDER_NAMES or receiver.endswith("_rec")
            or receiver.endswith("recorder")
        )
        return recorderish and named
    return False


class SpanBalanceRule(Rule):
    """Flags span handles that are discarded or never closed."""

    name = "span-balance"
    description = (
        "observability spans are entered via `with` or explicitly "
        "finished — an abandoned handle exports an unfinished span"
    )
    prefixes = ("repro/",)

    def check(self, module: ModuleInfo) -> List[Violation]:
        found: List[Violation] = []
        scopes: List[ast.AST] = [module.tree]
        scopes.extend(
            node for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for scope in scopes:
            self._check_scope(module, scope, found)
        return found

    # -- per-scope analysis -------------------------------------------------

    def _check_scope(self, module: ModuleInfo, scope: ast.AST,
                     found: List[Violation]) -> None:
        body = getattr(scope, "body", [])
        opened: List[Tuple[str, ast.AST]] = []
        for node in self._scope_walk(body):
            if isinstance(node, ast.Expr) and (
                isinstance(node.value, ast.Call)
                and _opens_span(node.value)
            ):
                found.append(self.violation(
                    module, node,
                    "span handle discarded — the span is never "
                    "entered; use `with ....span(...):`",
                ))
            elif isinstance(node, ast.Assign) and (
                isinstance(node.value, ast.Call)
                and _opens_span(node.value)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                opened.append((node.targets[0].id, node))
        if not opened:
            return
        sanctioned = self._sanctioned_names(body)
        for name, node in opened:
            if name not in sanctioned:
                found.append(self.violation(
                    module, node,
                    "span handle `%s` is opened but never entered, "
                    "finished or released on any path" % name,
                ))

    def _scope_walk(self, body: List[ast.stmt]) -> List[ast.AST]:
        """Every node of *body* excluding nested function/class
        scopes (they are checked as their own scopes)."""
        out: List[ast.AST] = []
        stack: List[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            out.append(node)
            if isinstance(node, (ast.FunctionDef,
                                 ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue  # nested scope: analyzed on its own
            stack.extend(ast.iter_child_nodes(node))
        return out

    def _sanctioned_names(self, body: List[ast.stmt]) -> Set[str]:
        """Names whose handle demonstrably gets a chance to close:
        entered by a ``with``, passed to any call (``finish(h)``),
        closed directly (``h.end_ms = ...``), returned/yielded, or
        aliased/stored somewhere that outlives the scope."""
        names: Set[str] = set()
        for node in self._scope_walk(body):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    names.update(_names_in(item.context_expr))
            elif isinstance(node, ast.Call):
                for arg in node.args:
                    names.update(_names_in(arg))
                for keyword in node.keywords:
                    names.update(_names_in(keyword.value))
            elif isinstance(node, ast.Return) and node.value is not None:
                names.update(_names_in(node.value))
            elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                if node.value is not None:
                    names.update(_names_in(node.value))
            elif isinstance(node, ast.Assign):
                if not (isinstance(node.value, ast.Call)
                        and _opens_span(node.value)):
                    names.update(_names_in(node.value))
                for target in node.targets:
                    if isinstance(target, ast.Attribute):
                        # h.end_ms = ... closes; self.h = h escapes
                        # via the value branch above.
                        names.update(_names_in(target.value))
                    elif isinstance(target, ast.Subscript):
                        names.update(_names_in(target.value))
        return names


def _names_in(node: ast.AST) -> Set[str]:
    """Bare identifiers referenced anywhere inside *node*."""
    return {
        child.id for child in ast.walk(node)
        if isinstance(child, ast.Name)
    }
