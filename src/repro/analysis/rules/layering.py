"""layering — core/services reach native stores only via adapters.

Paper Section 4.2: data stores join the GUP community *through an
adapter* that gives them a GUP-compliant interface. The moment
``repro.core`` or ``repro.services`` imports ``repro.stores`` directly
it starts depending on one store's native record shapes, and the whole
"enter once, share everywhere" indirection collapses into point-to-
point coupling. Type-only imports (inside ``if TYPE_CHECKING:``) are
permitted — annotations do not create runtime coupling.
"""

from __future__ import annotations

import ast
from typing import List, Union

from repro.analysis.framework import ModuleInfo, Rule, Violation

__all__ = ["LayeringRule"]

_FORBIDDEN_PREFIX = "repro.stores"


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name) and test.id == "TYPE_CHECKING":
        return True
    return (
        isinstance(test, ast.Attribute)
        and test.attr == "TYPE_CHECKING"
        and isinstance(test.value, ast.Name)
        and test.value.id == "typing"
    )


class LayeringRule(Rule):
    """Bans direct ``repro.stores`` imports from core/ and services/."""

    name = "layering"
    description = (
        "core/ and services/ import stores only through repro.adapters "
        "(type-only imports under TYPE_CHECKING are allowed)"
    )
    prefixes = ("repro/core/", "repro/services/")

    def check(self, module: ModuleInfo) -> List[Violation]:
        found: List[Violation] = []
        self._walk(module, module.tree.body, found,
                   type_checking=False)
        return found

    def _walk(self, module: ModuleInfo, body: List[ast.stmt],
              found: List[Violation], type_checking: bool) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                if not type_checking:
                    self._check_import(module, stmt, found)
            elif isinstance(stmt, ast.If):
                nested = type_checking or _is_type_checking_test(stmt.test)
                self._walk(module, stmt.body, found, nested)
                self._walk(module, stmt.orelse, found, type_checking)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                self._walk(module, stmt.body, found, type_checking)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._walk(module, stmt.body, found, type_checking)
            elif isinstance(stmt, ast.Try):
                self._walk(module, stmt.body, found, type_checking)
                for handler in stmt.handlers:
                    self._walk(module, handler.body, found, type_checking)
                self._walk(module, stmt.orelse, found, type_checking)
                self._walk(module, stmt.finalbody, found, type_checking)
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                self._walk(module, stmt.body, found, type_checking)
                self._walk(module, stmt.orelse, found, type_checking)

    def _check_import(
        self,
        module: ModuleInfo,
        stmt: Union[ast.Import, ast.ImportFrom],
        found: List[Violation],
    ) -> None:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if self._forbidden(alias.name):
                    found.append(self.violation(
                        module, stmt,
                        "direct store import `import %s` — go through "
                        "repro.adapters" % alias.name,
                    ))
            return
        target = stmt.module or ""
        if stmt.level > 0:
            # Relative: `from ..stores import x` / `from ..stores.hlr ...`
            if target == "stores" or target.startswith("stores."):
                found.append(self.violation(
                    module, stmt,
                    "direct store import `from %s%s import ...` — go "
                    "through repro.adapters" % ("." * stmt.level, target),
                ))
            return
        if self._forbidden(target):
            found.append(self.violation(
                module, stmt,
                "direct store import `from %s import %s` — go through "
                "repro.adapters"
                % (target, ", ".join(a.name for a in stmt.names)),
            ))

    @staticmethod
    def _forbidden(dotted: str) -> bool:
        return (
            dotted == _FORBIDDEN_PREFIX
            or dotted.startswith(_FORBIDDEN_PREFIX + ".")
        )
