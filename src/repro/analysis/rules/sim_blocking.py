"""sim-blocking — no wall-clock sleeps or blocking I/O inside simnet.

The discrete-event engine advances a *virtual* clock; every simnet
event handler runs to completion instantly in host time. A real
``time.sleep`` inside one stalls the whole simulation without moving
virtual time (latency belongs in :meth:`Simulator.schedule` delays),
and blocking I/O (sockets, files, subprocesses) makes event timing
depend on the host — both destroy the reproducibility the benchmarks
rely on. This rule bans the blocking primitives and the imports that
smuggle them in.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.framework import ModuleInfo, Rule, Violation

__all__ = ["SimBlockingRule"]

#: Modules whose very import into simnet signals blocking intent.
_BLOCKING_MODULES = frozenset({
    "time", "socket", "subprocess", "threading", "multiprocessing",
    "requests", "urllib", "http", "asyncio", "select",
})
#: Bare-name calls that block.
_BLOCKING_NAME_CALLS = frozenset({"open", "input", "sleep"})
#: Attribute calls that block regardless of receiver.
_BLOCKING_ATTR_CALLS = frozenset({"sleep"})


class SimBlockingRule(Rule):
    """Bans sleeps and blocking I/O inside simnet event handlers."""

    name = "sim-blocking"
    description = (
        "simnet event handlers never sleep or do blocking I/O — "
        "latency is modelled with Simulator.schedule delays"
    )
    prefixes = ("repro/simnet/",)

    def check(self, module: ModuleInfo) -> List[Violation]:
        found: List[Violation] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _BLOCKING_MODULES:
                        found.append(self.violation(
                            module, node,
                            "blocking module `import %s` inside simnet "
                            "— simulated latency uses virtual time"
                            % alias.name,
                        ))
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if node.level == 0 and root in _BLOCKING_MODULES:
                    found.append(self.violation(
                        module, node,
                        "blocking module `from %s import ...` inside "
                        "simnet" % node.module,
                    ))
            elif isinstance(node, ast.Call):
                self._check_call(module, node, found)
        return found

    def _check_call(self, module: ModuleInfo, node: ast.Call,
                    found: List[Violation]) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in _BLOCKING_NAME_CALLS:
                found.append(self.violation(
                    module, node,
                    "blocking call %s() inside simnet — event handlers "
                    "must return immediately" % func.id,
                ))
        elif isinstance(func, ast.Attribute):
            if func.attr in _BLOCKING_ATTR_CALLS:
                found.append(self.violation(
                    module, node,
                    "blocking call .%s() inside simnet — model the "
                    "delay with Simulator.schedule" % func.attr,
                ))
