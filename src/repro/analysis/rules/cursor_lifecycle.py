"""cursor-lifecycle — bus replay cursors are not reused stale.

A replay cursor snapshot (``bus.cursor("mirror")``) is a *point in
the log*, valid only until the log moves underneath it: an
``append`` arms the next wave (whose flush advances the live
cursors past the snapshot) and a ``compact`` may physically drop the
records the snapshot still points at.  Replaying from a stale
snapshot (``log.since(cur)`` / ``log.backlog(cur)``) silently skips
or double-counts changes — the exact class of bug the E20
crash/resume gate exists to catch, here caught statically.

The typestate is per local variable over the function CFG:

* ``x = <bus-ish>.cursor(...)`` puts ``x`` in the FRESH state;
* any ``append(...)`` / ``compact(...)`` call on a bus/log-ish
  receiver moves **every** live snapshot to STALE (the log may have
  moved past all of them);
* using a STALE snapshot in ``since(...)`` / ``backlog(...)`` on a
  bus/log-ish receiver is the violation;
* re-obtaining the snapshot (``x = bus.cursor(...)`` again) makes it
  FRESH on that path.

Join is must-fresh: a snapshot stale on *any* incoming path is stale
at the merge — replay safety has to hold on every path.  Receivers
are recognized by the same trailing-identifier heuristic the
shield-egress rule uses for log/bus objects (``bus``, ``log``,
``*_bus``, ``*_log``, ``self._logs[...]``).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.analysis.framework import ModuleInfo, Violation
from repro.analysis.rules._typestate import (
    TypestateMachine,
    TypestateRule,
)

__all__ = ["CursorLifecycleRule"]

_FRESH = "fresh"
_STALE = "stale"

#: State: snapshot variable -> _FRESH | _STALE.
_State = Dict[str, str]

#: Calls that move the log underneath live snapshots.
_MOVERS = frozenset({"append", "compact"})

#: Calls that replay from a snapshot argument.
_REPLAYERS = frozenset({"since", "backlog"})


def _trailing_identifier(node: ast.AST) -> Optional[str]:
    """``bus`` / ``self._log`` / ``self._logs[k]`` → the last
    attribute-ish identifier."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        return _trailing_identifier(node.value)
    return None


def _busish(node: ast.AST) -> bool:
    name = _trailing_identifier(node)
    if name is None:
        return False
    name = name.lstrip("_").lower()
    return (
        name in ("bus", "log", "logs", "changelog", "changebus")
        or name.endswith("_bus") or name.endswith("_log")
        or name.endswith("_logs")
    )


def _names_in(node: ast.AST) -> Set[str]:
    return {
        child.id for child in ast.walk(node)
        if isinstance(child, ast.Name)
    }


def _calls_in(stmt: ast.stmt) -> List[ast.Call]:
    """Calls the statement's own evaluation performs.  Compound
    bodies live in other CFG blocks; only headers are scanned."""
    if isinstance(stmt, (ast.If, ast.While)):
        roots: List[ast.AST] = [stmt.test]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        roots = [stmt.iter]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        roots = [item.context_expr for item in stmt.items]
    elif isinstance(stmt, ast.Try):
        roots = []
    elif isinstance(
        stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        roots = []  # nested scope: its calls run later, elsewhere
    else:
        roots = [stmt]
    calls: List[ast.Call] = []
    for root in roots:
        calls.extend(
            node for node in ast.walk(root)
            if isinstance(node, ast.Call)
        )
    return calls


def _snapshot_bind(stmt: ast.stmt) -> Optional[str]:
    """``name = <bus-ish>.cursor(...)`` → ``name``."""
    if (
        isinstance(stmt, ast.Assign)
        and len(stmt.targets) == 1
        and isinstance(stmt.targets[0], ast.Name)
        and isinstance(stmt.value, ast.Call)
        and isinstance(stmt.value.func, ast.Attribute)
        and stmt.value.func.attr == "cursor"
        and _busish(stmt.value.func.value)
    ):
        return stmt.targets[0].id
    return None


class _CursorMachine(TypestateMachine):
    def initial(self) -> _State:
        return {}

    def join(self, left: _State, right: _State) -> _State:
        # Must-fresh: differing marks at a merge go stale; a snapshot
        # live on only one branch keeps that branch's mark.
        merged = dict(left)
        for name, mark in right.items():
            merged[name] = (
                mark if merged.get(name, mark) == mark else _STALE
            )
        return merged

    def step(self, state: _State, stmt: ast.stmt) -> _State:
        bound = _snapshot_bind(stmt)
        if bound is not None:
            new = dict(state)
            new[bound] = _FRESH
            return new
        moved = any(
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _MOVERS
            and _busish(call.func.value)
            for call in _calls_in(stmt)
        )
        if moved and state:
            return {name: _STALE for name in state}
        if isinstance(stmt, ast.Assign):
            # Rebinding to anything else forgets the snapshot.
            targets = {
                target.id for target in stmt.targets
                if isinstance(target, ast.Name)
            }
            if targets & set(state):
                return {
                    name: mark for name, mark in state.items()
                    if name not in targets
                }
        return state

    def observe(
        self,
        state: _State,
        stmt: ast.stmt,
        module: ModuleInfo,
        found: List[Violation],
    ) -> None:
        for call in _calls_in(stmt):
            if not (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in _REPLAYERS
                and _busish(call.func.value)
            ):
                continue
            used: Set[str] = set()
            for arg in call.args:
                used |= _names_in(arg)
            for keyword in call.keywords:
                used |= _names_in(keyword.value)
            for name in sorted(used):
                if state.get(name) == _STALE:
                    found.append(_RULE.violation(
                        module, stmt,
                        "replay cursor `%s` is stale — the log moved "
                        "(append/compact) after the snapshot; re-read "
                        "it with .cursor() before replaying" % name,
                    ))


class CursorLifecycleRule(TypestateRule):
    """Flags replay from a cursor snapshot the log moved past."""

    name = "cursor-lifecycle"
    description = (
        "a bus replay cursor snapshot must be re-read after the log "
        "moves (append/compact) — stale replay skips or double-"
        "counts changes"
    )
    prefixes = ("repro/",)

    def machine(
        self, module: ModuleInfo, scope: ast.AST
    ) -> Optional[TypestateMachine]:
        if ".cursor(" not in module.source:
            return None
        return _CursorMachine()


#: Violation factory shared with the machine.
_RULE = CursorLifecycleRule()
