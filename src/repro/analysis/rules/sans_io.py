"""sans-io-purity — the protocol core stays off the wire.

ROADMAP item 2 refactors the query engine sans-io style: protocol
logic yields I/O *intents* and a driver (simnet today, a real
transport tomorrow) performs them.  That refactor is only tractable
if the boundary is real — so this rule pins it, machine-checked, on
every run:

    every function in ``repro/core/``, ``repro/pxml/`` and
    ``repro/sansio/`` (and the pure replay structure
    ``repro/bus/log.py``) must infer as ``pure`` or
    ``virtual-time``.

``virtual-time`` is allowed because charging the Trace cost ledger
*is* the intent layer — the engine records what a hop would cost
without sampling the wire.  ``transport`` (direct
``network.sample_hop`` / fault injection, however many calls deep)
and ``wall-io`` (real clocks, files, sockets) mean protocol logic
has grown a driver dependency that the refactor would have to
untangle; cheaper to keep it out now.  Effects come from the
interprocedural summary fixpoint
(:mod:`repro.analysis.interproc.effects`), so a violation names the
function whose *transitive* behaviour crosses the line — the fix is
to move the wire code behind an injected callback or into
``bus``/``simnet``, as PR 7 did for the legacy ``start_push`` path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.analysis.framework import (
    ModuleInfo, ProjectRule, Violation,
)
from repro.analysis.interproc.effects import (
    EFFECT_PURE, EFFECT_VIRTUAL_TIME,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.ir.project import Project

__all__ = ["SansIoPurityRule"]

#: Effect tiers the sans-io core may carry.
_ALLOWED = (EFFECT_PURE, EFFECT_VIRTUAL_TIME)


class SansIoPurityRule(ProjectRule):
    """Flags transport/wall-io effects inside the sans-io core."""

    name = "sans-io-purity"
    description = (
        "core/, pxml/, sansio/ and bus/log.py are the sans-io "
        "boundary: every function there must be pure or virtual-time "
        "— transport stays behind bus/, simnet/ and serve/"
    )
    prefixes = (
        "repro/core/", "repro/pxml/", "repro/bus/log.py",
        # The sans-io engine itself is the boundary's whole point:
        # programs yield intents, drivers perform them. Nothing under
        # repro/sansio/ may touch the wire — the drivers live in
        # simnet/ (virtual) and serve/ (wall).
        "repro/sansio/",
    )
    severity = "error"

    def check_module(self, project: "Project",
                     module: ModuleInfo) -> List[Violation]:
        pmodule = project.by_relpath.get(module.relpath)
        if pmodule is None:  # pragma: no cover - defensive
            return []
        engine = project.taint
        found: List[Violation] = []
        for fn in pmodule.symbols.all_functions():
            summary = engine.summary_of(fn.qualname)
            if summary is None or summary.effect in _ALLOWED:
                continue
            found.append(Violation(
                self.name, module.relpath,
                fn.node.lineno, fn.node.col_offset,
                "%s infers as `%s` inside the sans-io core — "
                "protocol logic must stay pure/virtual-time; move "
                "the I/O behind an injected driver (bus/, simnet/)"
                % (fn.qualname, summary.effect),
                severity=self.severity,
            ))
        return found
