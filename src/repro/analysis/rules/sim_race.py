"""sim-race: same-timestamp callbacks mutating the same attribute.

The discrete-event analog of a data race: two callbacks scheduled for
the *same* virtual timestamp whose relative order is a heap tie-break
detail, both mutating the same store/engine attribute.  The simulator
breaks ties deterministically by sequence number, but the *program's*
result then silently depends on the textual order of the ``schedule``
calls — refactoring reorders history.  The fix is one callback, an
explicit offset, or commutative updates.

Heuristic (intra-module, syntactic): within one scope, two
``schedule`` / ``schedule_at`` / ``every`` calls on a simulator-ish
receiver whose time argument is the *same expression* and whose
callbacks (lambdas, local functions, same-class methods) write
intersecting ``<receiver>.<attr>`` footprints.
"""

from __future__ import annotations

import ast
import itertools
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.framework import ModuleInfo, Rule, Violation

__all__ = ["SimRaceRule"]

_SCHEDULERS = frozenset({"schedule", "schedule_at", "every"})

#: Method calls that mutate their receiver in place.
_MUTATORS = frozenset({
    "append", "add", "update", "extend", "insert", "remove",
    "discard", "pop", "popitem", "clear", "setdefault",
})


def _receiver_text(expr: ast.expr) -> str:
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    parts.reverse()
    return ".".join(parts)


def _sim_ish(expr: ast.expr) -> bool:
    text = _receiver_text(expr).lower()
    tail = text.rsplit(".", 1)[-1]
    return (
        tail in ("sim", "simulator")
        or tail.endswith("_sim")
        or tail.startswith("sim_")
    )


def _mutation_footprint(body: List[ast.stmt]) -> Set[str]:
    """``receiver.attr`` strings written anywhere in *body*."""
    writes: Set[str] = set()
    for stmt in body:
        for node in ast.walk(stmt):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ) and node.func.attr in _MUTATORS:
                targets = [node.func.value]
            for target in targets:
                if isinstance(target, ast.Subscript):
                    target = target.value
                if isinstance(target, ast.Attribute):
                    text = _receiver_text(target)
                    if text:
                        writes.add(text)
    return writes


class SimRaceRule(Rule):
    """Flags same-timestamp callbacks with intersecting mutation
    footprints (discrete-event data race)."""

    name = "sim-race"
    description = (
        "two callbacks scheduled at the same virtual timestamp must "
        "not mutate the same attribute (heap tie-break race)"
    )
    prefixes = ("repro/",)
    severity = "error"

    def check(self, module: ModuleInfo) -> List[Violation]:
        found: List[Violation] = []
        index = _CallbackIndex(module.tree)
        for scope in _scopes(module.tree):
            found.extend(self._check_scope(module, scope, index))
        return found

    def _check_scope(
        self,
        module: ModuleInfo,
        scope: List[ast.stmt],
        index: "_CallbackIndex",
    ) -> List[Violation]:
        # (scheduler, time-expr dump) -> scheduled callbacks.
        groups: Dict[Tuple[str, str], List[Tuple[ast.Call, str, Set[str]]]] = {}
        for stmt in scope:
            for node in _walk_scope(stmt):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _SCHEDULERS
                    and _sim_ish(node.func.value)
                    and node.args
                ):
                    continue
                time_key = ast.dump(node.args[0])
                callback = (
                    node.args[1] if len(node.args) > 1 else None
                )
                if callback is None:
                    for kw in node.keywords:
                        if kw.arg in ("callback", "fn", "func"):
                            callback = kw.value
                            break
                if callback is None:
                    continue
                label, writes = index.footprint(callback)
                groups.setdefault(
                    (node.func.attr, time_key), []
                ).append((node, label, writes))
        found: List[Violation] = []
        for (scheduler, _), entries in sorted(
            groups.items(), key=lambda item: item[0]
        ):
            if len(entries) < 2:
                continue
            for (_, label_a, writes_a), (node_b, label_b, writes_b) \
                    in itertools.combinations(entries, 2):
                shared = writes_a & writes_b
                if not shared:
                    continue
                found.append(self.violation(
                    module, node_b,
                    "callbacks %s and %s are %s()d for the same "
                    "virtual timestamp and both mutate '%s' — "
                    "event order is a heap tie-break detail"
                    % (label_a, label_b, scheduler,
                       sorted(shared)[0]),
                ))
        return found


def _scopes(tree: ast.Module) -> List[List[ast.stmt]]:
    """Module body + every function body (methods included)."""
    picked: List[List[ast.stmt]] = [list(tree.body)]
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            picked.append(list(node.body))
    return picked


def _walk_scope(stmt: ast.stmt) -> List[ast.AST]:
    """Like ``ast.walk`` but without descending into nested
    function/class definitions — those are scanned as their own
    scopes, so descending here would double-count every group."""
    if isinstance(
        stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        return []  # a nested scope of its own
    picked: List[ast.AST] = []
    pending: List[ast.AST] = [stmt]
    while pending:
        node = pending.pop()
        picked.append(node)
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                continue
            pending.append(child)
    return picked


class _CallbackIndex:
    """Resolves callback references to mutation footprints."""

    def __init__(self, tree: ast.Module) -> None:
        #: function/method name -> body (last definition wins; the
        #: rule is a syntactic heuristic, not a binder).
        self._bodies: Dict[str, List[ast.stmt]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.FunctionDef):
                self._bodies[node.name] = list(node.body)

    def footprint(
        self, callback: ast.expr
    ) -> Tuple[str, Set[str]]:
        """(display label, attributes written) for a callback ref."""
        if isinstance(callback, ast.Lambda):
            body = [ast.Expr(value=callback.body)]
            return "<lambda>", _mutation_footprint(body)
        name = self._callback_name(callback)
        if name is not None and name in self._bodies:
            return name, _mutation_footprint(self._bodies[name])
        return _receiver_text(callback) or "<callback>", set()

    @staticmethod
    def _callback_name(callback: ast.expr) -> Optional[str]:
        if isinstance(callback, ast.Name):
            return callback.id
        if isinstance(callback, ast.Attribute):
            return callback.attr
        return None
