"""shield-egress-ip: whole-program privacy-shield egress tracking.

The v1 ``shield-egress`` rule proves the shield invariant per class
inside ``core/server|query|cache``.  This rule ports it onto the
interprocedural taint engine so raw profile data is tracked from every
store/adapter/cache/sync source, through any number of helper calls
across ``services/``, ``sync/``, ``core/subscription.py`` and
``core/referral.py``, to the egress surface: any function that serves
a :class:`~repro.access.context.RequestContext` (PAPER §5.2 — *every*
egress passes the shield).

A violation means a context-taking function can return (or hand to a
network send sink) data carrying the ``src`` taint label with no
``enforce`` / ``_shield_cached`` call on the path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.analysis.framework import (
    ModuleInfo, ProjectRule, Violation,
)
from repro.analysis.interproc.taint import takes_request_context

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.ir.project import Project

__all__ = ["ShieldEgressInterprocRule"]


class ShieldEgressInterprocRule(ProjectRule):
    """Whole-program shield-egress: interprocedural taint from
    every profile-data source to return/send sinks, with the
    privacy shield as the only sanitizer."""

    name = "shield-egress-ip"
    description = (
        "every profile egress serving a RequestContext must pass "
        "the privacy shield (whole-program taint)"
    )
    prefixes = ("repro/",)
    severity = "error"

    def check_module(self, project: "Project",
                     module: ModuleInfo) -> List[Violation]:
        pmodule = project.by_relpath.get(module.relpath)
        if pmodule is None:  # pragma: no cover - defensive
            return []
        engine = project.taint
        found: List[Violation] = []
        for fn in pmodule.symbols.all_functions():
            summary = engine.summary_of(fn.qualname)
            if summary is None or summary.sanitizes:
                continue
            for line, col, sink in summary.egress_sends:
                found.append(Violation(
                    self.name, module.relpath, line, col,
                    "%s hands raw profile data to network sink "
                    "'%s' without passing the privacy shield"
                    % (fn.qualname, sink),
                    severity=self.severity,
                ))
            if not takes_request_context(fn):
                continue
            for line in summary.tainted_return_lines:
                found.append(Violation(
                    self.name, module.relpath, line, 0,
                    "%s serves a RequestContext but returns raw "
                    "profile data that never passed the privacy "
                    "shield (pep.enforce)" % fn.qualname,
                    severity=self.severity,
                ))
        return found
