"""handler-reentrancy: scheduled callbacks must not re-enter the loop.

A discrete-event callback that calls ``Simulator.run`` / ``step`` /
``advance`` re-enters the event loop from inside an event: the heap is
popped recursively, ``now`` jumps while the outer frame still holds
the old clock, and cancelled-timer compaction runs under a frame that
still iterates the heap.  The engine is not re-entrant by design
(``simnet/engine.py``), so this is always a bug.

Whole-program: the re-entry may be buried arbitrarily deep — this
rule checks the ``reaches_sim_run`` bit of the interprocedural
summary of every callback handed to ``schedule`` / ``schedule_at`` /
``every`` on a simulator receiver (lambdas are walked inline).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, List, Optional

from repro.analysis.framework import (
    ModuleInfo, ProjectRule, Violation,
)
from repro.analysis.interproc.taint import SIM_RUN_METHODS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.interproc.taint import TaintEngine
    from repro.analysis.ir.project import Project
    from repro.analysis.ir.symbols import FunctionInfo

#: Scheduling entry points on the simulator.
_SCHEDULERS = frozenset({"schedule", "schedule_at", "every"})

__all__ = ["HandlerReentrancyRule"]


class HandlerReentrancyRule(ProjectRule):
    """Flags scheduled callbacks that re-enter the simulator
    loop (``run``/``step``/``advance``), transitively."""

    name = "handler-reentrancy"
    description = (
        "callbacks scheduled on the simulator must not re-enter "
        "Simulator.run/step/advance"
    )
    prefixes = ("repro/",)
    severity = "error"

    def check_module(self, project: "Project",
                     module: ModuleInfo) -> List[Violation]:
        pmodule = project.by_relpath.get(module.relpath)
        if pmodule is None:  # pragma: no cover - defensive
            return []
        engine = project.taint
        found: List[Violation] = []
        for fn in pmodule.symbols.all_functions():
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not (
                    isinstance(func, ast.Attribute)
                    and func.attr in _SCHEDULERS
                    and engine.sim_receiver(func.value, fn)
                ):
                    continue
                for candidate in list(node.args) + [
                    kw.value for kw in node.keywords
                ]:
                    offender = self._reentrant_callback(
                        project, engine, fn, candidate
                    )
                    if offender is not None:
                        found.append(Violation(
                            self.name, module.relpath,
                            node.lineno, node.col_offset,
                            "callback %s scheduled via %s() "
                            "re-enters the simulator loop "
                            "(Simulator.run/step/advance) — the "
                            "engine is not re-entrant"
                            % (offender, func.attr),
                            severity=self.severity,
                        ))
        return found

    def _reentrant_callback(
        self,
        project: "Project",
        engine: "TaintEngine",
        fn: "FunctionInfo",
        expr: ast.expr,
    ) -> Optional[str]:
        """Name of the offending callback, or None when safe."""
        target = self._callback_target(project, engine, fn, expr)
        if target is not None:
            summary = engine.summary_of(target.qualname)
            if summary is not None and summary.reaches_sim_run:
                return target.qualname
            return None
        if isinstance(expr, ast.Lambda):
            for node in ast.walk(expr.body):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in SIM_RUN_METHODS
                    and engine.sim_receiver(func.value, fn)
                ):
                    return "<lambda>"
                for callee in engine.resolver.resolve(
                    node, fn
                ).targets:
                    summary = engine.summary_of(callee.qualname)
                    if summary is not None \
                            and summary.reaches_sim_run:
                        return "<lambda>"
        return None

    @staticmethod
    def _callback_target(
        project: "Project",
        engine: "TaintEngine",
        fn: "FunctionInfo",
        expr: ast.expr,
    ) -> Optional["FunctionInfo"]:
        """Resolve a callback *reference* (not a call) to a project
        function: bare names via the alias map, ``self.m`` /
        ``obj.m`` via receiver typing."""
        if isinstance(expr, ast.Name):
            module = project.modules.get(fn.module_name)
            if module is None:  # pragma: no cover - defensive
                return None
            absolute = module.symbols.resolve_local(expr.id)
            if absolute is None:
                return None
            return project.functions.get(absolute)
        if isinstance(expr, ast.Attribute):
            owner = engine.resolver.receiver_class(
                expr.value, fn
            )
            if owner is None:
                return None
            return project.method_on(owner, expr.attr)
        return None
