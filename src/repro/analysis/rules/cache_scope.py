"""cache-key-scope — cache traffic always carries the requester scope.

The component cache sits *behind* the privacy shield; its keys are
(path, requester-scope) pairs precisely so a fragment cached for
requester A can never satisfy requester B (core/cache.py docstring,
PR 1 regression). A single ``cache.put(path, fragment, now)`` call
without a ``scope=`` quietly recreates the shield bypass: the entry
lands in the anonymous scope and leaks to whoever asks next. This rule
makes that bug structurally impossible to reintroduce in ``core/``,
``services/``, ``tests/`` and ``benchmarks/``: every
``get``/``get_stale``/``put`` — and their E19 batch counterparts
``get_many``/``put_many`` — on a cache-like receiver must pass an
explicit, non-empty ``scope``.

``invalidate``/``clear`` are deliberately exempt — update triggers must
drop *every* scope's slice of a changed component.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.analysis.framework import ModuleInfo, Rule, Violation

__all__ = ["CacheKeyScopeRule"]

#: Method name -> 0-based positional index where ``scope`` lives, so a
#: positional pass-through also satisfies the rule. ``get_many`` /
#: ``put_many`` are the E19 batch-path counterparts: one unscoped bulk
#: call would leak a whole batch at once, so they carry the same
#: obligation.
_SCOPED_METHODS = {
    "get": 2, "get_stale": 2, "put": 4,
    "get_many": 2, "put_many": 2,
}


def _receiver_parts(expr: ast.expr) -> List[str]:
    """Identifier parts of a dotted receiver (``self.cache`` ->
    ``["self", "cache"]``)."""
    parts: List[str] = []
    node: Optional[ast.expr] = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    parts.reverse()
    return parts


class CacheKeyScopeRule(Rule):
    """Requires requester scope on every cache get/get_stale/put."""

    name = "cache-key-scope"
    description = (
        "cache get/get_stale/put calls in core/ and services/ pass an "
        "explicit non-empty requester scope"
    )
    prefixes = (
        "repro/core/", "repro/services/", "tests/", "benchmarks/",
    )

    def check(self, module: ModuleInfo) -> List[Violation]:
        found: List[Violation] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in _SCOPED_METHODS:
                continue
            parts = _receiver_parts(func.value)
            if not any("cache" in part.lower() for part in parts):
                continue
            self._check_scope(module, node, func.attr, found)
        return found

    def _check_scope(self, module: ModuleInfo, node: ast.Call,
                     method: str, found: List[Violation]) -> None:
        scope_value: Optional[ast.expr] = None
        for keyword in node.keywords:
            if keyword.arg == "scope":
                scope_value = keyword.value
                break
            if keyword.arg is None:
                return  # **kwargs splat: cannot prove either way
        if scope_value is None:
            position = _SCOPED_METHODS[method]
            if len(node.args) > position:
                scope_value = node.args[position]
        if scope_value is None:
            found.append(self.violation(
                module, node,
                "cache %s() without scope= — unscoped entries leak "
                "across requesters (the PR 1 shield bypass)" % method,
            ))
            return
        if (isinstance(scope_value, ast.Constant)
                and scope_value.value == ""):
            found.append(self.violation(
                module, node,
                "cache %s() with empty scope — pass the requester's "
                "context.cache_scope()" % method,
            ))
