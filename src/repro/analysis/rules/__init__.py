"""The repo-specific gupcheck rules (one module per rule)."""

from __future__ import annotations

from typing import List

from repro.analysis.framework import Rule
from repro.analysis.rules.cache_scope import CacheKeyScopeRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.exceptions import ExceptionTotalityRule
from repro.analysis.rules.layering import LayeringRule
from repro.analysis.rules.shield_egress import ShieldEgressRule
from repro.analysis.rules.sim_blocking import SimBlockingRule

#: Rule classes in report order.
ALL_RULES = (
    ShieldEgressRule,
    DeterminismRule,
    LayeringRule,
    ExceptionTotalityRule,
    CacheKeyScopeRule,
    SimBlockingRule,
)

__all__ = [
    "ALL_RULES",
    "CacheKeyScopeRule",
    "DeterminismRule",
    "ExceptionTotalityRule",
    "LayeringRule",
    "ShieldEgressRule",
    "SimBlockingRule",
    "default_rules",
]


def default_rules() -> List[Rule]:
    """Fresh instances of every rule, in report order."""
    return [rule_class() for rule_class in ALL_RULES]
