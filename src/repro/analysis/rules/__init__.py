"""The repo-specific gupcheck rules (one module per rule).

Intra-module rules see one :class:`~repro.analysis.framework.ModuleInfo`
at a time; whole-program rules (``shield-egress-ip``,
``handler-reentrancy``) subclass
:class:`~repro.analysis.framework.ProjectRule` and run on the
project IR with interprocedural taint summaries.
"""

from __future__ import annotations

from typing import List

from repro.analysis.framework import Rule
from repro.analysis.rules.cache_scope import CacheKeyScopeRule
from repro.analysis.rules.container_growth import (
    ContainerGrowthRule,
)
from repro.analysis.rules.cursor_lifecycle import CursorLifecycleRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.exceptions import ExceptionTotalityRule
from repro.analysis.rules.handler_reentrancy import (
    HandlerReentrancyRule,
)
from repro.analysis.rules.iter_order import IterOrderRule
from repro.analysis.rules.layering import LayeringRule
from repro.analysis.rules.memo_confinement import MemoConfinementRule
from repro.analysis.rules.sans_io import SansIoPurityRule
from repro.analysis.rules.shield_egress import ShieldEgressRule
from repro.analysis.rules.shield_egress_ip import (
    ShieldEgressInterprocRule,
)
from repro.analysis.rules.sim_blocking import SimBlockingRule
from repro.analysis.rules.sim_race import SimRaceRule
from repro.analysis.rules.span_balance import SpanBalanceRule

#: Rule classes in report order.
ALL_RULES = (
    ShieldEgressRule,
    ShieldEgressInterprocRule,
    DeterminismRule,
    LayeringRule,
    ExceptionTotalityRule,
    CacheKeyScopeRule,
    SimBlockingRule,
    SimRaceRule,
    IterOrderRule,
    HandlerReentrancyRule,
    SpanBalanceRule,
    CursorLifecycleRule,
    MemoConfinementRule,
    SansIoPurityRule,
    ContainerGrowthRule,
)

__all__ = [
    "ALL_RULES",
    "CacheKeyScopeRule",
    "ContainerGrowthRule",
    "CursorLifecycleRule",
    "DeterminismRule",
    "ExceptionTotalityRule",
    "HandlerReentrancyRule",
    "IterOrderRule",
    "LayeringRule",
    "MemoConfinementRule",
    "SansIoPurityRule",
    "ShieldEgressInterprocRule",
    "ShieldEgressRule",
    "SimBlockingRule",
    "SimRaceRule",
    "SpanBalanceRule",
    "default_rules",
]


def default_rules() -> List[Rule]:
    """Fresh instances of every rule, in report order."""
    return [rule_class() for rule_class in ALL_RULES]
