"""container-growth — every long-lived container must be bounded.

The whole-program resource-bound rule (gupcheck v4, DESIGN.md §4.8):
the :class:`~repro.analysis.interproc.growth.GrowthAnalysis` engine
classifies every container attribute of a long-lived class (and every
module-level container) as **bounded**, **evicting**, **declared** or
**unbounded** — this rule reports the ``unbounded`` verdicts, plus the
declared-bound audit findings:

* an unbounded verdict names the field, its kind, and its grow sites,
  and states the three remedies (cap the growth, evict on a path the
  grow path triggers, or declare ``# gupcheck: bounded[reason] --
  justification`` on the defining line);
* a ``bounded[...]`` declaration with an empty reason, a missing
  justification, or attached to nothing the engine tracks is itself a
  violation — the declared-bound surface is audited exactly like
  suppressions, so it cannot silently rot.

The rule is **uncacheable** (``cacheable = False``): a verdict's
evidence can live outside the owning module's import cone (a helper
in another module growing the field through a parameter, a subclass
in a third module evicting it), so per-module deep-sha caching could
replay a stale verdict.  The engine itself runs once per analysis on
the shared project IR, so the re-check is cheap.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.analysis.framework import (
    ModuleInfo, ProjectRule, Violation,
)
from repro.analysis.interproc.growth import (
    ContainerField, VERDICT_UNBOUNDED,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.ir.project import Project

__all__ = ["ContainerGrowthRule"]


def _owner_label(field: ContainerField, owner_kind: str) -> str:
    if owner_kind == "module":
        return "module-level container `%s`" % field.name
    return "container field `%s.%s`" % (
        field.owner.rsplit(".", 1)[-1], field.name,
    )


class ContainerGrowthRule(ProjectRule):
    """Flags long-lived containers that grow without a reachable
    eviction, and audits declared-bound annotations."""

    name = "container-growth"
    description = (
        "every container of a long-lived class must be bounded, "
        "evicting on a grow path, or carry a justified "
        "`# gupcheck: bounded[...]` declaration"
    )
    prefixes = ("repro/",)
    #: Verdict evidence crosses module import cones (helpers,
    #: subclasses), so per-module deep-sha caching is unsound here.
    cacheable = False

    def check_module(self, project: "Project",
                     module: ModuleInfo) -> List[Violation]:
        growth = project.growth
        found: List[Violation] = []
        for owner_name in sorted(growth.owners):
            owner = growth.owners[owner_name]
            if owner.relpath != module.relpath:
                continue
            for name in sorted(owner.fields):
                field = owner.fields[name]
                if field.verdict != VERDICT_UNBOUNDED:
                    continue
                grows = sorted(
                    {site.op for site in field.grow_sites}
                )
                found.append(Violation(
                    self.name, module.relpath, field.line, 0,
                    "%s (%s) grows (%s) with no eviction reachable "
                    "from the grow path — cap it, evict on a path "
                    "the grow path triggers, or declare "
                    "`# gupcheck: bounded[reason] -- justification` "
                    "on the defining line"
                    % (
                        _owner_label(field, owner.kind),
                        field.kind,
                        ", ".join(grows),
                    ),
                ))
        for decl in growth.declarations.get(module.relpath, ()):
            if decl.attached_to is None:
                found.append(Violation(
                    self.name, module.relpath, decl.line, 0,
                    "bounded[] declaration attaches to no tracked "
                    "container — it must sit on (or directly above) "
                    "a long-lived container's defining assignment",
                ))
                continue
            if not decl.reason:
                found.append(Violation(
                    self.name, module.relpath, decl.line, 0,
                    "bounded[] declaration for %s names no bound — "
                    "state what limits the container (a vocabulary, "
                    "an invariant, a cap)" % decl.attached_to,
                ))
            if not decl.justification:
                found.append(Violation(
                    self.name, module.relpath, decl.line, 0,
                    "bounded[%s] declaration for %s requires a "
                    "justification after `--`"
                    % (decl.reason, decl.attached_to),
                ))
        return found
