"""determinism — simulated code must not read wall-clock or shared RNG.

The simulator's measurements (E1–E16) are only trustworthy if two runs
with the same seed produce byte-identical traces. Anything inside
``simnet/``, ``core/`` or ``workloads/`` that consults the host's
wall-clock (``time.time()``, ``datetime.now()``) or the shared
module-level ``random`` state (``random.random()``, seeding hidden
global state) silently couples results to the machine and the import
order. Virtual time comes from the :class:`~repro.simnet.Simulator`
clock; randomness from an injected, seeded ``random.Random``.

The rule also covers ``tests/`` and ``benchmarks/``: a test or a
benchmark that consults the wall-clock or shared RNG is flaky in
exactly the same way the simulated code would be.  Legitimate
wall-clock uses there (measuring the *harness's own* elapsed time)
carry a ``gupcheck: ignore[determinism]`` suppression with a
justification.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.framework import ModuleInfo, Rule, Violation

__all__ = ["DeterminismRule"]

#: time-module functions that read the host clock.
_CLOCK_FUNCS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "localtime", "gmtime",
})
#: datetime/date constructors that read the host clock.
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})
#: The only member of the random module deterministic code may touch:
#: an instance seeded by the caller.
_RANDOM_ALLOWED = frozenset({"Random"})


class DeterminismRule(Rule):
    """Bans wall-clock reads and module-level RNG in simulated code."""

    name = "determinism"
    description = (
        "simnet/core/workloads use the Simulator clock and injected "
        "seeded random.Random, never wall-clock time or module-level "
        "random state"
    )
    prefixes = (
        "repro/simnet/", "repro/core/", "repro/workloads/",
        "tests/", "benchmarks/",
    )

    def check(self, module: ModuleInfo) -> List[Violation]:
        found: List[Violation] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                self._check_call(module, node, found)
            elif isinstance(node, ast.ImportFrom):
                self._check_import_from(module, node, found)
        return found

    def _check_call(self, module: ModuleInfo, node: ast.Call,
                    found: List[Violation]) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        receiver = func.value
        if not isinstance(receiver, ast.Name):
            return
        if receiver.id == "time" and func.attr in _CLOCK_FUNCS:
            found.append(self.violation(
                module, node,
                "wall-clock read time.%s() — use the Simulator's "
                "virtual clock (sim.now)" % func.attr,
            ))
        elif (receiver.id in ("datetime", "date")
                and func.attr in _DATETIME_FUNCS):
            found.append(self.violation(
                module, node,
                "wall-clock read %s.%s() — simulated timestamps come "
                "from virtual time" % (receiver.id, func.attr),
            ))
        elif receiver.id == "random" and func.attr not in _RANDOM_ALLOWED:
            found.append(self.violation(
                module, node,
                "module-level random.%s() — inject a seeded "
                "random.Random instance instead" % func.attr,
            ))

    def _check_import_from(self, module: ModuleInfo, node: ast.ImportFrom,
                           found: List[Violation]) -> None:
        if node.module == "random":
            for alias in node.names:
                if alias.name not in _RANDOM_ALLOWED:
                    found.append(self.violation(
                        module, node,
                        "`from random import %s` pulls shared RNG "
                        "state — inject a seeded random.Random"
                        % alias.name,
                    ))
        elif node.module == "time":
            for alias in node.names:
                if alias.name in _CLOCK_FUNCS or alias.name == "sleep":
                    found.append(self.violation(
                        module, node,
                        "`from time import %s` imports a wall-clock "
                        "primitive into simulated code" % alias.name,
                    ))
        elif node.module == "datetime":
            # Importing the types is fine; the call check above catches
            # datetime.now() / date.today() uses.
            return
