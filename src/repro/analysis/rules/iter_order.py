"""iter-order: unordered iteration feeding scheduling or results.

CPython ``set`` iteration order depends on hash seeding and insertion
history — iterating one to *schedule events* or *assemble results*
makes runs irreproducible even under a fixed RNG seed (the simulator's
determinism contract, DESIGN §3).  ``dict`` iteration is
insertion-ordered since 3.7 and is deliberately not flagged.

Flags ``for``/comprehension iteration whose iterable is set-shaped —
a ``set(...)``/``frozenset(...)`` call, a set literal, a set
operation (``union``/``intersection``/``difference``/
``symmetric_difference``), or a name bound or annotated as a set in
the same scope — when the loop body schedules simulator events or
builds output (``append``/``extend``/``add``/``yield``).  Wrapping
the iterable in ``sorted(...)`` is the canonical fix and is never
flagged.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.analysis.framework import ModuleInfo, Rule, Violation

__all__ = ["IterOrderRule"]

_SET_CALLS = frozenset({"set", "frozenset"})
_SET_METHODS = frozenset({
    "union", "intersection", "difference",
    "symmetric_difference", "copy",
})
_SCHEDULERS = frozenset({"schedule", "schedule_at", "every"})
_ASSEMBLERS = frozenset({"append", "extend", "add", "insert"})


def _annotation_is_set(expr: Optional[ast.expr]) -> bool:
    node = expr
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr in ("Set", "FrozenSet", "MutableSet")
    if isinstance(node, ast.Name):
        return node.id in (
            "set", "frozenset", "Set", "FrozenSet", "MutableSet",
        )
    return False


class _SetNames(ast.NodeVisitor):
    """Names bound to set-shaped values anywhere in the module."""

    def __init__(self) -> None:
        self.names: Set[str] = set()

    def visit_Assign(self, node: ast.Assign) -> None:
        if _is_set_expr(node.value, self.names):
            for target in node.targets:
                self._mark(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if _annotation_is_set(node.annotation) or (
            node.value is not None
            and _is_set_expr(node.value, self.names)
        ):
            self._mark(node.target)
        self.generic_visit(node)

    def visit_arg(self, node: ast.arg) -> None:
        if _annotation_is_set(node.annotation):
            self.names.add(node.arg)
        self.generic_visit(node)

    def _mark(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.names.add(target.id)
        elif isinstance(target, ast.Attribute) and isinstance(
            target.value, ast.Name
        ) and target.value.id == "self":
            self.names.add("self.%s" % target.attr)


def _name_text(expr: ast.expr) -> Optional[str]:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute) and isinstance(
        expr.value, ast.Name
    ) and expr.value.id == "self":
        return "self.%s" % expr.attr
    return None


def _is_set_expr(expr: ast.expr, set_names: Set[str]) -> bool:
    if isinstance(expr, ast.Set):
        return True
    if isinstance(expr, ast.SetComp):
        return True
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id in _SET_CALLS:
            return True
        if isinstance(func, ast.Attribute) \
                and func.attr in _SET_METHODS:
            # ``x.union(y)`` is set-shaped only if x is.
            base = _name_text(func.value)
            return base is not None and base in set_names
    if isinstance(expr, ast.BinOp) and isinstance(
        expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return (
            _is_set_expr(expr.left, set_names)
            or _is_set_expr(expr.right, set_names)
        )
    text = _name_text(expr)
    return text is not None and text in set_names


def _feeds_order_sensitive(body: List[ast.stmt]) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in _SCHEDULERS:
                    return True
                if node.func.attr in _ASSEMBLERS:
                    return True
    return False


class IterOrderRule(Rule):
    """Warns when unordered ``set`` iteration feeds event
    scheduling or result assembly."""

    name = "iter-order"
    description = (
        "iteration over an unordered set must not feed event "
        "scheduling or result assembly (wrap in sorted())"
    )
    prefixes = ("repro/", "tests/", "benchmarks/")
    severity = "warning"

    def check(self, module: ModuleInfo) -> List[Violation]:
        marker = _SetNames()
        marker.visit(module.tree)
        set_names = marker.names
        found: List[Violation] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.For):
                if _is_set_expr(node.iter, set_names) \
                        and _feeds_order_sensitive(node.body):
                    found.append(self.violation(
                        module, node,
                        "loop over an unordered set feeds "
                        "scheduling/result assembly — iterate "
                        "sorted(...) for deterministic replay",
                    ))
            elif isinstance(node, ast.ListComp):
                # Lists preserve iteration order; sets/dicts/
                # generators get re-ordered or re-keyed downstream
                # and are not flagged.
                for comp in node.generators:
                    if _is_set_expr(comp.iter, set_names):
                        found.append(self.violation(
                            module, comp.iter,
                            "list comprehension iterates an "
                            "unordered set — element order depends "
                            "on hash seeding; iterate sorted(...) "
                            "instead",
                        ))
        return found
