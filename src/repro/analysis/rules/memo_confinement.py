"""memo-confinement — wave-scoped shield decisions die with the wave.

The change bus consults the privacy shield once per (request, delta,
requester, relationship, purpose) tuple *per wave* through a
``ShieldMemo`` (PR 6).  The memo is sound only because it is
wave-scoped: permissions change between waves, so a decision cached
across waves is the cache privacy-shield bypass of PR 1 all over
again.  This rule makes that invariant path-sensitive: a memo (or a
decision read out of one) must not *outlive* the delivery it was
handed to.

Over the function CFG, the machine tracks two flavours of scoped
value:

* **roots** — the memo itself: parameters named ``memo`` or
  annotated ``ShieldMemo``, locals annotated ``ShieldMemo``, and
  aliases of either;
* **derived** — decisions read out of a root (``memo.get(key)``,
  ``memo[key]``, iteration over the memo).

Escapes, each a violation at the escaping statement:

* storing a scoped value on an attribute (``self._last = decision``)
  or into an attribute-rooted container (``self._cache[k] = d``) —
  instance state outlives the wave;
* returning or yielding a **root** — the whole wave cache handed to
  code with an arbitrary lifetime.

Everything else is allowed: writing a decision *into* the memo
(``memo[key] = decision``), passing memo or decision to calls (the
callee runs inside the wave — that is how the bus itself fans the
memo out to listeners), and returning a single derived decision to
an in-wave caller.  The path-sensitivity is the point: a name is
only scoped on paths where it still holds a memo-derived value — a
rebind from ``shield.enforce(...)`` kills the mark on that path, so
auditing a *fresh* decision is clean while auditing a *cached* one
is flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.analysis.framework import ModuleInfo, Violation
from repro.analysis.rules._typestate import (
    TypestateMachine,
    TypestateRule,
)

__all__ = ["MemoConfinementRule"]

_ROOT = "root"
_DERIVED = "derived"

#: State: variable -> _ROOT | _DERIVED (absent = unscoped).
_State = Dict[str, str]

#: Methods whose result on a root is a scoped decision.
_READERS = frozenset({"get", "pop", "setdefault"})


def _annotation_is_memo(annotation: Optional[ast.AST]) -> bool:
    if annotation is None:
        return False
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name) and node.id == "ShieldMemo":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "ShieldMemo":
            return True
        if isinstance(node, ast.Constant) and (
            isinstance(node.value, str) and "ShieldMemo" in node.value
        ):
            return True
    return False


def _names_in(node: ast.AST) -> Set[str]:
    return {
        child.id for child in ast.walk(node)
        if isinstance(child, ast.Name)
    }


def _scoped_source(value: ast.expr, state: _State) -> Optional[str]:
    """Mark the RHS *value* confers on its target, if any."""
    if isinstance(value, ast.Name):
        return state.get(value.id)  # alias keeps the flavour
    if isinstance(value, ast.Subscript):
        base = value.value
        if isinstance(base, ast.Name) and state.get(base.id) == _ROOT:
            return _DERIVED  # memo[key]
        return None
    if isinstance(value, ast.Call):
        func = value.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _READERS
            and isinstance(func.value, ast.Name)
            and state.get(func.value.id) == _ROOT
        ):
            return _DERIVED  # memo.get(key) and friends
    return None


class _MemoMachine(TypestateMachine):
    def __init__(self, scope: ast.AST) -> None:
        self._entry: _State = {}
        args = getattr(scope, "args", None)
        if args is not None:
            params = list(args.posonlyargs) + list(args.args) \
                + list(args.kwonlyargs)
            for param in params:
                if param.arg == "memo" \
                        or _annotation_is_memo(param.annotation):
                    self._entry[param.arg] = _ROOT

    def initial(self) -> _State:
        return dict(self._entry)

    def join(self, left: _State, right: _State) -> _State:
        # Scoped-on-any-path stays scoped; root outranks derived.
        merged = dict(left)
        for name, mark in right.items():
            if mark == _ROOT or merged.get(name) == _ROOT:
                merged[name] = _ROOT
            else:
                merged[name] = mark
        return merged

    def step(self, state: _State, stmt: ast.stmt) -> _State:
        if isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name):
                new = dict(state)
                if _annotation_is_memo(stmt.annotation):
                    new[stmt.target.id] = _ROOT
                else:
                    new.pop(stmt.target.id, None)
                return new
            return state
        if isinstance(stmt, ast.Assign):
            mark = _scoped_source(stmt.value, state)
            new = dict(state)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    if mark is None:
                        new.pop(target.id, None)  # strong kill
                    else:
                        new[target.id] = mark
            return new
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            # Iterating a root yields scoped decisions/keys.
            iter_names = _names_in(stmt.iter)
            if any(state.get(n) == _ROOT for n in iter_names):
                new = dict(state)
                for name in _names_in(stmt.target):
                    new[name] = _DERIVED
                return new
            return state
        if isinstance(stmt, ast.Delete):
            dropped = _names_in(stmt)
            if dropped & set(state):
                return {
                    name: mark for name, mark in state.items()
                    if name not in dropped
                }
        return state

    def observe(
        self,
        state: _State,
        stmt: ast.stmt,
        module: ModuleInfo,
        found: List[Violation],
    ) -> None:
        if not state:
            return
        if isinstance(stmt, (ast.Assign, ast.AugAssign)):
            value_marks = {
                state[name]
                for name in _names_in(stmt.value)
                if name in state
            }
            if not value_marks:
                return
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            for target in targets:
                if self._outliving_target(target, state):
                    what = (
                        "the wave memo" if _ROOT in value_marks
                        else "a memo-cached shield decision"
                    )
                    found.append(_RULE.violation(
                        module, stmt,
                        "%s escapes its wave into longer-lived "
                        "state — permissions may change between "
                        "waves, so cached decisions must die with "
                        "the delivery" % what,
                    ))
            return
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            self._check_root_flow(stmt, stmt.value, state, module, found)
        elif isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, (ast.Yield, ast.YieldFrom)
        ):
            inner = stmt.value.value
            if inner is not None:
                self._check_root_flow(stmt, inner, state, module, found)

    def _outliving_target(
        self, target: ast.expr, state: _State
    ) -> bool:
        """Does assigning to *target* outlive the frame?  Attribute
        stores do; subscript stores do when the container hangs off
        an attribute — unless the container is the memo itself
        (``memo[key] = decision`` is the intended write-back)."""
        if isinstance(target, ast.Attribute):
            return True
        if isinstance(target, ast.Subscript):
            base = target.value
            if isinstance(base, ast.Name):
                return False  # local container (incl. the memo)
            return isinstance(base, (ast.Attribute, ast.Subscript))
        if isinstance(target, (ast.Tuple, ast.List)):
            return any(
                self._outliving_target(element, state)
                for element in target.elts
            )
        return False

    def _root_names_yielded(
        self, value: ast.expr, state: _State
    ) -> Set[str]:
        """Root names the *value* of this expression may be (or
        contain).  ``memo`` is a root; ``memo.get(key)`` merely
        *mentions* one — the returned value is a single derived
        decision, which is allowed out."""
        if isinstance(value, ast.Name):
            if state.get(value.id) == _ROOT:
                return {value.id}
            return set()
        if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            out: Set[str] = set()
            for element in value.elts:
                out |= self._root_names_yielded(element, state)
            return out
        if isinstance(value, ast.Dict):
            out = set()
            for element in list(value.keys) + list(value.values):
                if element is not None:
                    out |= self._root_names_yielded(element, state)
            return out
        if isinstance(value, ast.Starred):
            return self._root_names_yielded(value.value, state)
        if isinstance(value, ast.IfExp):
            return (
                self._root_names_yielded(value.body, state)
                | self._root_names_yielded(value.orelse, state)
            )
        if isinstance(value, ast.BoolOp):
            out = set()
            for element in value.values:
                out |= self._root_names_yielded(element, state)
            return out
        if isinstance(value, ast.NamedExpr):
            return self._root_names_yielded(value.value, state)
        return set()

    def _check_root_flow(
        self,
        stmt: ast.stmt,
        value: ast.expr,
        state: _State,
        module: ModuleInfo,
        found: List[Violation],
    ) -> None:
        roots = self._root_names_yielded(value, state)
        if roots:
            found.append(_RULE.violation(
                module, stmt,
                "the wave memo `%s` flows out of the wave "
                "(returned/yielded) — its decisions are only valid "
                "for this delivery" % sorted(roots)[0],
            ))


class MemoConfinementRule(TypestateRule):
    """Flags wave-scoped ShieldMemo state escaping its wave."""

    name = "memo-confinement"
    description = (
        "a wave-scoped ShieldMemo (and decisions read from it) must "
        "not escape into instance state or be returned — cached "
        "shield decisions die with the wave"
    )
    prefixes = ("repro/",)

    def machine(
        self, module: ModuleInfo, scope: ast.AST
    ) -> Optional[TypestateMachine]:
        if "memo" not in module.source:
            return None
        machine = _MemoMachine(scope)
        if not machine.initial() and "ShieldMemo" not in module.source:
            return None
        return machine


#: Violation factory shared with the machine.
_RULE = MemoConfinementRule()
