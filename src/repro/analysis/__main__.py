"""CLI for gupcheck: ``python -m repro.analysis [paths...]``.

Exit-code contract (stable for CI):

* ``0`` — clean: no active error-severity findings (warnings,
  suppressed and baselined findings are reported but do not gate);
* ``1`` — violations: at least one active error-severity finding;
* ``2`` — analysis error: unparseable files, unreadable
  baseline/SARIF destinations, usage errors.

Incremental runs are on by default: results are keyed on content
hashes in ``.gupcheck-cache.json`` (``--no-cache`` / ``--cache PATH``
to control).  ``--changed-only`` narrows the scan to files changed
relative to a git ref; ``--stats`` prints run-shape counters
(modules, SCCs, cache hit-rate, wall time) to stderr.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from typing import IO, List, Optional

from repro.analysis.baseline import (
    BASELINE_FILENAME, load_baseline, write_baseline,
)
from repro.analysis.cache import (
    AnalysisCache, CACHE_FILENAME, rules_fingerprint,
)
from repro.analysis.effects_report import EFFECTS_FILENAME
from repro.analysis.framework import Analyzer, Report
from repro.analysis.growth_report import GROWTH_FILENAME
from repro.analysis.rules import default_rules

#: Exit codes (see module docstring).
EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_ERROR = 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="gupcheck: GUPster-aware static analysis "
                    "(whole-program privacy-egress taint, simulator "
                    "soundness, determinism and layering lints)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to scan (default: src)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit a machine-readable JSON report",
    )
    parser.add_argument(
        "--sarif", nargs="?", const="-", default=None,
        metavar="PATH",
        help="emit a SARIF 2.1.0 log to PATH (stdout when no PATH)",
    )
    parser.add_argument(
        "--rules", default=None, metavar="NAME[,NAME...]",
        help="comma-separated subset of rules to run",
    )
    parser.add_argument(
        "--effects", nargs="?", const=EFFECTS_FILENAME,
        default=None, metavar="PATH",
        help="infer per-function effects and write the sans-io "
             "boundary map to PATH (default: %s; '-' for stdout), "
             "then exit — 1 when the boundary carries transport/"
             "wall-io" % EFFECTS_FILENAME,
    )
    parser.add_argument(
        "--growth", nargs="?", const=GROWTH_FILENAME,
        default=None, metavar="PATH",
        help="run the resource-bound analysis and write the "
             "long-lived container inventory to PATH (default: %s; "
             "'-' for stdout), then exit — 1 on unbounded verdicts "
             "or declared-bound audit findings not accepted by the "
             "baseline" % GROWTH_FILENAME,
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list available rules and exit",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print run-shape counters (modules, SCCs, cache "
             "hit-rate, wall time) to stderr",
    )
    parser.add_argument(
        "--changed-only", nargs="?", const="HEAD", default=None,
        metavar="GIT_REF",
        help="only scan files changed relative to GIT_REF "
             "(default HEAD); clean exit when nothing changed",
    )
    parser.add_argument(
        "--cache", default=CACHE_FILENAME, metavar="PATH",
        help="incremental cache file (default: %s)" % CACHE_FILENAME,
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the incremental cache for this run",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="accept findings recorded in a baseline file "
             "(default: %s when present)" % BASELINE_FILENAME,
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="accept every current finding into the baseline file "
             "and exit clean",
    )
    return parser


def _changed_files(ref: str, paths: List[str]) -> Optional[List[str]]:
    """Python files changed vs *ref* (staged+unstaged+committed),
    restricted to *paths*; None when git is unavailable."""
    try:
        proc = subprocess.run(
            ["git", "diff", "--name-only", "--diff-filter=d", ref,
             "--"] + list(paths),
            capture_output=True, text=True, check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return None
    return sorted(
        line.strip() for line in proc.stdout.splitlines()
        if line.strip().endswith(".py")
    )


def _run_effects(paths: List[str], destination: str) -> int:
    """``--effects``: parse *paths*, run the effect fixpoint, and
    write the boundary map (no rules, no cache — the map must always
    reflect the whole tree's transitive effects)."""
    import json

    from repro.analysis.effects_report import effects_payload
    from repro.analysis.framework import ModuleInfo, _relpath

    analyzer = Analyzer([])
    modules = []
    parse_failed = False
    for filename in analyzer.discover(paths):
        try:
            with open(filename, "r", encoding="utf-8") as handle:
                source = handle.read()
            modules.append(ModuleInfo.from_source(
                source, _relpath(filename), filename
            ))
        except (OSError, SyntaxError, ValueError) as err:
            sys.stderr.write(
                "gupcheck: %s: [parse-error] %s\n" % (filename, err)
            )
            parse_failed = True
    if not modules:
        sys.stderr.write("gupcheck: --effects found no modules\n")
        return EXIT_ERROR

    payload = effects_payload(modules)
    text = json.dumps(payload, indent=2) + "\n"
    if destination == "-":
        sys.stdout.write(text)
    else:
        try:
            with open(destination, "w", encoding="utf-8") as handle:
                handle.write(text)
        except OSError as err:
            sys.stderr.write(
                "gupcheck: could not write effects map %s: %s\n"
                % (destination, err)
            )
            return EXIT_ERROR
        boundary = payload["boundary"]
        sys.stdout.write(
            "gupcheck: effects map %s written (%d function(s), "
            "boundary %s)\n"
            % (
                destination, len(payload["functions"]),
                "clean" if boundary["clean"]
                else "%d violation(s)" % len(boundary["violations"]),
            )
        )
    if parse_failed:
        return EXIT_ERROR
    return (
        EXIT_CLEAN if payload["boundary"]["clean"]
        else EXIT_VIOLATIONS
    )


def _run_growth(
    paths: List[str],
    destination: str,
    baseline_path: str,
    use_baseline: bool,
) -> int:
    """``--growth``: parse *paths*, run the resource-bound engine,
    write the container inventory, and gate on unbounded verdicts
    (no rules, no cache — verdict evidence crosses import cones, so
    the inventory must always reflect the whole tree)."""
    import json

    from repro.analysis.framework import ModuleInfo, _relpath
    from repro.analysis.growth_report import growth_payload_for
    from repro.analysis.ir.project import Project
    from repro.analysis.rules.container_growth import (
        ContainerGrowthRule,
    )

    analyzer = Analyzer([])
    modules = []
    parse_failed = False
    for filename in analyzer.discover(paths):
        try:
            with open(filename, "r", encoding="utf-8") as handle:
                source = handle.read()
            modules.append(ModuleInfo.from_source(
                source, _relpath(filename), filename
            ))
        except (OSError, SyntaxError, ValueError) as err:
            sys.stderr.write(
                "gupcheck: %s: [parse-error] %s\n" % (filename, err)
            )
            parse_failed = True
    if not modules:
        sys.stderr.write("gupcheck: --growth found no modules\n")
        return EXIT_ERROR

    project = Project(modules)
    payload = growth_payload_for(project)
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if destination == "-":
        sys.stdout.write(text)
    else:
        try:
            with open(destination, "w", encoding="utf-8") as handle:
                handle.write(text)
        except OSError as err:
            sys.stderr.write(
                "gupcheck: could not write growth inventory %s: %s\n"
                % (destination, err)
            )
            return EXIT_ERROR

    failing = ContainerGrowthRule().check_project(project)
    if use_baseline:
        accepted = set(load_baseline(baseline_path))
        failing = [
            violation for violation in failing
            if violation.fingerprint() not in accepted
        ]
    for violation in failing:
        sys.stderr.write("%s\n" % violation)
    counts = payload["counts"]
    # With ``-`` the JSON owns stdout — the human summary moves to
    # stderr so the stream stays machine-parseable.
    summary_stream = sys.stderr if destination == "-" else sys.stdout
    summary_stream.write(
        "gupcheck: growth inventory %s — %d container(s): "
        "%d bounded, %d evicting, %d declared, %d unbounded"
        " (%d gating finding(s))\n"
        % (
            destination if destination != "-" else "(stdout)",
            sum(counts.values()),
            counts["bounded"], counts["evicting"],
            counts["declared"], counts["unbounded"],
            len(failing),
        )
    )
    if parse_failed:
        return EXIT_ERROR
    return EXIT_CLEAN if not failing else EXIT_VIOLATIONS


def _render_text(report: Report, out: IO[str]) -> None:
    for violation in report.violations:
        marker = (
            " (warning)" if violation.severity == "warning" else ""
        )
        out.write("%s%s\n" % (violation, marker))
    for path, message in report.errors:
        out.write("%s: [parse-error] %s\n" % (path, message))
    for violation in report.baselined:
        out.write(
            "%s:%d: [%s] baselined\n"
            % (violation.path, violation.line, violation.rule)
        )
    for violation in report.suppressed:
        out.write(
            "%s:%d: [%s] suppressed -- %s\n"
            % (violation.path, violation.line, violation.rule,
               violation.justification)
        )
    out.write(
        "gupcheck: %d file(s), %d violation(s) (%d warning(s)), "
        "%d baselined, %d suppressed — %s\n"
        % (
            report.files_scanned,
            len(report.violations),
            len(report.warnings),
            len(report.baselined),
            len(report.suppressed),
            "OK" if report.ok else "FAIL",
        )
    )


def main(argv: Optional[List[str]] = None) -> int:
    """Parse CLI options, run the analyzer, and return the exit code."""
    parser = _build_parser()
    options = parser.parse_args(argv)

    rules = default_rules()
    if options.list_rules:
        for rule in rules:
            sys.stdout.write(
                "%-20s [%s] %s\n"
                % (rule.name, rule.severity, rule.description)
            )
        return EXIT_CLEAN
    if options.rules:
        wanted = {name.strip() for name in options.rules.split(",")
                  if name.strip()}
        unknown = wanted - {rule.name for rule in rules}
        if unknown:
            sys.stderr.write(
                "gupcheck: unknown rule(s): %s\n"
                % ", ".join(sorted(unknown))
            )
            return EXIT_ERROR
        rules = [rule for rule in rules if rule.name in wanted]

    if options.effects is not None:
        return _run_effects(list(options.paths), options.effects)
    if options.growth is not None:
        return _run_growth(
            list(options.paths), options.growth,
            options.baseline or BASELINE_FILENAME,
            not options.no_baseline,
        )

    paths = list(options.paths)
    if options.changed_only is not None:
        changed = _changed_files(options.changed_only, paths)
        if changed is None:
            sys.stderr.write(
                "gupcheck: --changed-only requires git; "
                "falling back to a full scan\n"
            )
        elif not changed:
            sys.stdout.write(
                "gupcheck: no python files changed vs %s — OK\n"
                % options.changed_only
            )
            return EXIT_CLEAN
        else:
            paths = changed

    cache: Optional[AnalysisCache] = None
    if not options.no_cache:
        cache = AnalysisCache.load(
            options.cache, rules_fingerprint(rules)
        )

    analyzer = Analyzer(rules)
    try:
        report = analyzer.analyze_paths(
            paths, cache=cache,
            collect_stats=options.stats,
        )
    except (OSError, RecursionError) as err:
        sys.stderr.write("gupcheck: analysis error: %s\n" % err)
        return EXIT_ERROR

    if cache is not None:
        try:
            cache.save(options.cache)
        except OSError as err:
            sys.stderr.write(
                "gupcheck: could not write cache %s: %s\n"
                % (options.cache, err)
            )

    baseline_path = options.baseline or BASELINE_FILENAME
    if options.write_baseline:
        try:
            count = write_baseline(baseline_path, report)
        except OSError as err:
            sys.stderr.write(
                "gupcheck: could not write baseline %s: %s\n"
                % (baseline_path, err)
            )
            return EXIT_ERROR
        sys.stdout.write(
            "gupcheck: baseline %s written (%d finding(s))\n"
            % (baseline_path, count)
        )
        return EXIT_CLEAN
    if not options.no_baseline:
        report.apply_baseline(load_baseline(baseline_path))

    if options.sarif is not None:
        from repro.analysis.sarif import to_sarif_json

        text = to_sarif_json(report, rules)
        if options.sarif == "-":
            sys.stdout.write(text)
        else:
            try:
                with open(options.sarif, "w",
                          encoding="utf-8") as handle:
                    handle.write(text)
            except OSError as err:
                sys.stderr.write(
                    "gupcheck: could not write SARIF %s: %s\n"
                    % (options.sarif, err)
                )
                return EXIT_ERROR

    if options.as_json:
        sys.stdout.write(report.to_json() + "\n")
    elif options.sarif != "-":
        _render_text(report, sys.stdout)

    if options.stats and report.stats is not None:
        sys.stderr.write(report.stats.render() + "\n")

    if report.errors:
        return EXIT_ERROR
    return EXIT_CLEAN if not report.failing else EXIT_VIOLATIONS


if __name__ == "__main__":
    sys.exit(main())
