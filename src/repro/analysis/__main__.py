"""CLI for gupcheck: ``python -m repro.analysis [paths...]``.

Exit status 0 when the tree is clean (suppressed findings are
reported but do not fail the run), 1 on violations or parse errors,
2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import IO, List, Optional

from repro.analysis.framework import Analyzer, Report
from repro.analysis.rules import default_rules


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="gupcheck: GUPster-aware static analysis "
                    "(privacy-egress, determinism, layering lints)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to scan (default: src)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit a machine-readable JSON report",
    )
    parser.add_argument(
        "--rules", default=None, metavar="NAME[,NAME...]",
        help="comma-separated subset of rules to run",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list available rules and exit",
    )
    return parser


def _render_text(report: Report, out: IO[str]) -> None:
    for violation in report.violations:
        out.write("%s\n" % violation)
    for path, message in report.errors:
        out.write("%s: [parse-error] %s\n" % (path, message))
    for violation in report.suppressed:
        out.write(
            "%s:%d: [%s] suppressed -- %s\n"
            % (violation.path, violation.line, violation.rule,
               violation.justification)
        )
    out.write(
        "gupcheck: %d file(s), %d violation(s), %d suppressed — %s\n"
        % (
            report.files_scanned,
            len(report.violations),
            len(report.suppressed),
            "OK" if report.ok else "FAIL",
        )
    )


def main(argv: Optional[List[str]] = None) -> int:
    """Parse CLI options, run the analyzer, and return the exit code."""
    parser = _build_parser()
    options = parser.parse_args(argv)

    rules = default_rules()
    if options.list_rules:
        for rule in rules:
            sys.stdout.write("%-20s %s\n" % (rule.name, rule.description))
        return 0
    if options.rules:
        wanted = {name.strip() for name in options.rules.split(",")
                  if name.strip()}
        unknown = wanted - {rule.name for rule in rules}
        if unknown:
            parser.error(
                "unknown rule(s): %s" % ", ".join(sorted(unknown))
            )
        rules = [rule for rule in rules if rule.name in wanted]

    analyzer = Analyzer(rules)
    report = analyzer.analyze_paths(options.paths)
    if options.as_json:
        sys.stdout.write(report.to_json() + "\n")
    else:
        _render_text(report, sys.stdout)
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
