"""The ``--effects`` boundary map: ``.gupcheck-effects.json``.

A machine-readable snapshot of the inferred effect of every project
function (see :mod:`repro.analysis.interproc.effects` for the
lattice), plus a per-module join and an explicit verdict on the
sans-io boundary — the contract the :class:`~repro.analysis.rules.
sans_io.SansIoPurityRule` enforces, exported here so CI can archive
the map and humans can diff where the wire actually lives.

The payload is deterministic for a given tree: functions and modules
are sorted by qualname/relpath, and the effect fixpoint itself is
deterministic (deps-first over call SCCs).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.analysis.framework import ModuleInfo
from repro.analysis.interproc.effects import (
    EFFECTS, EFFECT_PURE, EFFECT_VIRTUAL_TIME, join_effects,
)
from repro.analysis.rules.sans_io import SansIoPurityRule

__all__ = ["EFFECTS_FILENAME", "SCHEMA", "effects_payload"]

#: Default artifact name, next to ``.gupcheck-cache.json``.
EFFECTS_FILENAME = ".gupcheck-effects.json"

#: Bumped when the payload shape changes.
SCHEMA = "gupcheck-effects/1"


def effects_payload(modules: Sequence[ModuleInfo]) -> Dict[str, Any]:
    """Build the boundary map for *modules* (already parsed).

    Runs the full interprocedural fixpoint — the map must reflect
    *transitive* effects, so there is no incremental shortcut here."""
    from repro.analysis.ir.project import Project

    project = Project(list(modules))
    project.taint.compute([module.relpath for module in modules])

    functions: Dict[str, Dict[str, str]] = {}
    module_join: Dict[str, str] = {}
    counts = {effect: 0 for effect in EFFECTS}
    for pmodule in project.modules_in_order():
        relpath = pmodule.info.relpath
        for fn in pmodule.symbols.all_functions():
            summary = project.taint.summary_of(fn.qualname)
            effect = summary.effect if summary is not None else EFFECT_PURE
            functions[fn.qualname] = {
                "relpath": relpath,
                "line": fn.node.lineno,
                "effect": effect,
            }
            counts[effect] += 1
            module_join[relpath] = join_effects(
                module_join.get(relpath, EFFECT_PURE), effect
            )

    boundary_prefixes = list(SansIoPurityRule.prefixes)
    violations: List[Dict[str, Any]] = []
    for qualname in sorted(functions):
        entry = functions[qualname]
        relpath = entry["relpath"]
        if not any(relpath.startswith(p) for p in boundary_prefixes):
            continue
        if entry["effect"] in (EFFECT_PURE, EFFECT_VIRTUAL_TIME):
            continue
        violations.append({
            "qualname": qualname,
            "relpath": relpath,
            "line": entry["line"],
            "effect": entry["effect"],
        })

    return {
        "schema": SCHEMA,
        "effects": list(EFFECTS),
        "counts": counts,
        "functions": {
            qualname: functions[qualname]
            for qualname in sorted(functions)
        },
        "modules": {
            relpath: module_join[relpath]
            for relpath in sorted(module_join)
        },
        "boundary": {
            "prefixes": boundary_prefixes,
            "clean": not violations,
            "violations": violations,
        },
    }
