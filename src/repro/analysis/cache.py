"""Incremental analysis cache (``.gupcheck-cache.json``).

Two keyspaces, matching the analyzer's two phases:

* **modules** — intra-module findings keyed on the module's own
  content sha; any edit to the file invalidates only that file.
* **project** — whole-program findings *and* the module's
  interprocedural function summaries, keyed on the module's *deep*
  sha (own source + transitive import closure + project interface
  fingerprint).  After a one-file edit, modules outside the edited
  file's import cone replay their stored findings and preload their
  summaries, so the taint fixpoint only re-runs dirty SCCs.

Both keyspaces are additionally guarded by a **rules fingerprint**:
the sha of every source file in the ``repro.analysis`` package plus
the sorted names of the active rules.  Content shas only witness that
the *inputs* didn't change; the fingerprint witnesses the *analyzer*
didn't either — a new rule, an edited rule body, or a ``--rules``
subset would otherwise replay findings computed under different
behaviour (the v2 staleness bug: a freshly added rule reported
nothing until the source files happened to change).

The cache file is plain JSON so CI can store/restore it as an
artifact; a version bump, fingerprint mismatch or unreadable file
silently degrades to a cold run — the cache is an accelerator, never
a source of truth.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.framework import Rule, Violation

__all__ = [
    "AnalysisCache", "CACHE_FILENAME", "CACHE_VERSION",
    "rules_fingerprint",
]

CACHE_FILENAME = ".gupcheck-cache.json"
CACHE_VERSION = 1


def rules_fingerprint(rules: Sequence[Rule]) -> str:
    """Fingerprint of the analyzer itself, for cache invalidation.

    Covers the sorted *active* rule names (so ``--rules`` subsets get
    their own keyspace) and the content of every ``.py`` file in the
    ``repro.analysis`` package (so editing any rule, the solver, or
    the IR invalidates everything — rule behaviour is not separable
    per-file)."""
    digest = hashlib.sha256()
    for name in sorted(rule.name for rule in rules):
        digest.update(name.encode("utf-8") + b"\0")
    package_root = os.path.dirname(os.path.abspath(__file__))
    for dirpath, dirnames, filenames in os.walk(package_root):
        dirnames[:] = sorted(
            d for d in dirnames if d != "__pycache__"
        )
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            full = os.path.join(dirpath, filename)
            rel = os.path.relpath(full, package_root)
            digest.update(
                rel.replace(os.sep, "/").encode("utf-8") + b"\0"
            )
            try:
                with open(full, "rb") as handle:
                    digest.update(handle.read())
            except OSError:  # pragma: no cover - racing an edit
                digest.update(b"<unreadable>")
            digest.update(b"\0")
    return digest.hexdigest()


class AnalysisCache:
    """Load/lookup/store for the incremental analysis cache."""

    def __init__(self, fingerprint: Optional[str] = None) -> None:
        #: Rules fingerprint this cache's entries were computed under
        #: (see :func:`rules_fingerprint`); ``None`` disables the
        #: check (bare programmatic use).
        self.fingerprint = fingerprint
        self._modules: Dict[str, Dict[str, Any]] = {}
        self._project: Dict[str, Dict[str, Any]] = {}

    # -- persistence ----------------------------------------------------

    @classmethod
    def load(
        cls, path: str, fingerprint: Optional[str] = None
    ) -> "AnalysisCache":
        """Read a cache file; any problem — including a stored rules
        fingerprint differing from *fingerprint* — yields an empty
        cache."""
        cache = cls(fingerprint)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except (OSError, ValueError):
            return cache
        if not isinstance(raw, dict) or raw.get(
            "gupcheck_cache"
        ) != CACHE_VERSION:
            return cache
        if fingerprint is not None and raw.get(
            "rules_fingerprint"
        ) != fingerprint:
            return cache
        modules = raw.get("modules")
        if isinstance(modules, dict):
            for relpath, entry in modules.items():
                if isinstance(entry, dict) and "sha" in entry:
                    cache._modules[str(relpath)] = entry
        project = raw.get("project")
        if isinstance(project, dict):
            for relpath, entry in project.items():
                if isinstance(entry, dict) and "deep" in entry:
                    cache._project[str(relpath)] = entry
        return cache

    def save(self, path: str) -> None:
        payload = {
            "gupcheck_cache": CACHE_VERSION,
            "rules_fingerprint": self.fingerprint,
            "modules": self._modules,
            "project": self._project,
        }
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)

    # -- phase 1: intra-module ------------------------------------------

    def module_results(
        self, relpath: str, sha: str
    ) -> Optional[List[Violation]]:
        entry = self._modules.get(relpath)
        if entry is None or entry.get("sha") != sha:
            return None
        try:
            return [
                Violation.from_dict(raw)
                for raw in entry.get("violations", [])
            ]
        except (KeyError, TypeError, ValueError):
            return None

    def store_module_results(
        self, relpath: str, sha: str,
        violations: List[Violation],
    ) -> None:
        self._modules[relpath] = {
            "sha": sha,
            "violations": [v.to_dict() for v in violations],
        }

    # -- phase 2: whole-program -----------------------------------------

    def project_results(
        self, relpath: str, deep_sha: str
    ) -> Optional[Tuple[List[Violation], Dict[str, Any]]]:
        entry = self._project.get(relpath)
        if entry is None or entry.get("deep") != deep_sha:
            return None
        summaries = entry.get("summaries")
        if not isinstance(summaries, dict):
            return None
        try:
            violations = [
                Violation.from_dict(raw)
                for raw in entry.get("violations", [])
            ]
        except (KeyError, TypeError, ValueError):
            return None
        return violations, summaries

    def store_project_results(
        self,
        relpath: str,
        deep_sha: str,
        violations: List[Violation],
        summaries: Dict[str, Any],
    ) -> None:
        self._project[relpath] = {
            "deep": deep_sha,
            "violations": [v.to_dict() for v in violations],
            "summaries": summaries,
        }
