"""Incremental analysis cache (``.gupcheck-cache.json``).

Two keyspaces, matching the analyzer's two phases:

* **modules** — intra-module findings keyed on the module's own
  content sha; any edit to the file invalidates only that file.
* **project** — whole-program findings *and* the module's
  interprocedural function summaries, keyed on the module's *deep*
  sha (own source + transitive import closure + project interface
  fingerprint).  After a one-file edit, modules outside the edited
  file's import cone replay their stored findings and preload their
  summaries, so the taint fixpoint only re-runs dirty SCCs.

The cache file is plain JSON so CI can store/restore it as an
artifact; a version bump or unreadable file silently degrades to a
cold run — the cache is an accelerator, never a source of truth.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.framework import Violation

__all__ = ["AnalysisCache", "CACHE_FILENAME", "CACHE_VERSION"]

CACHE_FILENAME = ".gupcheck-cache.json"
CACHE_VERSION = 1


class AnalysisCache:
    """Load/lookup/store for the incremental analysis cache."""

    def __init__(self) -> None:
        self._modules: Dict[str, Dict[str, Any]] = {}
        self._project: Dict[str, Dict[str, Any]] = {}

    # -- persistence ----------------------------------------------------

    @classmethod
    def load(cls, path: str) -> "AnalysisCache":
        """Read a cache file; any problem yields an empty cache."""
        cache = cls()
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except (OSError, ValueError):
            return cache
        if not isinstance(raw, dict) or raw.get(
            "gupcheck_cache"
        ) != CACHE_VERSION:
            return cache
        modules = raw.get("modules")
        if isinstance(modules, dict):
            for relpath, entry in modules.items():
                if isinstance(entry, dict) and "sha" in entry:
                    cache._modules[str(relpath)] = entry
        project = raw.get("project")
        if isinstance(project, dict):
            for relpath, entry in project.items():
                if isinstance(entry, dict) and "deep" in entry:
                    cache._project[str(relpath)] = entry
        return cache

    def save(self, path: str) -> None:
        payload = {
            "gupcheck_cache": CACHE_VERSION,
            "modules": self._modules,
            "project": self._project,
        }
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)

    # -- phase 1: intra-module ------------------------------------------

    def module_results(
        self, relpath: str, sha: str
    ) -> Optional[List[Violation]]:
        entry = self._modules.get(relpath)
        if entry is None or entry.get("sha") != sha:
            return None
        try:
            return [
                Violation.from_dict(raw)
                for raw in entry.get("violations", [])
            ]
        except (KeyError, TypeError, ValueError):
            return None

    def store_module_results(
        self, relpath: str, sha: str,
        violations: List[Violation],
    ) -> None:
        self._modules[relpath] = {
            "sha": sha,
            "violations": [v.to_dict() for v in violations],
        }

    # -- phase 2: whole-program -----------------------------------------

    def project_results(
        self, relpath: str, deep_sha: str
    ) -> Optional[Tuple[List[Violation], Dict[str, Any]]]:
        entry = self._project.get(relpath)
        if entry is None or entry.get("deep") != deep_sha:
            return None
        summaries = entry.get("summaries")
        if not isinstance(summaries, dict):
            return None
        try:
            violations = [
                Violation.from_dict(raw)
                for raw in entry.get("violations", [])
            ]
        except (KeyError, TypeError, ValueError):
            return None
        return violations, summaries

    def store_project_results(
        self,
        relpath: str,
        deep_sha: str,
        violations: List[Violation],
        summaries: Dict[str, Any],
    ) -> None:
        self._project[relpath] = {
            "deep": deep_sha,
            "violations": [v.to_dict() for v in violations],
            "summaries": summaries,
        }
