"""The ``--growth`` inventory: ``.gupcheck-growth.json``.

A machine-readable snapshot of every long-lived container the
resource-bound engine (:mod:`repro.analysis.interproc.growth`) tracks
— per owner (class or module), per field: the container kind, the
verdict (``bounded`` / ``evicting`` / ``declared`` / ``unbounded``),
the reason, and the grow/shrink evidence sites, so CI can archive the
inventory and humans can diff where memory can go.

The payload is deterministic for a given tree: owners and fields are
sorted, and the engine itself is deterministic (callees-first over
call SCCs, sorted worklists).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Sequence

from repro.analysis.framework import ModuleInfo
from repro.analysis.interproc.growth import VERDICTS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.ir.project import Project

__all__ = ["GROWTH_FILENAME", "SCHEMA", "growth_payload"]

#: Default artifact name, next to ``.gupcheck-effects.json``.
GROWTH_FILENAME = ".gupcheck-growth.json"

#: Bumped when the payload shape changes.
SCHEMA = "gupcheck-growth/1"


def growth_payload(modules: Sequence[ModuleInfo]) -> Dict[str, Any]:
    """Build the growth inventory for *modules* (already parsed).

    Runs the full whole-program engine — verdict evidence crosses
    module boundaries, so there is no incremental shortcut here."""
    from repro.analysis.ir.project import Project

    project = Project(list(modules))
    return growth_payload_for(project)


def growth_payload_for(project: "Project") -> Dict[str, Any]:
    """The growth inventory for an already-built project."""
    growth = project.growth
    owners: Dict[str, Any] = {}
    for qualname in sorted(growth.owners):
        owner = growth.owners[qualname]
        if not owner.fields:
            continue
        owners[qualname] = owner.to_dict()
    unbounded: List[Dict[str, Any]] = []
    for field in growth.unbounded():
        unbounded.append({
            "owner": field.owner,
            "field": field.name,
            "kind": field.kind,
            "relpath": field.relpath,
            "line": field.line,
            "grow_sites": [s.to_dict() for s in field.grow_sites],
        })
    declarations: List[Dict[str, Any]] = []
    for relpath in sorted(growth.declarations):
        for decl in growth.declarations[relpath]:
            declarations.append({
                "relpath": relpath,
                "line": decl.line,
                "reason": decl.reason,
                "justification": decl.justification or "",
                "attached_to": decl.attached_to,
            })
    return {
        "schema": SCHEMA,
        "verdicts": list(VERDICTS),
        "counts": growth.counts(),
        "owners": owners,
        "declarations": declarations,
        "unbounded": unbounded,
        "clean": not unbounded,
    }
