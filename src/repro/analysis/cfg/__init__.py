"""Per-function control-flow graphs (gupcheck v3).

:mod:`repro.analysis.cfg.builder` lowers one ``ast.FunctionDef`` into
basic blocks with branch/loop/try-except/``with`` edges.  The
invariants the Hypothesis suite pins down:

* every statement of the function body lands in **exactly one** block;
* every edge connects blocks that exist in the graph;
* the entry block starts the function and the synthetic exit block
  terminates every path (``return``/fall-off/uncaught ``raise``).

The graphs feed the :mod:`repro.analysis.dataflow` fixpoint solver —
the substrate for the flow-sensitive typestate rules
(``span-balance``, ``cursor-lifecycle``, ``memo-confinement``).
"""

from repro.analysis.cfg.builder import BasicBlock, CFG, build_cfg

__all__ = ["BasicBlock", "CFG", "build_cfg"]
