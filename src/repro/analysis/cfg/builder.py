"""Lowering ``ast`` function bodies to basic blocks.

The builder walks a function body once, opening a new block at every
join/branch point.  Compound statements live in the block that
evaluates their *header* (an ``If`` sits where its test runs, a
``While``/``For`` where the loop condition/iterator is (re)evaluated,
a ``Try``/``With`` where the protected region is entered); their
bodies are lowered into successor blocks.  Nested ``def``/``class``
statements are opaque single statements — their bodies are separate
scopes with CFGs of their own.

Exception edges are over-approximated: every block lowered inside a
``try`` body gets an edge to each handler entry (any statement in the
region may raise), and a ``raise`` jumps to the innermost enclosing
handlers, or to the synthetic exit when none enclose it.  Extra edges
only ever *add* paths, which keeps the typestate rules' "on every
path" verdicts conservative.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["BasicBlock", "CFG", "build_cfg"]


class BasicBlock:
    """A straight-line run of statements with shared control flow."""

    __slots__ = ("index", "stmts", "succs", "preds")

    def __init__(self, index: int) -> None:
        self.index = index
        self.stmts: List[ast.stmt] = []
        #: Successor block indices, in creation order, no duplicates.
        self.succs: List[int] = []
        #: Predecessor block indices, no duplicates.
        self.preds: List[int] = []

    def __repr__(self) -> str:
        return "<BasicBlock %d stmts=%d succs=%r>" % (
            self.index, len(self.stmts), self.succs,
        )


class CFG:
    """Control-flow graph of one function body."""

    __slots__ = ("blocks", "entry", "exit", "_block_of")

    def __init__(self) -> None:
        self.blocks: List[BasicBlock] = []
        entry = self._new_block()
        exit_block = self._new_block()
        #: Index of the entry block (the function's first statement).
        self.entry = entry.index
        #: Index of the synthetic exit block (never holds statements).
        self.exit = exit_block.index
        #: ``id(stmt)`` -> owning block index.
        self._block_of: Dict[int, int] = {}

    # -- construction (used by the builder only) ------------------------

    def _new_block(self) -> BasicBlock:
        block = BasicBlock(len(self.blocks))
        self.blocks.append(block)
        return block

    def _edge(self, src: int, dst: int) -> None:
        src_block = self.blocks[src]
        if dst not in src_block.succs:
            src_block.succs.append(dst)
            self.blocks[dst].preds.append(src)

    def _place(self, stmt: ast.stmt, block: BasicBlock) -> None:
        block.stmts.append(stmt)
        self._block_of[id(stmt)] = block.index

    # -- queries --------------------------------------------------------

    def block_of(self, stmt: ast.stmt) -> Optional[int]:
        """Index of the block holding *stmt* (header placement for
        compound statements), or ``None`` for foreign nodes."""
        return self._block_of.get(id(stmt))

    def statements(self) -> Iterator[Tuple[int, ast.stmt]]:
        """``(block_index, stmt)`` for every placed statement."""
        for block in self.blocks:
            for stmt in block.stmts:
                yield block.index, stmt

    def rpo(self) -> List[int]:
        """Block indices in reverse postorder from the entry —
        the forward-dataflow iteration order.  Blocks unreachable
        from the entry (code after an unconditional jump) follow in
        index order so their statements are still analyzed."""
        seen = set()
        order: List[int] = []
        stack: List[Tuple[int, Iterator[int]]] = []
        seen.add(self.entry)
        stack.append((self.entry, iter(self.blocks[self.entry].succs)))
        while stack:
            index, succs = stack[-1]
            advanced = False
            for succ in succs:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(
                        (succ, iter(self.blocks[succ].succs))
                    )
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                order.append(index)
        order.reverse()
        for block in self.blocks:
            if block.index not in seen:
                order.append(block.index)
        return order

    def __repr__(self) -> str:
        return "<CFG %d block(s) entry=%d exit=%d>" % (
            len(self.blocks), self.entry, self.exit,
        )


class _Builder:
    """One-pass lowering of a statement list into a :class:`CFG`."""

    def __init__(self) -> None:
        self.cfg = CFG()
        #: (loop-header index, loop-after index) stack for
        #: ``continue``/``break`` targets.
        self._loops: List[Tuple[int, int]] = []
        #: Stack of handler-entry index lists for enclosing ``try``
        #: bodies — where a ``raise`` (or any statement) may jump.
        self._handlers: List[List[int]] = []

    # -- plumbing -------------------------------------------------------

    def _raise_targets(self) -> List[int]:
        """Where control may land when the current statement raises."""
        if self._handlers:
            return list(self._handlers[-1])
        return [self.cfg.exit]

    def _lower_body(
        self, body: List[ast.stmt], current: int
    ) -> int:
        """Lower *body* starting in block *current*; returns the block
        control falls out of (which may be unreachable after a jump)."""
        for stmt in body:
            current = self._lower_stmt(stmt, current)
        return current

    # -- statement dispatch ---------------------------------------------

    def _lower_stmt(self, stmt: ast.stmt, current: int) -> int:
        cfg = self.cfg
        if isinstance(stmt, (ast.Return, ast.Raise)):
            cfg._place(stmt, cfg.blocks[current])
            if isinstance(stmt, ast.Return):
                cfg._edge(current, cfg.exit)
            else:
                for target in self._raise_targets():
                    cfg._edge(current, target)
            return cfg._new_block().index
        if isinstance(stmt, (ast.Break, ast.Continue)):
            cfg._place(stmt, cfg.blocks[current])
            if self._loops:
                header, after = self._loops[-1]
                cfg._edge(
                    current,
                    after if isinstance(stmt, ast.Break) else header,
                )
            else:  # malformed code; degrade to an exit edge
                cfg._edge(current, cfg.exit)
            return cfg._new_block().index
        if isinstance(stmt, ast.If):
            return self._lower_if(stmt, current)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._lower_loop(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._lower_try(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._lower_with(stmt, current)
        match_type = getattr(ast, "Match", None)
        if match_type is not None and isinstance(stmt, match_type):
            return self._lower_match(stmt, current)
        # Simple statement (incl. nested def/class as opaque units).
        cfg._place(stmt, cfg.blocks[current])
        return current

    # -- compound lowerings ---------------------------------------------

    def _lower_if(self, stmt: ast.If, current: int) -> int:
        cfg = self.cfg
        cfg._place(stmt, cfg.blocks[current])
        after = cfg._new_block().index
        then_entry = cfg._new_block().index
        cfg._edge(current, then_entry)
        then_exit = self._lower_body(stmt.body, then_entry)
        cfg._edge(then_exit, after)
        if stmt.orelse:
            else_entry = cfg._new_block().index
            cfg._edge(current, else_entry)
            else_exit = self._lower_body(stmt.orelse, else_entry)
            cfg._edge(else_exit, after)
        else:
            cfg._edge(current, after)
        return after

    def _lower_loop(self, stmt: ast.stmt, current: int) -> int:
        """``while``/``for``: header block re-evaluated each
        iteration, back edge from the body, exit edge to ``after``
        (through ``orelse`` when present)."""
        cfg = self.cfg
        header = cfg._new_block().index
        cfg._edge(current, header)
        cfg._place(stmt, cfg.blocks[header])
        after = cfg._new_block().index
        body_entry = cfg._new_block().index
        cfg._edge(header, body_entry)
        self._loops.append((header, after))
        orelse = getattr(stmt, "orelse", [])
        body = getattr(stmt, "body", [])
        body_exit = self._lower_body(body, body_entry)
        cfg._edge(body_exit, header)
        self._loops.pop()
        if orelse:
            else_entry = cfg._new_block().index
            cfg._edge(header, else_entry)
            else_exit = self._lower_body(orelse, else_entry)
            cfg._edge(else_exit, after)
        else:
            cfg._edge(header, after)
        return after

    def _lower_with(self, stmt: ast.stmt, current: int) -> int:
        """``with``: the header (context-manager evaluation + enter)
        stays in the current block; the body runs in its own block and
        control falls through."""
        cfg = self.cfg
        cfg._place(stmt, cfg.blocks[current])
        body_entry = cfg._new_block().index
        cfg._edge(current, body_entry)
        body = getattr(stmt, "body", [])
        return self._lower_body(body, body_entry)

    def _lower_try(self, stmt: ast.Try, current: int) -> int:
        cfg = self.cfg
        cfg._place(stmt, cfg.blocks[current])
        after = cfg._new_block().index
        handler_entries = [
            cfg._new_block().index for _ in stmt.handlers
        ]
        body_entry = cfg._new_block().index
        cfg._edge(current, body_entry)
        first_body_block = len(cfg.blocks) - 1
        if handler_entries:
            self._handlers.append(handler_entries)
        body_exit = self._lower_body(stmt.body, body_entry)
        if handler_entries:
            self._handlers.pop()
            # Any block lowered inside the protected region may raise
            # into any handler.  Blocks created since the body entry
            # are exactly that region (indices grow monotonically).
            for index in range(first_body_block, len(cfg.blocks)):
                for entry in handler_entries:
                    if index != entry:
                        cfg._edge(index, entry)
        # Normal completion: through orelse when present.
        if stmt.orelse:
            else_entry = cfg._new_block().index
            cfg._edge(body_exit, else_entry)
            normal_exit = self._lower_body(stmt.orelse, else_entry)
        else:
            normal_exit = body_exit
        exits = [normal_exit]
        for handler, entry in zip(stmt.handlers, handler_entries):
            exits.append(self._lower_body(handler.body, entry))
        if stmt.finalbody:
            final_entry = cfg._new_block().index
            for block_exit in exits:
                cfg._edge(block_exit, final_entry)
            final_exit = self._lower_body(stmt.finalbody, final_entry)
            cfg._edge(final_exit, after)
            # The exceptional path re-raises after the finalizer: when
            # nothing catches, control leaves the function.
            for target in self._raise_targets():
                cfg._edge(final_exit, target)
        else:
            for block_exit in exits:
                cfg._edge(block_exit, after)
        return after

    def _lower_match(self, stmt: ast.stmt, current: int) -> int:
        cfg = self.cfg
        cfg._place(stmt, cfg.blocks[current])
        after = cfg._new_block().index
        for case in getattr(stmt, "cases", []):
            case_entry = cfg._new_block().index
            cfg._edge(current, case_entry)
            case_exit = self._lower_body(case.body, case_entry)
            cfg._edge(case_exit, after)
        cfg._edge(current, after)  # no case matched
        return after


def build_cfg(fn: ast.AST) -> CFG:
    """CFG of a ``FunctionDef``/``AsyncFunctionDef`` body (a bare
    statement list also works, for fixtures)."""
    builder = _Builder()
    cfg = builder.cfg
    body = getattr(fn, "body", fn)
    if not isinstance(body, list):  # pragma: no cover - defensive
        body = [body]
    final = builder._lower_body(list(body), cfg.entry)
    cfg._edge(final, cfg.exit)
    return cfg
