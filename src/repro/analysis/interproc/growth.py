"""Interprocedural resource-bound analysis (gupcheck v4).

The GUP is an always-on service: profiles are entered once and then
served, pushed, cached and mirrored indefinitely, so any long-lived
object whose containers only grow is a slow-motion outage at
million-user scale.  This repo has hand-fixed three instances of that
bug family already (PR 1's cancelled-timer heap leak, PR 4's
``EndpointHealth._successes`` dict, PR 6's change log bounded only by
the slowest cursor).  This engine turns the family into a checked
contract: every container attribute of a **long-lived** class — and
every module-level container, which is process-lifetime by definition
— is classified into a three-point verdict lattice::

    bounded < evicting < unbounded

* **bounded** — the container cannot outgrow a static cap: it has no
  grow sites at all, it is a ``deque(maxlen=...)``, or every grow
  site is guarded by a ``len(x) < CAP`` comparison;
* **evicting** — there is a shrink site (``pop``/``del``/``clear``/
  compaction/rebind-to-empty) **on a path the grow path can
  trigger**: some function in the project reaches both a grow site
  and the shrink site through the call graph.  A ``clear()`` that
  only a test harness calls does not count — that is the whole
  point;
* **unbounded** — grow sites with no reachable eviction and no cap.

A fourth verdict, **declared**, is the human override: a field whose
defining assignment carries a ``# gupcheck: bounded[<reason>] --
<justification>`` comment is accepted as bounded by contract.  The
declarations are audited like suppressions (reason and justification
required, and the comment must actually attach to a tracked
container), so PR 6's "bounded by the slowest cursor" prose becomes
machine-checked documentation.

Long-lived roots are ``Simulator`` and ``Network``, any class whose
name marks it as infrastructure (``*Hub*``, ``*Bus*``, ``*Cache*``,
``*Registry*``, ``*Recorder*``), every :class:`BusListener` subclass,
the metrics instruments, plus everything **reachable** from a root's
attributes — attribute type inference and container annotations
(``Dict[str, ChangeLog]`` pulls in ``ChangeLog``) drive the closure.

Grow/shrink sites are found intraprocedurally on ``self.attr`` /
``obj.attr`` receivers (resolved through the call-graph's receiver
typing), and **interprocedurally** through per-function parameter
summaries propagated callees-first over the call SCCs: a helper that
``heappush``-es into its parameter turns ``helper(self._heap)`` into
a grow site attributed to ``_heap`` at the call line.

The analyzer's own package (``repro/analysis/``) is exempt: gupcheck
is a run-to-completion batch tool whose caches die with the process —
the contract this engine checks is for the always-on service layer.
"""

from __future__ import annotations

import ast
import re
from typing import (
    TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Set,
    Tuple,
)

from repro.analysis.ir.symbols import (
    ClassInfo, FunctionInfo, dotted_ref,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.ir.project import Project, SourceModule

__all__ = [
    "BOUNDED_RE",
    "Declaration",
    "ContainerField",
    "GrowthAnalysis",
    "Owner",
    "Site",
    "VERDICTS",
    "VERDICT_BOUNDED",
    "VERDICT_DECLARED",
    "VERDICT_EVICTING",
    "VERDICT_UNBOUNDED",
]

VERDICT_BOUNDED = "bounded"
VERDICT_EVICTING = "evicting"
VERDICT_UNBOUNDED = "unbounded"
VERDICT_DECLARED = "declared"

#: Verdicts in lattice order (worst last). ``declared`` ranks with
#: ``bounded``: it is bounded-by-contract.
VERDICTS = (
    VERDICT_BOUNDED, VERDICT_DECLARED, VERDICT_EVICTING,
    VERDICT_UNBOUNDED,
)

#: ``# gupcheck: bounded[reason] -- justification`` — the declared
#: bound contract surface, shaped exactly like a suppression so the
#: two read as one annotation language.  The reason names *what*
#: bounds the container (a vocabulary, an invariant); the
#: justification says *why* that bound holds.
BOUNDED_RE = re.compile(
    r"#\s*gupcheck:\s*bounded\[(?P<reason>[^\]]*)\]"
    r"(?:\s*(?:--|:)\s*(?P<why>.*\S))?"
)

#: Root classes by exact name.
_ROOT_EXACT = frozenset({"Simulator", "Network"})

#: Root classes by name marker (infrastructure naming convention).
_ROOT_MARKERS = ("Hub", "Bus", "Cache", "Registry", "Recorder")

#: Classes whose subclasses are roots (registered as bus consumers).
_LISTENER_BASES = frozenset({"BusListener"})

#: The metrics instruments — held for the registry's lifetime.
_INSTRUMENT_CLASSES = frozenset({"Counter", "Gauge", "Histogram"})

#: Mutator method names that add elements.
_GROW_METHODS = frozenset({
    "add", "append", "appendleft", "extend", "extendleft",
    "insert", "setdefault", "update",
})

#: Mutator method names that remove elements.
_SHRINK_METHODS = frozenset({
    "clear", "discard", "pop", "popitem", "popleft", "remove",
})

#: Module-level intrinsics: function name -> ("grow"|"shrink", arg).
_INTRINSICS = {
    "heappush": ("grow", 0),
    "heappushpop": ("grow", 0),
    "heappop": ("shrink", 0),
    "heapify": (None, 0),
}

#: Container constructor name -> kind.
_CONSTRUCTOR_KINDS = {
    "list": "list",
    "dict": "dict",
    "set": "set",
    "deque": "deque",
    "defaultdict": "dict",
    "OrderedDict": "dict",
    "Counter": "dict",
}

#: The analyzer itself is a batch process; its caches are
#: process-lifetime by design and out of scope for the service
#: contract this engine checks.
_EXEMPT_PREFIXES = ("repro/analysis/",)

#: Fixpoint safety valve for parameter summaries inside a call SCC.
_MAX_SCC_PASSES = 16


class Site:
    """One grow or shrink evidence site."""

    __slots__ = ("relpath", "line", "op", "fn", "via", "guarded")

    def __init__(
        self,
        relpath: str,
        line: int,
        op: str,
        fn: str,
        via: Optional[str] = None,
        guarded: bool = False,
    ) -> None:
        self.relpath = relpath
        self.line = line
        #: The mutation shape (``append``, ``setitem``, ``rebind``…).
        self.op = op
        #: Qualname of the enclosing function (reachability unit).
        self.fn = fn
        #: Callee qualname when the mutation is helper-mediated.
        self.via = via
        #: True when lexically under an ``if len(field) <op> …`` test.
        self.guarded = guarded

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "relpath": self.relpath,
            "line": self.line,
            "op": self.op,
            "fn": self.fn,
        }
        if self.via is not None:
            data["via"] = self.via
        if self.guarded:
            data["guarded"] = True
        return data

    def __repr__(self) -> str:
        return "<Site %s@%s:%d>" % (self.op, self.relpath, self.line)


class Declaration:
    """One ``# gupcheck: bounded[...]`` comment."""

    __slots__ = ("relpath", "line", "reason", "justification",
                 "attached_to")

    def __init__(self, relpath: str, line: int, reason: str,
                 justification: Optional[str]) -> None:
        self.relpath = relpath
        self.line = line
        self.reason = reason
        self.justification = justification
        #: ``owner.field`` once a tracked container claims it.
        self.attached_to: Optional[str] = None


class ContainerField:
    """One tracked container attribute (or module-level container)."""

    __slots__ = ("owner", "name", "relpath", "line", "kind",
                 "capped_init", "grow_sites", "shrink_sites",
                 "declaration", "verdict", "reason")

    def __init__(self, owner: str, name: str, relpath: str,
                 line: int, kind: str, capped_init: bool) -> None:
        self.owner = owner
        self.name = name
        self.relpath = relpath
        self.line = line
        self.kind = kind
        #: True for ``deque(maxlen=...)`` — bounded by construction.
        self.capped_init = capped_init
        self.grow_sites: List[Site] = []
        self.shrink_sites: List[Site] = []
        self.declaration: Optional[Declaration] = None
        self.verdict = VERDICT_BOUNDED
        self.reason = ""

    @property
    def key(self) -> Tuple[str, str]:
        return (self.owner, self.name)

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "kind": self.kind,
            "line": self.line,
            "verdict": self.verdict,
            "reason": self.reason,
            "grow_sites": [s.to_dict() for s in self.grow_sites],
            "shrink_sites": [s.to_dict() for s in self.shrink_sites],
        }
        if self.declaration is not None:
            data["declared"] = {
                "reason": self.declaration.reason,
                "justification":
                    self.declaration.justification or "",
                "line": self.declaration.line,
            }
        return data

    def __repr__(self) -> str:
        return "<ContainerField %s.%s %s>" % (
            self.owner, self.name, self.verdict,
        )


class Owner:
    """A long-lived class (or a module holding global containers)."""

    __slots__ = ("qualname", "kind", "relpath", "line", "root_via",
                 "fields")

    def __init__(self, qualname: str, kind: str, relpath: str,
                 line: int, root_via: str) -> None:
        self.qualname = qualname
        #: ``class`` or ``module``.
        self.kind = kind
        self.relpath = relpath
        self.line = line
        #: Why this owner is long-lived (root rule or reachability).
        self.root_via = root_via
        self.fields: Dict[str, ContainerField] = {}

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "relpath": self.relpath,
            "line": self.line,
            "root_via": self.root_via,
            "fields": {
                name: self.fields[name].to_dict()
                for name in sorted(self.fields)
            },
        }


def _container_init(
    value: Optional[ast.expr],
) -> Optional[Tuple[str, bool]]:
    """``(kind, capped)`` when *value* constructs a mutable container."""
    if value is None:
        return None
    if isinstance(value, (ast.List, ast.ListComp)):
        return ("list", False)
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return ("dict", False)
    if isinstance(value, (ast.Set, ast.SetComp)):
        return ("set", False)
    if isinstance(value, ast.BinOp) and isinstance(value.op, ast.Mult):
        for side in (value.left, value.right):
            if isinstance(side, ast.List):
                return ("list", False)
        return None
    if isinstance(value, ast.Call):
        ref = dotted_ref(value.func)
        if ref is None:
            return None
        kind = _CONSTRUCTOR_KINDS.get(ref.split(".")[-1])
        if kind is None:
            return None
        capped = False
        if kind == "deque":
            for kw in value.keywords:
                if kw.arg == "maxlen" and not (
                    isinstance(kw.value, ast.Constant)
                    and kw.value.value is None
                ):
                    capped = True
        return (kind, capped)
    return None


def _annotation_class_names(expr: Optional[ast.expr]) -> Set[str]:
    """Every dotted name inside an annotation — including container
    element types (``Dict[str, ChangeLog]`` yields ``ChangeLog``),
    which :func:`annotation_ref` deliberately gives up on."""
    names: Set[str] = set()
    if expr is None:
        return names
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        try:
            parsed = ast.parse(expr.value, mode="eval")
        except SyntaxError:
            return names
        return _annotation_class_names(parsed.body)
    for node in ast.walk(expr):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            ref = dotted_ref(node)
            if ref is not None:
                names.add(ref)
        elif isinstance(node, ast.Constant) and isinstance(
            node.value, str
        ):
            try:
                parsed = ast.parse(node.value, mode="eval")
            except (SyntaxError, ValueError):
                continue
            names |= _annotation_class_names(parsed.body)
    return names


class _ParamSummary:
    """Which parameters (by index) a function grows or shrinks."""

    __slots__ = ("grows", "shrinks")

    def __init__(self) -> None:
        self.grows: Set[int] = set()
        self.shrinks: Set[int] = set()

    def key(self) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        return (tuple(sorted(self.grows)),
                tuple(sorted(self.shrinks)))


class GrowthAnalysis:
    """Whole-program container-growth verdicts over a Project."""

    def __init__(self, project: "Project") -> None:
        self.project = project
        self.resolver = project.taint.resolver
        self.graph = project.taint.callgraph
        #: Owner qualname -> Owner (classes and module pseudo-owners).
        self.owners: Dict[str, Owner] = {}
        #: (owner, field) -> ContainerField, for site attribution.
        self._fields: Dict[Tuple[str, str], ContainerField] = {}
        #: relpath -> declarations found in that module.
        self.declarations: Dict[str, List[Declaration]] = {}
        #: Module-global containers: "module.NAME" -> field key.
        self._globals: Dict[str, Tuple[str, str]] = {}
        self._scan_declarations()
        self._collect_owners()
        self._summaries = self._compute_param_summaries()
        self._collect_sites()
        self._attach_declarations()
        self._compute_verdicts()

    # -- eligibility ----------------------------------------------------

    @staticmethod
    def eligible(relpath: str) -> bool:
        if not relpath.startswith("repro/"):
            return False
        return not any(
            relpath.startswith(p) for p in _EXEMPT_PREFIXES
        )

    def _modules(self) -> List["SourceModule"]:
        return [
            m for m in self.project.modules_in_order()
            if self.eligible(m.relpath)
        ]

    # -- declarations ---------------------------------------------------

    def _scan_declarations(self) -> None:
        for module in self._modules():
            found: List[Declaration] = []
            for lineno, text in module.info._comment_tokens():
                match = BOUNDED_RE.search(text)
                if match is None:
                    continue
                found.append(Declaration(
                    module.relpath, lineno,
                    match.group("reason").strip(),
                    match.group("why"),
                ))
            if found:
                self.declarations[module.relpath] = found

    def _attach_declarations(self) -> None:
        """A declaration covers the container init on its own line,
        or — when it sits on a standalone comment line — the init on
        the line below (the suppression convention)."""
        by_loc: Dict[Tuple[str, int], ContainerField] = {}
        for field in self._fields.values():
            by_loc[(field.relpath, field.line)] = field
        for decls in self.declarations.values():
            for decl in decls:
                for line in (decl.line, decl.line + 1):
                    field = by_loc.get((decl.relpath, line))
                    if field is None:
                        continue
                    field.declaration = decl
                    decl.attached_to = "%s.%s" % (
                        field.owner, field.name,
                    )
                    break

    # -- owner discovery ------------------------------------------------

    def _is_root_class(self, cls: ClassInfo) -> Optional[str]:
        name = cls.name
        if name in _ROOT_EXACT:
            return "root: %s" % name
        for marker in _ROOT_MARKERS:
            if marker in name:
                return "root-marker: %s" % marker
        if name in _INSTRUMENT_CLASSES:
            return "root: metrics instrument"
        for ancestor in self._ancestor_names(cls.qualname):
            if ancestor in _LISTENER_BASES:
                return "root: %s subclass" % ancestor
        return None

    def _ancestor_names(self, qualname: str) -> Set[str]:
        names: Set[str] = set()
        seen: Set[str] = set()
        frontier = list(self.project.bases_of(qualname))
        while frontier:
            base = frontier.pop()
            if base in seen:
                continue
            seen.add(base)
            names.add(base.rsplit(".", 1)[-1])
            frontier.extend(self.project.bases_of(base))
        return names

    def _collect_owners(self) -> None:
        eligible_classes = [
            cls for cls in self.project.classes.values()
            if self.eligible(cls.relpath)
        ]
        roots: Dict[str, str] = {}
        for cls in eligible_classes:
            via = self._is_root_class(cls)
            if via is not None:
                roots[cls.qualname] = via
        # Reachability closure: anything a long-lived object holds is
        # long-lived too.
        via_of: Dict[str, str] = dict(roots)
        frontier = sorted(roots)
        while frontier:
            current = frontier.pop()
            cls = self.project.classes.get(current)
            if cls is None:
                continue
            for ref in sorted(self._held_class_refs(cls)):
                if ref in via_of or not self.eligible(
                    self.project.classes[ref].relpath
                ):
                    continue
                via_of[ref] = "reachable: %s" % current
                frontier.append(ref)
        for qualname in sorted(via_of):
            cls = self.project.classes[qualname]
            owner = Owner(
                qualname, "class", cls.relpath,
                cls.node.lineno, via_of[qualname],
            )
            self._collect_class_fields(cls, owner)
            self.owners[qualname] = owner
        self._collect_module_globals()

    def _held_class_refs(self, cls: ClassInfo) -> Set[str]:
        """Project classes this class's attributes may hold —
        inferred attr types, annotation element types, and classes
        constructed into the class's own containers."""
        module = self.project.modules.get(cls.module_name)
        if module is None:  # pragma: no cover - defensive
            return set()
        raw: Set[str] = set(cls.attr_refs.values())
        for node in ast.walk(cls.node):
            if isinstance(node, ast.AnnAssign):
                target = node.target
                is_self_attr = (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                )
                if is_self_attr or isinstance(target, ast.Name):
                    raw |= _annotation_class_names(node.annotation)
            elif isinstance(node, ast.Assign):
                # self.x[k] = SomeClass(...) stores an element.
                target = node.targets[0] if node.targets else None
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(node.value, ast.Call)
                ):
                    ref = dotted_ref(node.value.func)
                    if ref is not None:
                        raw.add(ref)
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ) and node.func.attr in _GROW_METHODS:
                # self.x.append(SomeClass(...)) stores an element.
                for arg in node.args:
                    if isinstance(arg, ast.Call):
                        ref = dotted_ref(arg.func)
                        if ref is not None:
                            raw.add(ref)
        resolved: Set[str] = set()
        for ref in sorted(raw):
            absolute = module.symbols.resolve_local(ref)
            if absolute is not None and absolute in \
                    self.project.classes:
                resolved.add(absolute)
        return resolved

    # -- field discovery ------------------------------------------------

    def _collect_class_fields(self, cls: ClassInfo,
                              owner: Owner) -> None:
        # __init__ first so the defining line is the canonical init.
        methods = sorted(
            cls.methods.values(),
            key=lambda m: (m.name != "__init__", m.node.lineno),
        )
        for item in cls.node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                self._register_field(
                    owner, item.target.id, item.value, item.lineno,
                )
        for method in methods:
            for node in ast.walk(method.node):
                target: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                if isinstance(node, ast.Assign) and \
                        len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value = node.target, node.value
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                self._register_field(
                    owner, target.attr, value, node.lineno,
                )

    def _register_field(self, owner: Owner, name: str,
                        value: Optional[ast.expr],
                        line: int) -> None:
        init = _container_init(value)
        if init is None or name in owner.fields:
            return
        kind, capped = init
        field = ContainerField(
            owner.qualname, name, owner.relpath, line, kind, capped,
        )
        owner.fields[name] = field
        self._fields[field.key] = field

    def _collect_module_globals(self) -> None:
        """Module-level containers are process-lifetime by
        definition — no reachability argument needed."""
        for module in self._modules():
            owner: Optional[Owner] = None
            for node in module.info.tree.body:
                target: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                if isinstance(node, ast.Assign) and \
                        len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value = node.target, node.value
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                if name.startswith("__") and name.endswith("__"):
                    continue
                init = _container_init(value)
                if init is None:
                    continue
                if owner is None:
                    owner = Owner(
                        module.name, "module", module.relpath, 1,
                        "module-level: process lifetime",
                    )
                    self.owners[module.name] = owner
                self._register_field(owner, name, value, node.lineno)
                self._globals["%s.%s" % (module.name, name)] = (
                    module.name, name,
                )

    # -- interprocedural parameter summaries ----------------------------

    def _compute_param_summaries(self) -> Dict[str, _ParamSummary]:
        summaries: Dict[str, _ParamSummary] = {}
        for scc in self.graph.sccs:
            members = [
                q for q in scc
                if q in self.project.functions
                and self.eligible(self.project.functions[q].relpath)
            ]
            for qualname in members:
                summaries[qualname] = _ParamSummary()
            for _ in range(_MAX_SCC_PASSES):
                changed = False
                for qualname in members:
                    fn = self.project.functions[qualname]
                    fresh = self._summarize_params(fn, summaries)
                    if fresh.key() != summaries[qualname].key():
                        summaries[qualname] = fresh
                        changed = True
                if not changed:
                    break
        return summaries

    def _summarize_params(
        self, fn: FunctionInfo,
        summaries: Dict[str, _ParamSummary],
    ) -> _ParamSummary:
        summary = _ParamSummary()
        index_of = {name: i for i, name in enumerate(fn.params)}
        aliases: Dict[str, int] = dict(index_of)

        def param_index(expr: ast.expr) -> Optional[int]:
            if isinstance(expr, ast.Name):
                return aliases.get(expr.id)
            return None

        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    source = param_index(node.value)
                    if source is not None:
                        aliases[target.id] = source
                    else:
                        aliases.pop(target.id, None)
                elif isinstance(target, ast.Subscript):
                    idx = param_index(target.value)
                    if idx is not None:
                        summary.grows.add(idx)
            elif isinstance(node, ast.AugAssign):
                idx = param_index(node.target)
                if idx is not None:
                    summary.grows.add(idx)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        idx = param_index(target.value)
                        if idx is not None:
                            summary.shrinks.add(idx)
            elif isinstance(node, ast.Call):
                self._summarize_call(
                    node, fn, param_index, summary, summaries,
                )
        return summary

    def _summarize_call(
        self,
        call: ast.Call,
        fn: FunctionInfo,
        param_index: "Callable[[ast.expr], Optional[int]]",
        summary: _ParamSummary,
        summaries: Dict[str, _ParamSummary],
    ) -> None:
        func = call.func
        if isinstance(func, ast.Attribute):
            idx = param_index(func.value)
            if idx is not None:
                if func.attr in _GROW_METHODS:
                    summary.grows.add(idx)
                elif func.attr in _SHRINK_METHODS:
                    summary.shrinks.add(idx)
                return
        intrinsic = self._intrinsic_for(func)
        if intrinsic is not None:
            effect, arg_pos = intrinsic
            if effect is not None and len(call.args) > arg_pos:
                idx = param_index(call.args[arg_pos])
                if idx is not None:
                    if effect == "grow":
                        summary.grows.add(idx)
                    else:
                        summary.shrinks.add(idx)
            return
        # Propagate through project callees: passing a parameter at a
        # position the callee grows/shrinks grows/shrinks it here too.
        resolution = self.resolver.resolve(call, fn)
        if not resolution.targets:
            return
        offset = 1 if (
            isinstance(func, ast.Attribute)
            and not resolution.is_constructor
        ) else 0
        for position, arg in enumerate(call.args):
            idx = param_index(arg)
            if idx is None:
                continue
            for target in resolution.targets:
                callee = summaries.get(target.qualname)
                if callee is None:
                    continue
                if position + offset in callee.grows:
                    summary.grows.add(idx)
                if position + offset in callee.shrinks:
                    summary.shrinks.add(idx)

    @staticmethod
    def _intrinsic_for(
        func: ast.expr,
    ) -> Optional[Tuple[Optional[str], int]]:
        ref = dotted_ref(func)
        if ref is None:
            return None
        return _INTRINSICS.get(ref.split(".")[-1])

    # -- site discovery -------------------------------------------------

    def _collect_sites(self) -> None:
        for module in self._modules():
            for fn in module.symbols.all_functions():
                self._scan_function(fn)

    def _scan_function(self, fn: FunctionInfo) -> None:
        aliases = self._field_aliases(fn)
        finder = _SiteFinder(self, fn, aliases)
        finder.visit_block(fn.node.body)

    def _field_aliases(
        self, fn: FunctionInfo
    ) -> Dict[str, Tuple[str, str]]:
        """Local names bound to a tracked field (``log = self._log``)."""
        aliases: Dict[str, Tuple[str, str]] = {}
        for node in ast.walk(fn.node):
            if not (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                continue
            key = self.field_of(node.value, fn, {})
            if key is not None:
                aliases[node.targets[0].id] = key
        return aliases

    def field_of(
        self,
        expr: ast.expr,
        fn: FunctionInfo,
        aliases: Dict[str, Tuple[str, str]],
    ) -> Optional[Tuple[str, str]]:
        """The tracked container *expr* denotes, if any."""
        if isinstance(expr, ast.Name):
            if expr.id in fn.params:
                return None
            alias = aliases.get(expr.id)
            if alias is not None:
                return alias
            return self._global_field(expr.id, fn)
        if isinstance(expr, ast.Attribute):
            owner = self.resolver.receiver_class(expr.value, fn)
            if owner is None:
                # mod.GLOBAL through the import alias map.
                ref = dotted_ref(expr)
                if ref is not None:
                    return self._global_field(ref, fn)
                return None
            return self._field_on(owner, expr.attr)
        return None

    def _global_field(
        self, ref: str, fn: FunctionInfo
    ) -> Optional[Tuple[str, str]]:
        module = self.project.modules.get(fn.module_name)
        if module is None:  # pragma: no cover - defensive
            return None
        direct = "%s.%s" % (fn.module_name, ref)
        if direct in self._globals:
            return self._globals[direct]
        absolute = module.symbols.resolve_local(ref)
        if absolute is None:
            # Plain global name: imported names resolve above; local
            # module globals were covered by ``direct``.
            head, _, rest = ref.partition(".")
            if head in module.symbols.imports and rest:
                absolute = "%s.%s" % (
                    module.symbols.imports[head], rest,
                )
        if absolute is not None and absolute in self._globals:
            return self._globals[absolute]
        return None

    def _field_on(
        self, owner_qualname: str, attr: str
    ) -> Optional[Tuple[str, str]]:
        """The defining owner of ``attr`` in *owner_qualname*'s MRO."""
        seen: Set[str] = set()
        frontier = [owner_qualname]
        while frontier:
            current = frontier.pop(0)
            if current in seen:
                continue
            seen.add(current)
            owner = self.owners.get(current)
            if owner is not None and attr in owner.fields:
                return (current, attr)
            frontier.extend(self.project.bases_of(current))
        return None

    def record(self, key: Tuple[str, str], effect: str,
               site: Site) -> None:
        field = self._fields[key]
        if effect == "grow":
            field.grow_sites.append(site)
        else:
            field.shrink_sites.append(site)

    def summary_for(self, qualname: str) -> Optional[_ParamSummary]:
        return self._summaries.get(qualname)

    # -- verdicts -------------------------------------------------------

    def _compute_verdicts(self) -> None:
        for field in self._fields.values():
            field.verdict, field.reason = self._verdict(field)

    def _verdict(self, field: ContainerField) -> Tuple[str, str]:
        if field.declaration is not None:
            return (
                VERDICT_DECLARED,
                "declared[%s]" % field.declaration.reason,
            )
        if field.capped_init:
            return (VERDICT_BOUNDED, "deque-maxlen")
        if not field.grow_sites:
            return (VERDICT_BOUNDED, "no-grow-sites")
        if all(site.guarded for site in field.grow_sites):
            return (VERDICT_BOUNDED, "cap-guard")
        if self._shrink_reachable(field):
            return (VERDICT_EVICTING, "shrink-on-grow-path")
        return (VERDICT_UNBOUNDED, "grow-without-eviction")

    def _shrink_reachable(self, field: ContainerField) -> bool:
        """Is some shrink site on a path the grow path can trigger —
        i.e. does any function reach (through the call graph) both a
        grow site and a shrink site?  Equivalently: the caller
        closures of a grow function and a shrink function intersect.
        A shrink only a test harness calls has a disjoint closure and
        does not count."""
        if not field.shrink_sites:
            return False
        grow_fns = {site.fn for site in field.grow_sites}
        grow_ancestors = self._caller_closure(grow_fns)
        for site in field.shrink_sites:
            if site.fn in grow_ancestors:
                return True
            if self._caller_closure({site.fn}) & grow_ancestors:
                return True
        return False

    def _caller_closure(self, fns: Set[str]) -> Set[str]:
        closure: Set[str] = set(fns)
        frontier = list(fns)
        callers = self.graph.callers
        while frontier:
            current = frontier.pop()
            for caller in callers.get(current, ()):
                if caller not in closure:
                    closure.add(caller)
                    frontier.append(caller)
        return closure

    # -- results --------------------------------------------------------

    def fields(self) -> List[ContainerField]:
        return [
            self._fields[key] for key in sorted(self._fields)
        ]

    def unbounded(self) -> List[ContainerField]:
        return [
            field for field in self.fields()
            if field.verdict == VERDICT_UNBOUNDED
        ]

    def counts(self) -> Dict[str, int]:
        tally = {verdict: 0 for verdict in VERDICTS}
        for field in self.fields():
            tally[field.verdict] += 1
        return tally


class _SiteFinder:
    """Statement walker recording grow/shrink sites for one function,
    tracking the enclosing ``if len(field) …`` guard context."""

    def __init__(
        self,
        analysis: GrowthAnalysis,
        fn: FunctionInfo,
        aliases: Dict[str, Tuple[str, str]],
    ) -> None:
        self.analysis = analysis
        self.fn = fn
        self.aliases = aliases
        #: Field keys whose ``len()`` the active ``if`` tests mention.
        self._guards: List[Set[Tuple[str, str]]] = []

    # -- helpers --------------------------------------------------------

    def _field_of(self, expr: ast.expr) -> Optional[Tuple[str, str]]:
        return self.analysis.field_of(expr, self.fn, self.aliases)

    def _guarded(self, key: Tuple[str, str]) -> bool:
        return any(key in tests for tests in self._guards)

    def _site(self, node: ast.AST, op: str,
              key: Tuple[str, str],
              via: Optional[str] = None) -> Site:
        return Site(
            self.fn.relpath,
            getattr(node, "lineno", 0),
            op,
            self.fn.qualname,
            via=via,
            guarded=self._guarded(key),
        )

    def _record(self, node: ast.AST, effect: str, op: str,
                key: Tuple[str, str],
                via: Optional[str] = None) -> None:
        self.analysis.record(key, effect, self._site(
            node, op, key, via=via,
        ))

    def _len_guard_keys(
        self, test: ast.expr
    ) -> Set[Tuple[str, str]]:
        keys: Set[Tuple[str, str]] = set()
        for node in ast.walk(test):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "len"
                and node.args
            ):
                key = self._field_of(node.args[0])
                if key is not None:
                    keys.add(key)
        return keys

    # -- walking --------------------------------------------------------

    def visit_block(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self.visit_stmt(stmt)

    def visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            # Nested defs have no FunctionInfo (no reachability
            # frame to attribute their sites to) — out of scope.
            return
        if isinstance(stmt, ast.If):
            keys = self._len_guard_keys(stmt.test)
            self._scan_expr(stmt.test)
            self._guards.append(keys)
            self.visit_block(stmt.body)
            self._guards.pop()
            # A shrink in the else-branch of a len test is still a
            # shrink; the *guard* credit only applies to the branch
            # the test dominates.
            self._guards.append(set())
            self.visit_block(stmt.orelse)
            self._guards.pop()
            return
        if isinstance(stmt, ast.Assign):
            self._visit_assign(stmt)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._visit_rebind(stmt, stmt.target, stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            key = self._field_of(stmt.target)
            if key is not None:
                self._record(stmt, "grow", "augassign", key)
            self._scan_expr(stmt.value)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Subscript):
                    key = self._field_of(target.value)
                    if key is not None:
                        self._record(stmt, "shrink", "delitem", key)
        elif isinstance(stmt, (ast.Expr, ast.Return)):
            if stmt.value is not None:
                self._scan_expr(stmt.value)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_expr(stmt.iter)
            self.visit_block(stmt.body)
            self.visit_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._scan_expr(stmt.test)
            self.visit_block(stmt.body)
            self.visit_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._scan_expr(item.context_expr)
            self.visit_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.visit_block(stmt.body)
            for handler in stmt.handlers:
                self.visit_block(handler.body)
            self.visit_block(stmt.orelse)
            self.visit_block(stmt.finalbody)
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._scan_expr(child)

    def _visit_assign(self, stmt: ast.Assign) -> None:
        self._scan_expr(stmt.value)
        for target in stmt.targets:
            if isinstance(target, ast.Subscript):
                key = self._field_of(target.value)
                if key is not None:
                    field = self.analysis._fields[key]
                    # A list subscript store overwrites in place; a
                    # dict (or unknown) one inserts.
                    if field.kind != "list":
                        self._record(stmt, "grow", "setitem", key)
            elif isinstance(target, (ast.Attribute, ast.Name)):
                self._visit_rebind(stmt, target, stmt.value)

    def _visit_rebind(self, stmt: ast.stmt, target: ast.expr,
                      value: ast.expr) -> None:
        """``field = <expr>`` — a reset/trim is a shrink, a concat a
        grow, the defining init neither."""
        key = self._field_of(target)
        if key is None:
            return
        field = self.analysis._fields[key]
        if (
            field.relpath == self.fn.relpath
            and stmt.lineno == field.line
        ):
            return  # the defining init itself
        init = _container_init(value)
        if init is not None and not self._mentions_field(value, key):
            # Rebound to a fresh (empty or comprehension) container
            # not derived from itself: a reset. Comprehensions over
            # *other* data rebuild from a bounded source.
            self._record(stmt, "shrink", "rebind", key)
            return
        if self._mentions_field(value, key):
            if isinstance(value, (ast.ListComp, ast.SetComp,
                                  ast.DictComp, ast.GeneratorExp)):
                # Filter sweep: x = [e for e in x if keep(e)]
                self._record(stmt, "shrink", "filter-rebind", key)
            elif isinstance(value, ast.Subscript):
                self._record(stmt, "shrink", "slice-rebind", key)
            elif isinstance(value, ast.BinOp):
                self._record(stmt, "grow", "concat-rebind", key)

    def _mentions_field(self, value: ast.expr,
                        key: Tuple[str, str]) -> bool:
        for node in ast.walk(value):
            if isinstance(node, (ast.Name, ast.Attribute)):
                if self._field_of(node) == key:
                    return True
        return False

    def _scan_expr(self, expr: ast.expr) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._visit_call(node)

    def _visit_call(self, call: ast.Call) -> None:
        func = call.func
        if isinstance(func, ast.Attribute):
            receiver = func.value
            key = None
            inner = False
            if isinstance(receiver, ast.Subscript):
                # self.x[k].append(...) mutates a held value — growth
                # (or reclamation) of the outer field's footprint.
                key = self._field_of(receiver.value)
                inner = True
            else:
                key = self._field_of(receiver)
            if key is not None:
                op_prefix = "value-" if inner else ""
                if func.attr in _GROW_METHODS:
                    self._record(
                        call, "grow", op_prefix + func.attr, key,
                    )
                    return
                if func.attr in _SHRINK_METHODS:
                    self._record(
                        call, "shrink", op_prefix + func.attr, key,
                    )
                    return
        intrinsic = GrowthAnalysis._intrinsic_for(func)
        if intrinsic is not None:
            effect, arg_pos = intrinsic
            if effect is not None and len(call.args) > arg_pos:
                key = self._field_of(call.args[arg_pos])
                if key is not None:
                    ref = dotted_ref(func) or "?"
                    self._record(
                        call, effect, ref.split(".")[-1], key,
                    )
            return
        self._helper_call(call)

    def _helper_call(self, call: ast.Call) -> None:
        """``helper(self.x)`` where the callee's summary grows or
        shrinks that parameter — the interprocedural attribution."""
        field_args = [
            (position, self._field_of(arg))
            for position, arg in enumerate(call.args)
        ]
        if not any(key is not None for _, key in field_args):
            return
        resolution = self.analysis.resolver.resolve(call, self.fn)
        if not resolution.targets:
            return
        offset = 1 if (
            isinstance(call.func, ast.Attribute)
            and not resolution.is_constructor
        ) else 0
        for position, key in field_args:
            if key is None:
                continue
            for target in resolution.targets:
                summary = self.analysis.summary_for(target.qualname)
                if summary is None:
                    continue
                if position + offset in summary.grows:
                    self._record(
                        call, "grow", "helper", key,
                        via=target.qualname,
                    )
                if position + offset in summary.shrinks:
                    self._record(
                        call, "shrink", "helper", key,
                        via=target.qualname,
                    )
