"""Per-function taint summaries.

A :class:`Summary` abstracts one project function for interprocedural
reasoning.  Taint *labels* are strings: ``"src"`` marks raw profile
data obtained from a store/adapter/cache/sync-endpoint source, and
``"p<i>"`` marks the value of parameter ``i`` (``self`` is parameter 0
for methods).  The summary records which labels survive to the return
value after sanitizer kills — composing summaries along call edges
gives transitive flows without re-walking callee bodies.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Tuple

__all__ = ["SOURCE_LABEL", "Summary"]

#: Label carried by raw (unshielded) profile data.
SOURCE_LABEL = "src"


class Summary:
    """What one function does with taint, seen from its callers."""

    __slots__ = ("qualname", "relpath", "returns_source",
                 "param_flows", "sanitizes", "guards",
                 "tainted_return_lines", "egress_sends",
                 "reaches_sim_run", "effect")

    def __init__(
        self,
        qualname: str,
        relpath: str,
        returns_source: bool = False,
        param_flows: FrozenSet[int] = frozenset(),
        sanitizes: bool = False,
        guards: bool = False,
        tainted_return_lines: Tuple[int, ...] = (),
        egress_sends: Tuple[Tuple[int, int, str], ...] = (),
        reaches_sim_run: bool = False,
        effect: str = "pure",
    ) -> None:
        self.qualname = qualname
        self.relpath = relpath
        #: Return value may carry raw source data (``src`` label).
        self.returns_source = returns_source
        #: Parameter indices whose value may flow to the return
        #: unsanitized (``self`` is index 0 for methods).
        self.param_flows = param_flows
        #: The function is a privacy-shield sanitizer: its result is
        #: clean regardless of argument taint.
        self.sanitizes = sanitizes
        #: The function performs a shield *guard* — a check-style
        #: ``enforce`` call that raises on deny (GUPster's dominant
        #: idiom: enforce the policy, then release the data).  A
        #: caller is considered shield-mediated after the call.
        self.guards = guards
        #: Lines of ``return`` statements whose value carries ``src``.
        self.tainted_return_lines = tainted_return_lines
        #: ``(line, col, sink-name)`` of ``src``-tainted arguments
        #: handed to network-style send sinks inside this function.
        self.egress_sends = egress_sends
        #: Function transitively calls ``Simulator.run/step/advance``.
        self.reaches_sim_run = reaches_sim_run
        #: Inferred effect tier: ``pure`` < ``virtual-time`` <
        #: ``transport`` < ``wall-io`` — the join over the body and
        #: every resolved callee (see
        #: :mod:`repro.analysis.interproc.effects`).
        self.effect = effect

    # -- equality drives the fixpoint ----------------------------------

    def _key(self) -> Tuple[Any, ...]:
        return (
            self.returns_source, self.param_flows, self.sanitizes,
            self.guards, self.tainted_return_lines,
            self.egress_sends, self.reaches_sim_run, self.effect,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Summary):
            return NotImplemented
        return (
            self.qualname == other.qualname
            and self._key() == other._key()
        )

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        if eq is NotImplemented:
            return eq
        return not eq

    def __hash__(self) -> int:
        return hash((self.qualname,) + self._key())

    def __repr__(self) -> str:
        bits: List[str] = []
        if self.returns_source:
            bits.append("returns-src")
        if self.param_flows:
            bits.append(
                "flows=%s" % ",".join(
                    "p%d" % i for i in sorted(self.param_flows)
                )
            )
        if self.sanitizes:
            bits.append("sanitizes")
        if self.guards:
            bits.append("guards")
        if self.reaches_sim_run:
            bits.append("reaches-sim-run")
        if self.effect != "pure":
            bits.append("effect=%s" % self.effect)
        return "<Summary %s %s>" % (
            self.qualname, " ".join(bits) or "clean",
        )

    # -- (de)serialization for the incremental cache -------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname,
            "relpath": self.relpath,
            "returns_source": self.returns_source,
            "param_flows": sorted(self.param_flows),
            "sanitizes": self.sanitizes,
            "guards": self.guards,
            "tainted_return_lines": list(self.tainted_return_lines),
            "egress_sends": [list(e) for e in self.egress_sends],
            "reaches_sim_run": self.reaches_sim_run,
            "effect": self.effect,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "Summary":
        return cls(
            qualname=str(raw["qualname"]),
            relpath=str(raw["relpath"]),
            returns_source=bool(raw.get("returns_source", False)),
            param_flows=frozenset(
                int(i) for i in raw.get("param_flows", ())
            ),
            sanitizes=bool(raw.get("sanitizes", False)),
            guards=bool(raw.get("guards", False)),
            tainted_return_lines=tuple(
                int(n) for n in raw.get("tainted_return_lines", ())
            ),
            egress_sends=tuple(
                (int(e[0]), int(e[1]), str(e[2]))
                for e in raw.get("egress_sends", ())
            ),
            reaches_sim_run=bool(raw.get("reaches_sim_run", False)),
            effect=str(raw.get("effect", "pure")),
        )
