"""The effect lattice and the sans-io boundary axioms.

Every project function gets a computed **effect**, the join over
everything its body (nested ``def`` closures included — deferred
code is still this function's lexical responsibility) may do::

    pure  <  virtual-time  <  transport  <  wall-io

* ``pure`` — computes on its arguments; no clocks, no wire.
* ``virtual-time`` — touches the simulated clock or the Trace cost
  ledger (``sim.now``, ``sim.schedule``, ``trace.hop`` …).  This is
  the I/O-*intent* layer: code here records what I/O would cost
  without performing any.
* ``transport`` — samples the simulated wire itself
  (``network.sample_hop``, fault injection).  Under the sans-io
  refactor (ROADMAP item 2) this is exactly the code a real
  transport replaces.
* ``wall-io`` — real-world I/O (files, sockets, wall clocks).  The
  simulation must never reach it; CLIs and benches may.

**Axioms** draw the boundary the propagation cannot see past:
everything under ``repro/simnet/`` is the harness, so its internals
are classified by decree rather than by body — ``Network``'s
hop-sampling and fault-injection surface (and ``simnet/faults.py``)
are ``transport``; the rest (Simulator, Trace, spans, bookkeeping)
is ``virtual-time``.  Without the Trace axiom the whole query engine
would collapse into ``transport`` merely for *charging* the cost
ledger (``Trace.hop`` internally samples the wire today) — the
ledger is the intent abstraction the refactor keeps, so it anchors
the ``virtual-time`` tier.

**Propagation** is callee-joining over resolved calls, deps-first
over call SCCs like every other summary bit.  Two deliberate
under-approximations keep the map honest rather than vacuous:
passing a callable (``sim.schedule(delay, fn)``) does *not* import
``fn``'s effect — the deferred work is attributed to the frame that
lexically contains it — and unresolved external calls default to
``pure`` unless an intrinsic pattern (``open``, ``time.time``,
``*.sample_hop`` …) recognizes them.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Optional, Tuple

from repro.analysis.ir.symbols import FunctionInfo, dotted_ref

__all__ = [
    "EFFECTS",
    "EFFECT_PURE",
    "EFFECT_TRANSPORT",
    "EFFECT_VIRTUAL_TIME",
    "EFFECT_WALL_IO",
    "axiom_effect",
    "intrinsic_call_effect",
    "intrinsic_read_effect",
    "join_effects",
]

EFFECT_PURE = "pure"
EFFECT_VIRTUAL_TIME = "virtual-time"
EFFECT_TRANSPORT = "transport"
EFFECT_WALL_IO = "wall-io"

#: The lattice, bottom to top; join is max rank.
EFFECTS: Tuple[str, ...] = (
    EFFECT_PURE, EFFECT_VIRTUAL_TIME, EFFECT_TRANSPORT,
    EFFECT_WALL_IO,
)

_RANK = {effect: rank for rank, effect in enumerate(EFFECTS)}


def join_effects(left: str, right: str) -> str:
    """Least upper bound of two effects."""
    return left if _RANK[left] >= _RANK[right] else right


# -- axioms ----------------------------------------------------------------

#: ``Network`` methods that touch the simulated wire (sampling a hop
#: consumes deterministic randomness; fault injection mutates link
#: state).  Everything else on Network is topology bookkeeping.
_NETWORK_TRANSPORT: FrozenSet[str] = frozenset({
    "sample_hop", "fail", "restore", "set_loss", "clear_loss",
    "force_drops", "set_latency_factor", "clear_latency_factor",
    "_should_drop",
})

_SIMNET_PREFIX = "repro/simnet/"
_FAULTS_MODULE = "repro/simnet/faults.py"


def axiom_effect(fn: FunctionInfo) -> Optional[str]:
    """Decreed effect for harness functions, ``None`` elsewhere."""
    if not fn.relpath.startswith(_SIMNET_PREFIX):
        return None
    if fn.relpath == _FAULTS_MODULE:
        return EFFECT_TRANSPORT
    if fn.class_name == "Network" and fn.name in _NETWORK_TRANSPORT:
        return EFFECT_TRANSPORT
    return EFFECT_VIRTUAL_TIME


# -- intrinsics for unresolved calls ---------------------------------------

#: Bare names that perform real I/O wherever they appear.
_WALL_NAMES: FrozenSet[str] = frozenset({"open", "print", "input"})

#: ``<time-ish>.<attr>`` reads the wall clock / blocks the thread.
_TIME_ATTRS: FrozenSet[str] = frozenset({
    "time", "sleep", "monotonic", "perf_counter", "process_time",
    "time_ns", "monotonic_ns", "perf_counter_ns",
})

#: ``datetime.now()`` family.
_DATETIME_ATTRS: FrozenSet[str] = frozenset(
    {"now", "utcnow", "today"}
)

#: Exact dotted-path segments that mark a receiver performing real
#: I/O (segment match, not substring — ``self._requests.append`` must
#: not read as the ``requests`` HTTP library).
_WALL_RECEIVER_SEGMENTS: FrozenSet[str] = frozenset({
    "socket", "subprocess", "requests", "urllib", "http",
    "shutil", "stdout", "stderr", "stdin",
})

#: Simulator attributes whose *read or call* is a virtual-time
#: dependency (used when the receiver does not resolve).
_SIM_ATTRS: FrozenSet[str] = frozenset({
    "now", "schedule", "run", "step", "advance", "run_until",
    "cancel",
})


def _simish(receiver_text: str) -> bool:
    tail = receiver_text.rsplit(".", 1)[-1].lower()
    return tail in ("sim", "simulator") or tail.endswith("_sim")


def intrinsic_call_effect(call: ast.Call) -> str:
    """Effect of a call the resolver could not bind to project code.

    Optimistically ``pure`` — external library calls (``sorted``,
    ``dict.get`` …) dominate, and pessimism here would drown the
    boundary map — except for recognized I/O shapes."""
    func = call.func
    if isinstance(func, ast.Name):
        if func.id in _WALL_NAMES:
            return EFFECT_WALL_IO
        return EFFECT_PURE
    if not isinstance(func, ast.Attribute):
        return EFFECT_PURE
    receiver = (dotted_ref(func.value) or "").lower()
    if func.attr == "sample_hop":
        # Any hop sampling is the wire, whoever holds the network.
        return EFFECT_TRANSPORT
    if func.attr in _TIME_ATTRS and (
        receiver == "time" or receiver.endswith(".time")
    ):
        return EFFECT_WALL_IO
    if func.attr in _DATETIME_ATTRS and "datetime" in receiver:
        return EFFECT_WALL_IO
    if any(
        segment in _WALL_RECEIVER_SEGMENTS
        for segment in receiver.split(".")
    ):
        return EFFECT_WALL_IO
    if func.attr in _SIM_ATTRS and _simish(receiver):
        return EFFECT_VIRTUAL_TIME
    return EFFECT_PURE


def intrinsic_read_effect(attribute: ast.Attribute) -> str:
    """Effect of a bare attribute *read* (``sim.now`` is the clock)."""
    receiver = (dotted_ref(attribute.value) or "").lower()
    if attribute.attr == "now" and _simish(receiver):
        return EFFECT_VIRTUAL_TIME
    return EFFECT_PURE
