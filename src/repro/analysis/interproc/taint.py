"""Interprocedural taint fixpoint over the call graph.

The engine evaluates every project function against its callees'
:class:`~repro.analysis.interproc.summaries.Summary` objects,
processing call-graph SCCs callees-first and iterating inside cyclic
SCCs until the (monotone) summaries stabilize.

**Sources** (axiomatic — their bodies read native stores the project
cannot see into): ``GupAdapter.get/export_user`` and every subclass
override, ``ComponentCache.get/get_stale``, and
``SyncEndpoint.item/snapshot/changes_since``.  Unresolvable receivers
fall back to the v1 receiver-marker heuristics (``...cache.get(...)``
etc.) so a dynamically-typed call site never silently drops a source.

**Sanitizer**: the privacy shield, and only the privacy shield.
GUPster applies it in two shapes, both honoured:

* *value* shape — ``shielded = pep.enforce(...)``: the call's result
  is clean (``enforce`` / ``_shield_cached`` by name, or a callee
  whose summary says ``sanitizes``);
* *guard* shape — ``self._shield_cached(parsed, context)`` as a
  statement that raises ``AccessDeniedError`` on deny, after which
  the data is released: once a guard has executed, the current frame
  is **shield-mediated** — existing ``src`` labels are purged and no
  new ones are generated (the shield approved this requester, and the
  referral it pruned governs the subsequent fetches).  The guard
  effect is transitive through a callee whose summary has ``guards``
  set.  Deliberately *not* ``resolve``: ``GupsterServer.resolve``
  earns ``guards`` transitively, while ``Reconciler.resolve`` in sync
  merges raw changes and never will.

**Precision/soundness split**: confidently-resolved calls compose
callee summaries (``returns_source`` + per-parameter flows, sanitizer
kill honoured); unresolved or name-fallback calls take the blanket
union of receiver and argument taint so unknown code never launders
data.  Guard placement is statement-ordered but branch-insensitive —
a guard inside one branch still marks the frame (documented caveat,
DESIGN §4.3); returns *before* the first guard keep their taint.
"""

from __future__ import annotations

import ast
from typing import (
    Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple,
)

from repro.analysis.ir.callgraph import CallGraph, CallResolver
from repro.analysis.ir.project import Project
from repro.analysis.ir.symbols import FunctionInfo, dotted_ref
from repro.analysis.interproc.effects import (
    EFFECT_PURE,
    axiom_effect,
    intrinsic_call_effect,
    intrinsic_read_effect,
    join_effects,
)
from repro.analysis.interproc.summaries import SOURCE_LABEL, Summary

__all__ = [
    "DIRECT_SANITIZERS",
    "SEND_SINKS",
    "SIM_RUN_METHODS",
    "SOURCE_METHODS",
    "TaintEngine",
    "takes_request_context",
]

#: Call-site names that sanitize/guard regardless of resolution — the
#: privacy shield's entry points.
DIRECT_SANITIZERS = frozenset({"enforce", "_shield_cached"})

#: Source axioms: base-class name -> method names that return raw
#: profile data.  Applies to the class and every project descendant.
SOURCE_METHODS: Dict[str, FrozenSet[str]] = {
    "GupAdapter": frozenset({"get", "export_user"}),
    "ComponentCache": frozenset({"get", "get_stale"}),
    "SyncEndpoint": frozenset(
        {"item", "snapshot", "changes_since"}
    ),
}

#: Network-style send sinks: handing raw profile data to one of these
#: is an egress even without a ``return``.
SEND_SINKS = frozenset(
    {"send", "deliver", "publish", "broadcast", "transmit"}
)

#: Methods that (re-)enter the discrete-event loop when invoked on a
#: simulator receiver.
SIM_RUN_METHODS = frozenset({"run", "step", "advance"})

#: In-place container mutations that bind argument taint into the
#: receiver variable (``fragments.append(raw)`` taints ``fragments``).
_BINDING_MUTATORS = frozenset({
    "append", "add", "extend", "insert", "update", "setdefault",
})

#: Receiver-marker fallback (unresolved receivers only):
#: substring-of-receiver-text -> method names treated as sources.
_MARKER_SOURCES: Tuple[Tuple[str, FrozenSet[str]], ...] = (
    ("cache", frozenset({"get", "get_stale"})),
    ("adapter", frozenset({"get", "export_user"})),
    ("endpoint",
     frozenset({"item", "snapshot", "changes_since"})),
    ("store", frozenset({"get", "fetch", "export", "snapshot"})),
)


def takes_request_context(fn: FunctionInfo) -> bool:
    """A parameter named ``context`` or annotated RequestContext marks
    the function as serving an external requester — its return value
    is an egress surface."""
    for param in fn.params:
        if param == "context":
            return True
        annotation = fn.param_annotations.get(param, "")
        if "RequestContext" in annotation:
            return True
    return False


class _Frame:
    """Mutable per-function analysis state."""

    __slots__ = ("env", "returns", "sends", "state")

    def __init__(
        self,
        env: Dict[str, Set[str]],
        returns: List[Tuple[int, Set[str]]],
        sends: List[Tuple[int, int, str]],
        state: Dict[str, bool],
    ) -> None:
        self.env = env
        self.returns = returns
        self.sends = sends
        #: ``guarded``: a shield guard has executed on some path.
        self.state = state

    def child(self) -> "_Frame":
        """Comprehension scope: own bindings, shared effects."""
        return _Frame(
            dict(self.env), self.returns, self.sends, self.state
        )

    @property
    def guarded(self) -> bool:
        return self.state.get("guarded", False)

    def mark_guarded(self) -> None:
        self.state["guarded"] = True
        for labels in self.env.values():
            labels.discard(SOURCE_LABEL)


class TaintEngine:
    """Summary computation + fixpoint over one :class:`Project`."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.resolver = CallResolver(project)
        self._callgraph: Optional[CallGraph] = None
        self._summaries: Dict[str, Summary] = {}
        #: Functions whose summary was (re)computed by :meth:`compute`.
        self.summaries_computed = 0
        self._ancestor_cache: Dict[str, FrozenSet[str]] = {}
        #: qualname -> (syntactic base effect, callee qualnames) —
        #: the resolution work is identical on every fixpoint pass,
        #: so it is done once per function.
        self._effect_plans: Dict[str, Tuple[str, Tuple[str, ...]]] = {}

    # -- public API (contract with the framework) -----------------------

    @property
    def callgraph(self) -> CallGraph:
        if self._callgraph is None:
            self._callgraph = CallGraph(
                self.project, self.resolver
            )
        return self._callgraph

    @property
    def call_scc_count(self) -> int:
        return len(self.callgraph.sccs)

    def preload(self, summaries: Dict[str, Any]) -> None:
        """Install cached summaries (``summaries_for`` round-trip)."""
        for qualname, raw in summaries.items():
            if isinstance(raw, Summary):
                self._summaries[qualname] = raw
            else:
                self._summaries[qualname] = Summary.from_dict(raw)

    def summaries_for(self, relpath: str) -> Dict[str, Any]:
        """JSON-ready summaries of every function in *relpath*."""
        module = self.project.by_relpath.get(relpath)
        if module is None:
            return {}
        picked: Dict[str, Any] = {}
        for fn in module.symbols.all_functions():
            summary = self._summaries.get(fn.qualname)
            if summary is not None:
                picked[fn.qualname] = summary.to_dict()
        return picked

    def summary_of(self, qualname: str) -> Optional[Summary]:
        return self._summaries.get(qualname)

    def compute(self, dirty_relpaths: Sequence[str]) -> None:
        """Fixpoint over the call graph, recomputing only SCCs that
        contain a function from a dirty module (or that lack a
        preloaded summary)."""
        dirty_paths = set(dirty_relpaths)
        graph = self.callgraph
        for scc in graph.sccs:
            needs = False
            for qualname in scc:
                fn = self.project.functions.get(qualname)
                if fn is None:  # pragma: no cover - defensive
                    continue
                if (
                    fn.relpath in dirty_paths
                    or qualname not in self._summaries
                ):
                    needs = True
                    break
            if not needs:
                continue
            self._solve_scc(scc)

    # -- fixpoint -------------------------------------------------------

    def _solve_scc(self, scc: Tuple[str, ...]) -> None:
        members = [
            self.project.functions[q]
            for q in scc if q in self.project.functions
        ]
        # Optimistic start inside the SCC: absent summaries read as
        # clean and grow monotonically until stable.
        for _ in range(32):
            changed = False
            for fn in members:
                summary = self._summarize(fn)
                if self._summaries.get(fn.qualname) != summary:
                    self._summaries[fn.qualname] = summary
                    changed = True
                self.summaries_computed += 1
            if not changed:
                break

    # -- per-function analysis ------------------------------------------

    def _summarize(self, fn: FunctionInfo) -> Summary:
        env: Dict[str, Set[str]] = {
            name: {"p%d" % index}
            for index, name in enumerate(fn.params)
        }
        frame = _Frame(env, [], [], {})
        # Two sweeps: loop-carried and use-before-def local taint
        # stabilizes on the second pass (matches the v1 rule).
        for _ in range(2):
            del frame.returns[:]
            del frame.sends[:]
            frame.state["guarded"] = False
            self._walk_block(fn.node.body, frame, fn)
        labels: Set[str] = set()
        tainted_lines: List[int] = []
        for line, taint in frame.returns:
            labels |= taint
            if SOURCE_LABEL in taint:
                tainted_lines.append(line)
        param_flows = frozenset(
            int(label[1:]) for label in labels
            if label.startswith("p") and label[1:].isdigit()
        )
        return Summary(
            qualname=fn.qualname,
            relpath=fn.relpath,
            returns_source=SOURCE_LABEL in labels,
            param_flows=param_flows,
            sanitizes=fn.name in DIRECT_SANITIZERS,
            guards=(
                frame.guarded or fn.name in DIRECT_SANITIZERS
            ),
            tainted_return_lines=tuple(sorted(set(tainted_lines))),
            egress_sends=tuple(frame.sends),
            reaches_sim_run=self._reaches_sim_run(fn),
            effect=self._effect_of(fn),
        )

    # -- statements -----------------------------------------------------

    def _walk_block(
        self,
        body: Sequence[ast.stmt],
        frame: _Frame,
        fn: FunctionInfo,
    ) -> None:
        for stmt in body:
            self._walk_stmt(stmt, frame, fn)

    def _walk_stmt(
        self,
        stmt: ast.stmt,
        frame: _Frame,
        fn: FunctionInfo,
    ) -> None:
        if isinstance(stmt, ast.Return):
            taint = (
                self._eval(stmt.value, frame, fn)
                if stmt.value is not None else set()
            )
            frame.returns.append((stmt.lineno, taint))
        elif isinstance(stmt, ast.Assign):
            taint = self._eval(stmt.value, frame, fn)
            for target in stmt.targets:
                self._bind(target, taint, frame)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                taint = self._eval(stmt.value, frame, fn)
                self._bind(stmt.target, taint, frame)
        elif isinstance(stmt, ast.AugAssign):
            taint = self._eval(stmt.value, frame, fn)
            if isinstance(stmt.target, ast.Name):
                frame.env.setdefault(
                    stmt.target.id, set()
                ).update(taint)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, frame, fn)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._eval(stmt.test, frame, fn)
            self._walk_block(stmt.body, frame, fn)
            self._walk_block(stmt.orelse, frame, fn)
        elif isinstance(stmt, ast.For):
            taint = self._eval(stmt.iter, frame, fn)
            self._bind(stmt.target, taint, frame)
            self._walk_block(stmt.body, frame, fn)
            self._walk_block(stmt.orelse, frame, fn)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                taint = self._eval(item.context_expr, frame, fn)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, taint, frame)
            self._walk_block(stmt.body, frame, fn)
        elif isinstance(stmt, ast.Try):
            self._walk_block(stmt.body, frame, fn)
            for handler in stmt.handlers:
                self._walk_block(handler.body, frame, fn)
            self._walk_block(stmt.orelse, frame, fn)
            self._walk_block(stmt.finalbody, frame, fn)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child, frame, fn)
        # Nested defs/classes: their *returns* are not this
        # function's returns; call effects are covered by
        # ``_reaches_sim_run`` (which walks everything) and by the
        # call graph's nested-call attribution.

    def _bind(self, target: ast.expr, taint: Set[str],
              frame: _Frame) -> None:
        if isinstance(target, ast.Name):
            frame.env.setdefault(target.id, set()).update(taint)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, taint, frame)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, taint, frame)
        elif isinstance(target, ast.Subscript):
            # ``x[k] = tainted`` taints the container variable.
            self._bind(target.value, taint, frame)
        # Attribute stores: object-field taint is out of scope (the
        # source axioms cover stateful readers).

    # -- expressions ----------------------------------------------------

    def _eval(
        self,
        expr: Optional[ast.expr],
        frame: _Frame,
        fn: FunctionInfo,
    ) -> Set[str]:
        if expr is None:
            return set()
        if isinstance(expr, ast.Name):
            return set(frame.env.get(expr.id, ()))
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, frame, fn)
        if isinstance(expr, ast.Attribute):
            return self._eval(expr.value, frame, fn)
        if isinstance(expr, ast.Subscript):
            return (
                self._eval(expr.value, frame, fn)
                | self._eval(expr.slice, frame, fn)
            )
        if isinstance(expr, ast.IfExp):
            self._eval(expr.test, frame, fn)
            return (
                self._eval(expr.body, frame, fn)
                | self._eval(expr.orelse, frame, fn)
            )
        if isinstance(expr, ast.BoolOp):
            taint: Set[str] = set()
            for value in expr.values:
                taint |= self._eval(value, frame, fn)
            return taint
        if isinstance(expr, ast.BinOp):
            return (
                self._eval(expr.left, frame, fn)
                | self._eval(expr.right, frame, fn)
            )
        if isinstance(expr, ast.UnaryOp):
            return self._eval(expr.operand, frame, fn)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            taint = set()
            for element in expr.elts:
                taint |= self._eval(element, frame, fn)
            return taint
        if isinstance(expr, ast.Dict):
            taint = set()
            for key in expr.keys:
                if key is not None:
                    taint |= self._eval(key, frame, fn)
            for value in expr.values:
                taint |= self._eval(value, frame, fn)
            return taint
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value, frame, fn)
        if isinstance(expr, ast.JoinedStr):
            taint = set()
            for value in expr.values:
                taint |= self._eval(value, frame, fn)
            return taint
        if isinstance(expr, ast.FormattedValue):
            return self._eval(expr.value, frame, fn)
        if isinstance(
            expr,
            (ast.ListComp, ast.SetComp, ast.GeneratorExp),
        ):
            local = frame.child()
            for comp in expr.generators:
                iter_taint = self._eval(comp.iter, local, fn)
                self._bind(comp.target, iter_taint, local)
                for cond in comp.ifs:
                    self._eval(cond, local, fn)
            return self._eval(expr.elt, local, fn)
        if isinstance(expr, ast.DictComp):
            local = frame.child()
            for comp in expr.generators:
                iter_taint = self._eval(comp.iter, local, fn)
                self._bind(comp.target, iter_taint, local)
                for cond in comp.ifs:
                    self._eval(cond, local, fn)
            return (
                self._eval(expr.key, local, fn)
                | self._eval(expr.value, local, fn)
            )
        if isinstance(expr, ast.Compare):
            # Comparisons yield booleans — never profile data.
            self._eval(expr.left, frame, fn)
            for comparator in expr.comparators:
                self._eval(comparator, frame, fn)
            return set()
        if isinstance(expr, ast.NamedExpr):
            taint = self._eval(expr.value, frame, fn)
            self._bind(expr.target, taint, frame)
            return taint
        return set()

    def _eval_call(
        self,
        call: ast.Call,
        frame: _Frame,
        fn: FunctionInfo,
    ) -> Set[str]:
        func = call.func
        name: Optional[str] = None
        receiver_taint: Set[str] = set()
        if isinstance(func, ast.Attribute):
            name = func.attr
            receiver_taint = self._eval(func.value, frame, fn)
        elif isinstance(func, ast.Name):
            name = func.id
        arg_taints = [
            self._eval(arg, frame, fn) for arg in call.args
        ]
        kw_taints: Dict[Optional[str], Set[str]] = {
            kw.arg: self._eval(kw.value, frame, fn)
            for kw in call.keywords
        }
        # Send sinks: raw profile data handed to the network.
        if name in SEND_SINKS:
            handed: Set[str] = set()
            for taint in arg_taints:
                handed |= taint
            for taint in kw_taints.values():
                handed |= taint
            if SOURCE_LABEL in handed:
                frame.sends.append(
                    (call.lineno, call.col_offset, name)
                )
        # In-place container mutation binds taint into the receiver.
        if (
            name in _BINDING_MUTATORS
            and isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
        ):
            merged: Set[str] = set()
            for taint in arg_taints:
                merged |= taint
            for taint in kw_taints.values():
                merged |= taint
            frame.env.setdefault(
                func.value.id, set()
            ).update(merged)
        # The shield: value kill + frame guard.
        if name in DIRECT_SANITIZERS:
            frame.mark_guarded()
            return set()
        resolution = self.resolver.resolve(call, fn)
        if resolution.targets and resolution.confident:
            result: Set[str] = set()
            for target in resolution.targets:
                result |= self._apply_summary(
                    target, call, resolution.is_constructor,
                    receiver_taint, arg_taints, kw_taints, frame,
                )
            if frame.guarded:
                result.discard(SOURCE_LABEL)
            return result
        # Fallback family dispatch or fully unresolved: blanket
        # union (unknown code may return anything it was given) plus
        # source axioms / receiver markers.
        blanket: Set[str] = set(receiver_taint)
        for taint in arg_taints:
            blanket |= taint
        for taint in kw_taints.values():
            blanket |= taint
        if resolution.targets:
            for target in resolution.targets:
                if self._is_source(target):
                    blanket.add(SOURCE_LABEL)
                summary = self._summaries.get(target.qualname)
                if summary is not None and summary.returns_source:
                    blanket.add(SOURCE_LABEL)
        elif (
            isinstance(func, ast.Attribute)
            and name is not None
            and self._marker_source(func, name)
        ):
            blanket.add(SOURCE_LABEL)
        if frame.guarded:
            blanket.discard(SOURCE_LABEL)
        return blanket

    def _apply_summary(
        self,
        target: FunctionInfo,
        call: ast.Call,
        is_constructor: bool,
        receiver_taint: Set[str],
        arg_taints: List[Set[str]],
        kw_taints: Dict[Optional[str], Set[str]],
        frame: _Frame,
    ) -> Set[str]:
        summary = self._summaries.get(target.qualname)
        if summary is not None and (
            summary.sanitizes or summary.guards
        ):
            # The callee runs the shield before releasing data (or
            # raising): the frame is shield-mediated from here on.
            frame.mark_guarded()
        if self._is_source(target):
            return {SOURCE_LABEL}
        if summary is None:
            # In-SCC callee not yet summarized: optimistic bottom;
            # the enclosing fixpoint re-runs until stable.
            return set()
        if summary.sanitizes:
            return set()
        result: Set[str] = set()
        if summary.returns_source:
            result.add(SOURCE_LABEL)
        bound = target.is_method and isinstance(
            call.func, ast.Attribute
        ) and not is_constructor
        offset = 1 if (bound or is_constructor) else 0
        for index in summary.param_flows:
            if bound and index == 0:
                result |= receiver_taint
                continue
            position = index - offset
            if 0 <= position < len(arg_taints):
                result |= arg_taints[position]
                continue
            if index < len(target.params):
                keyword = target.params[index]
                if keyword in kw_taints:
                    result |= kw_taints[keyword]
        return result

    # -- sources / sinks -------------------------------------------------

    def _ancestors(self, owner: str) -> FrozenSet[str]:
        cached = self._ancestor_cache.get(owner)
        if cached is not None:
            return cached
        seen: Set[str] = set()
        frontier = [owner]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.project.bases_of(current))
        result = frozenset(seen)
        self._ancestor_cache[owner] = result
        return result

    def _is_source(self, fn: FunctionInfo) -> bool:
        if fn.class_name is None:
            return False
        owner = "%s.%s" % (fn.module_name, fn.class_name)
        for ancestor in self._ancestors(owner):
            basename = ancestor.rsplit(".", 1)[-1]
            methods = SOURCE_METHODS.get(basename)
            if methods is not None and fn.name in methods:
                return True
        return False

    @staticmethod
    def _marker_source(func: ast.Attribute, name: str) -> bool:
        receiver = dotted_ref(func.value) or ""
        text = receiver.lower()
        if not text:
            return False
        for marker, methods in _MARKER_SOURCES:
            if marker in text and name in methods:
                return True
        return False

    # -- effect inference -----------------------------------------------

    def _effect_of(self, fn: FunctionInfo) -> str:
        """Join of the function's own intrinsic effects and its
        resolved callees' summary effects (axioms trump bodies).
        Monotone in the callee summaries, so the enclosing SCC
        fixpoint converges; in-SCC callees without a summary yet read
        as ``pure`` (optimistic bottom) until the next pass."""
        decreed = axiom_effect(fn)
        if decreed is not None:
            return decreed
        base, callees = self._effect_plan(fn)
        effect = base
        for qualname in callees:
            summary = self._summaries.get(qualname)
            if summary is not None:
                effect = join_effects(effect, summary.effect)
        return effect

    def _effect_plan(
        self, fn: FunctionInfo
    ) -> Tuple[str, Tuple[str, ...]]:
        """The per-function syntactic half of effect inference: the
        join of intrinsic/axiom effects visible in the body, plus the
        non-axiom project callees whose summaries must be joined in.
        Nested ``def`` bodies are included — deferred work belongs to
        the frame that lexically contains it — while passing a
        callable *reference* contributes nothing."""
        plan = self._effect_plans.get(fn.qualname)
        if plan is not None:
            return plan
        base = EFFECT_PURE
        callees: Set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Attribute):
                base = join_effects(
                    base, intrinsic_read_effect(node)
                )
                continue
            if not isinstance(node, ast.Call):
                continue
            resolution = self.resolver.resolve(node, fn)
            if resolution.targets:
                for target in resolution.targets:
                    decreed = axiom_effect(target)
                    if decreed is not None:
                        base = join_effects(base, decreed)
                    else:
                        callees.add(target.qualname)
            else:
                base = join_effects(
                    base, intrinsic_call_effect(node)
                )
        plan = (base, tuple(sorted(callees)))
        self._effect_plans[fn.qualname] = plan
        return plan

    # -- simulator re-entrancy ------------------------------------------

    def _reaches_sim_run(self, fn: FunctionInfo) -> bool:
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in SIM_RUN_METHODS
                and self.sim_receiver(func.value, fn)
            ):
                return True
            for target in self.resolver.resolve(node, fn).targets:
                summary = self._summaries.get(target.qualname)
                if summary is not None and summary.reaches_sim_run:
                    return True
        return False

    def sim_receiver(self, expr: ast.expr,
                     fn: FunctionInfo) -> bool:
        """Does *expr* look like (or resolve to) a Simulator?"""
        qualname = self.resolver.receiver_class(expr, fn)
        if qualname is not None:
            return qualname.rsplit(".", 1)[-1] == "Simulator"
        receiver = dotted_ref(expr) or ""
        tail = receiver.rsplit(".", 1)[-1].lower()
        return tail in ("sim", "simulator") or tail.endswith("_sim")
