"""Summary-based interprocedural engines over the gupcheck IR.

:mod:`~repro.analysis.interproc.summaries` defines the per-function
:class:`~repro.analysis.interproc.summaries.Summary` — a small,
JSON-serializable abstraction of one function: which labels (the
profile-data source ``src`` or a parameter ``p<i>``) may reach its
return value unsanitized, whether it *is* a shield sanitizer, and
whether it transitively re-enters the simulator loop.

:mod:`~repro.analysis.interproc.taint` runs the fixpoint: call-graph
SCCs are processed callees-first, each function is evaluated against
its callees' summaries, and cycles iterate until the (monotone)
summaries stabilize.  Cached summaries from a previous run can be
preloaded so only dirty SCCs are recomputed.
"""

from __future__ import annotations

from repro.analysis.interproc.summaries import Summary
from repro.analysis.interproc.taint import TaintEngine

__all__ = ["Summary", "TaintEngine"]
