"""Generic dataflow fixpoint solving over CFGs (gupcheck v3).

:mod:`repro.analysis.dataflow.solver` runs a forward or backward
worklist over a :class:`repro.analysis.cfg.CFG`, reusing the Tarjan
SCC machinery from :mod:`repro.analysis.ir.project` to visit the
graph's condensation in topological order — acyclic regions converge
in one pass, loops iterate only within their own SCC.

The typestate rules (``span-balance``, ``cursor-lifecycle``,
``memo-confinement``) are thin clients: each provides a lattice
(``join``), a per-block ``transfer`` function, and reads the solved
block-entry states back.
"""

from repro.analysis.dataflow.solver import Solution, solve

__all__ = ["Solution", "solve"]
