"""A direction-agnostic worklist solver over basic blocks.

The client supplies the lattice implicitly: a ``join`` combining two
states and a ``transfer`` mapping one block's input state to its
output state.  Both must be monotone and the lattice of finite height,
or the fixpoint does not exist; a generous iteration cap turns a
non-terminating client into a loud error instead of a hang.

States are opaque to the solver.  ``None`` is reserved as the
"unreached" bottom: blocks no path has touched keep ``None`` and their
``transfer`` is never called, so clients never see partial garbage
from dead code after an unconditional jump.

The solver condenses the block graph with
:func:`repro.analysis.ir.project.tarjan_sccs` — the same machinery
that orders import and call SCCs — and visits components in
topological order of the *information flow* (predecessors-first when
forward, successors-first when backward).  Singleton components
stabilize in one transfer; loops iterate only within their own
component.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.analysis.cfg import CFG
from repro.analysis.ir.project import tarjan_sccs

__all__ = ["Solution", "solve"]

#: Hard per-component iteration cap — monotone transfer over a
#: finite-height lattice converges far below this; hitting it means
#: the client's transfer/join oscillates.
_MAX_PASSES = 10_000


class Solution:
    """Solved block states, in *program* order regardless of the
    solve direction: ``before[b]`` holds at the block's entry,
    ``after[b]`` at its exit.  ``None`` marks unreached blocks."""

    __slots__ = ("before", "after")

    def __init__(
        self,
        before: Dict[int, Optional[Any]],
        after: Dict[int, Optional[Any]],
    ) -> None:
        self.before = before
        self.after = after


def solve(
    cfg: CFG,
    boundary: Any,
    transfer: Callable[[int, Any], Any],
    join: Callable[[Any, Any], Any],
    direction: str = "forward",
) -> Solution:
    """Run *transfer* to fixpoint over *cfg*.

    ``boundary`` seeds the entry block (forward) or exit block
    (backward).  ``transfer(block_index, state)`` must return a fresh
    state — the solver never hands the same object to two blocks.
    ``join(a, b)`` combines states at merge points; it is only called
    with non-``None`` operands.
    """
    if direction not in ("forward", "backward"):
        raise ValueError("direction must be 'forward' or 'backward'")
    forward = direction == "forward"
    if forward:
        seed = cfg.entry
        flow_preds = [list(block.preds) for block in cfg.blocks]
        flow_succs = [list(block.succs) for block in cfg.blocks]
    else:
        seed = cfg.exit
        flow_preds = [list(block.succs) for block in cfg.blocks]
        flow_succs = [list(block.preds) for block in cfg.blocks]

    nodes = [str(block.index) for block in cfg.blocks]
    # Tarjan emits components dependencies-first; information flows
    # from flow-predecessors, so those are the dependency edges.
    components = tarjan_sccs(
        nodes, lambda node: [str(p) for p in flow_preds[int(node)]]
    )

    #: block -> state at its flow-entry (before transfer).
    inputs: Dict[int, Optional[Any]] = {
        block.index: None for block in cfg.blocks
    }
    #: block -> state at its flow-exit (after transfer).
    outputs: Dict[int, Optional[Any]] = dict(inputs)
    inputs[seed] = boundary

    def _joined_input(index: int) -> Optional[Any]:
        state: Optional[Any] = boundary if index == seed else None
        for pred in flow_preds[index]:
            pred_out = outputs[pred]
            if pred_out is None:
                continue
            state = (
                pred_out if state is None else join(state, pred_out)
            )
        return state

    for component in components:
        members = sorted(int(node) for node in component)
        member_set = set(members)
        cyclic = len(members) > 1 or members[0] in flow_succs[members[0]]
        worklist = list(members)
        passes = 0
        while worklist:
            passes += 1
            if passes > _MAX_PASSES * max(1, len(members)):
                raise RuntimeError(
                    "dataflow did not converge — non-monotone "
                    "transfer or infinite lattice"
                )
            index = worklist.pop(0)
            state = _joined_input(index)
            inputs[index] = state
            new_out = (
                None if state is None else transfer(index, state)
            )
            if new_out == outputs[index]:
                continue
            outputs[index] = new_out
            if cyclic:
                for succ in flow_succs[index]:
                    if succ in member_set and succ not in worklist:
                        worklist.append(succ)

    if forward:
        return Solution(before=inputs, after=outputs)
    return Solution(before=outputs, after=inputs)
