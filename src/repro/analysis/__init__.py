"""gupcheck — GUPster-aware static analysis.

The GUPster promises that runtime tests cannot fully guard — *every*
profile read is mediated by the privacy shield, the simulator is
deterministic and replayable, layers do not reach around their
interfaces — are statically checkable. This package is a small,
reusable AST-visitor framework plus the repo-specific rules that
encode those invariants (DESIGN.md §4.2–4.3):

========================  ====================================================
rule                      invariant protected
========================  ====================================================
``shield-egress``         context-mediated egress in the server/query/cache
                          layer reaches a privacy-shield check before profile
                          data flows back to a requester (per-class, v1)
``shield-egress-ip``      the same invariant *whole-program*: interprocedural
                          taint from every store/adapter/cache/sync source,
                          through services/sync/subscription/referral, to
                          every return/send sink — shield is the only
                          sanitizer
``determinism``           simulated components use the virtual clock and an
                          injected seeded ``random.Random`` — never wall-clock
                          time or the shared module-level ``random`` state
``layering``              ``core``/``services`` speak to native stores only
                          through ``repro.adapters``
``exception-totality``    pxml parsers raise only GUP error types, and never
                          swallow them with bare/overbroad ``except``
``cache-key-scope``       component-cache reads/writes carry the requester
                          scope (regression guard for the PR 1 shield bypass)
``sim-blocking``          no wall-clock sleeps or blocking I/O inside simnet
                          event handlers
``sim-race``              two callbacks scheduled at the same virtual
                          timestamp never mutate the same attribute
``iter-order``            unordered ``set`` iteration never feeds event
                          scheduling or result assembly (warning)
``handler-reentrancy``    scheduled callbacks never re-enter
                          ``Simulator.run/step/advance`` (whole-program)
========================  ====================================================

Run it over the source tree::

    PYTHONPATH=src python -m repro.analysis src/          # human output
    PYTHONPATH=src python -m repro.analysis --json src/   # machine output
    PYTHONPATH=src python -m repro.analysis --sarif out.sarif src/
    PYTHONPATH=src python -m repro.analysis --stats src/  # run-shape counters

Whole-program rules run on an incremental cache
(``.gupcheck-cache.json``): modules whose *deep* content hash (own
source + transitive import closure + project interface fingerprint)
is unchanged replay their stored findings and function summaries, so
a one-file edit re-analyzes only the dirty import/call SCCs.

A violation can be suppressed — with a mandatory justification — by a
comment on (or immediately above) the offending line::

    time.time()  # gupcheck: ignore[determinism] -- wall-clock only in __repr__

Suppressions without a justification, or naming unknown rules, are
themselves violations.  Pre-existing findings can be accepted into a
baseline file (``--write-baseline`` / ``--baseline``) for gradual
adoption; the repository ships an empty baseline for ``src/``.
"""

from repro.analysis.framework import (
    AnalysisStats,
    Analyzer,
    ModuleInfo,
    ProjectRule,
    Report,
    Rule,
    Violation,
    check_source,
)
from repro.analysis.rules import ALL_RULES, default_rules

__all__ = [
    "ALL_RULES",
    "AnalysisStats",
    "Analyzer",
    "ModuleInfo",
    "ProjectRule",
    "Report",
    "Rule",
    "Violation",
    "check_source",
    "default_rules",
]
