"""gupcheck IR: whole-program view of the source tree.

``repro.analysis.ir`` turns parsed modules into a project-level
intermediate representation:

* :mod:`~repro.analysis.ir.symbols` — per-module symbol tables
  (functions, classes with base/attribute typing, import aliases);
* :mod:`~repro.analysis.ir.project` — the
  :class:`~repro.analysis.ir.project.Project`: dotted-name module map,
  import graph with SCC condensation, per-module deep content hashes
  (the incremental-cache key), and the project interface fingerprint;
* :mod:`~repro.analysis.ir.callgraph` — call-site resolution (module
  functions, self/typed-receiver methods, adapter-interface dispatch
  over ``adapters/base`` subclasses) and the function-level call graph.

The interprocedural engines in :mod:`repro.analysis.interproc` run on
top of this IR.
"""

from __future__ import annotations

from repro.analysis.ir.project import Project, SourceModule

__all__ = ["Project", "SourceModule"]
