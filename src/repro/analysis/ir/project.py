"""Project-level IR: module map, import graph, SCCs, deep hashes.

The :class:`Project` is the whole-program view the interprocedural
engines run on.  It owns

* the dotted-name module map (``repro/core/server.py`` ->
  ``repro.core.server``);
* the *project-internal* import graph and its Tarjan SCC
  condensation (dependencies-first topological order);
* per-module **deep content hashes** — the incremental-cache key for
  project-level rules: a module's deep sha covers its own source, the
  transitive import closure's sources and the global *interface
  fingerprint* (signatures only, never bodies), so editing a function
  body only dirties the module's own SCC and its dependents;
* a project class index: base-class resolution, subclass maps and
  adapter-style interface dispatch (``implementations_of``).

The taint engine (:mod:`repro.analysis.interproc.taint`) is attached
lazily via :attr:`Project.taint`.
"""

from __future__ import annotations

import hashlib
from typing import (
    TYPE_CHECKING, Callable, Dict, Iterable, Iterator, List,
    Optional, Sequence, Set, Tuple,
)

from repro.analysis.ir.symbols import (
    ClassInfo, FunctionInfo, ModuleSymbols,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.framework import ModuleInfo
    from repro.analysis.interproc.growth import GrowthAnalysis
    from repro.analysis.interproc.taint import TaintEngine

__all__ = [
    "Project", "SourceModule", "module_name_for", "tarjan_sccs",
]


def module_name_for(relpath: str) -> str:
    """Dotted module name for an anchored relpath.

    ``repro/core/server.py`` -> ``repro.core.server``;
    ``repro/pxml/__init__.py`` -> ``repro.pxml``;
    ``tests/test_x.py`` -> ``tests.test_x``.
    """
    path = relpath[:-3] if relpath.endswith(".py") else relpath
    parts = [p for p in path.replace("\\", "/").split("/") if p]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else relpath


class SourceModule:
    """One analyzed module: raw info + symbol table + resolved deps."""

    __slots__ = ("info", "name", "symbols", "imports")

    def __init__(self, info: "ModuleInfo") -> None:
        self.info = info
        self.name = module_name_for(info.relpath)
        self.symbols = ModuleSymbols(
            self.name, info.relpath, info.tree
        )
        #: Project-internal module names this module imports
        #: (resolved against the project module map by Project).
        self.imports: Set[str] = set()

    @property
    def relpath(self) -> str:
        return self.info.relpath

    def __repr__(self) -> str:
        return "<SourceModule %s>" % self.name


class Project:
    """Whole-program IR over a set of :class:`ModuleInfo` objects."""

    def __init__(self, infos: Sequence["ModuleInfo"]) -> None:
        self.modules: Dict[str, SourceModule] = {}
        self.by_relpath: Dict[str, SourceModule] = {}
        for info in infos:
            module = SourceModule(info)
            # Last writer wins on (unlikely) duplicate dotted names.
            self.modules[module.name] = module
            self.by_relpath[info.relpath] = module
        self._package_names = self._collect_packages()
        for module in self.modules.values():
            module.imports = self._internal_imports(module)
        #: SCCs of the import graph, dependencies first.  Each SCC is
        #: a sorted tuple of module (dotted) names.
        self.import_sccs: List[Tuple[str, ...]] = tarjan_sccs(
            sorted(self.modules),
            lambda name: sorted(self.modules[name].imports),
        )
        self._scc_of: Dict[str, int] = {}
        for index, scc in enumerate(self.import_sccs):
            for name in scc:
                self._scc_of[name] = index
        self.interface_fingerprint = self._interface_fingerprint()
        self._deep_sha: Dict[str, str] = {}
        self._compute_deep_shas()
        # -- class / function index ---------------------------------
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        for module in self.modules.values():
            for cls in module.symbols.classes.values():
                self.classes[cls.qualname] = cls
            for fn in module.symbols.all_functions():
                self.functions[fn.qualname] = fn
        self._base_qualnames: Dict[str, List[str]] = {}
        self._subclasses: Dict[str, Set[str]] = {}
        self._link_classes()
        self._method_index: Dict[str, List[FunctionInfo]] = {}
        for fn in self.functions.values():
            if fn.is_method:
                self._method_index.setdefault(fn.name, []).append(fn)
        self._taint: Optional["TaintEngine"] = None
        self._growth: Optional["GrowthAnalysis"] = None

    # -- construction ---------------------------------------------------

    @classmethod
    def from_sources(
        cls, sources: Dict[str, str]
    ) -> "Project":
        """Build a project from ``{relpath: source}`` (test fixtures)."""
        from repro.analysis.framework import ModuleInfo

        infos = []
        for relpath in sorted(sources):
            infos.append(
                ModuleInfo.from_source(sources[relpath], relpath)
            )
        return cls(infos)

    def _collect_packages(self) -> Set[str]:
        packages: Set[str] = set()
        for name in self.modules:
            parts = name.split(".")
            for i in range(1, len(parts)):
                packages.add(".".join(parts[:i]))
            packages.add(name)
        return packages

    def _internal_imports(self, module: SourceModule) -> Set[str]:
        """Module names in *this project* that ``module`` depends on."""
        deps: Set[str] = set()
        targets = set(module.symbols.imports.values())
        targets.update(module.symbols.import_targets)
        for target in sorted(targets):
            resolved = self.resolve_module(target)
            if resolved is not None and resolved != module.name:
                deps.add(resolved)
        return deps

    def resolve_module(self, dotted: str) -> Optional[str]:
        """Longest project-module prefix of a dotted import target.

        ``repro.core.server.GupsterServer`` -> ``repro.core.server``;
        ``repro.core`` (a package) -> ``repro.core`` when
        ``repro/core/__init__.py`` is in the project, else the longest
        real module prefix; external names -> None.
        """
        parts = dotted.split(".")
        for end in range(len(parts), 0, -1):
            candidate = ".".join(parts[:end])
            if candidate in self.modules:
                return candidate
        return None

    # -- hashing --------------------------------------------------------

    def _interface_fingerprint(self) -> str:
        digest = hashlib.sha256()
        for name in sorted(self.modules):
            digest.update(name.encode("utf-8"))
            for line in self.modules[name].symbols.interface_lines():
                digest.update(b"\n")
                digest.update(line.encode("utf-8"))
            digest.update(b"\x00")
        return digest.hexdigest()

    def _compute_deep_shas(self) -> None:
        """Per-module deep sha: own SCC sources + dep SCC hashes +
        the project interface fingerprint.

        Computed SCC-by-SCC in topological (deps-first) order so each
        SCC hash folds in its dependency SCCs' hashes — a change
        anywhere in the transitive closure changes the deep sha.
        """
        scc_hash: List[str] = []
        for index, scc in enumerate(self.import_sccs):
            digest = hashlib.sha256()
            for name in scc:
                digest.update(name.encode("utf-8"))
                digest.update(self.modules[name].info.sha.encode())
            dep_sccs = sorted({
                self._scc_of[dep]
                for name in scc
                for dep in self.modules[name].imports
                if self._scc_of[dep] != index
            })
            for dep in dep_sccs:
                digest.update(scc_hash[dep].encode())
            digest.update(self.interface_fingerprint.encode())
            scc_hash.append(digest.hexdigest())
            for name in scc:
                self._deep_sha[name] = scc_hash[index]

    def deep_sha(self, relpath: str) -> str:
        """Incremental-cache key for project-level analysis results."""
        module = self.by_relpath[relpath]
        return self._deep_sha[module.name]

    # -- class index ----------------------------------------------------

    def _link_classes(self) -> None:
        for cls in self.classes.values():
            module = self.modules.get(cls.module_name)
            if module is None:  # pragma: no cover - defensive
                continue
            bases: List[str] = []
            for ref in cls.base_refs:
                absolute = module.symbols.resolve_local(ref)
                if absolute is not None and absolute in self.classes:
                    bases.append(absolute)
                    self._subclasses.setdefault(
                        absolute, set()
                    ).add(cls.qualname)
            self._base_qualnames[cls.qualname] = bases

    def find_class(self, qualname: str) -> Optional[ClassInfo]:
        return self.classes.get(qualname)

    def bases_of(self, qualname: str) -> List[str]:
        return self._base_qualnames.get(qualname, [])

    def subclasses_of(self, qualname: str) -> List[str]:
        """All project descendants (transitive), sorted."""
        seen: Set[str] = set()
        frontier = list(self._subclasses.get(qualname, ()))
        while frontier:
            sub = frontier.pop()
            if sub in seen:
                continue
            seen.add(sub)
            frontier.extend(self._subclasses.get(sub, ()))
        return sorted(seen)

    def method_on(
        self, qualname: str, name: str
    ) -> Optional[FunctionInfo]:
        """Method ``name`` on class ``qualname`` or its bases (BFS)."""
        seen: Set[str] = set()
        frontier = [qualname]
        while frontier:
            current = frontier.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            method = cls.methods.get(name)
            if method is not None:
                return method
            frontier.extend(self._base_qualnames.get(current, []))
        return None

    def implementations_of(
        self, qualname: str, name: str
    ) -> List[FunctionInfo]:
        """Interface dispatch: the base implementation (if any) plus
        every descendant override — e.g. a call through
        ``adapters/base`` resolves to all adapter subclasses."""
        picked: List[FunctionInfo] = []
        base = self.method_on(qualname, name)
        if base is not None:
            picked.append(base)
        for sub in self.subclasses_of(qualname):
            cls = self.classes.get(sub)
            if cls is not None and name in cls.methods:
                picked.append(cls.methods[name])
        return picked

    def methods_named(self, name: str) -> List[FunctionInfo]:
        """All project methods with a given name (fallback dispatch)."""
        return list(self._method_index.get(name, ()))

    # -- queries --------------------------------------------------------

    def modules_in_order(self) -> List[SourceModule]:
        """Modules in import-SCC topological order (deps first)."""
        ordered: List[SourceModule] = []
        for scc in self.import_sccs:
            for name in scc:
                ordered.append(self.modules[name])
        return ordered

    @property
    def function_count(self) -> int:
        return len(self.functions)

    @property
    def taint(self) -> "TaintEngine":
        """Lazily constructed interprocedural taint engine."""
        if self._taint is None:
            from repro.analysis.interproc.taint import TaintEngine

            self._taint = TaintEngine(self)
        return self._taint

    @property
    def growth(self) -> "GrowthAnalysis":
        """Lazily computed whole-program container-growth verdicts."""
        if self._growth is None:
            from repro.analysis.interproc.growth import (
                GrowthAnalysis,
            )

            self._growth = GrowthAnalysis(self)
        return self._growth


def tarjan_sccs(
    nodes: Sequence[str],
    successors: Callable[[str], Iterable[str]],
) -> List[Tuple[str, ...]]:
    """Iterative Tarjan SCC; returns SCCs dependencies-first.

    ``successors(node)`` must yield nodes in the graph; unknown names
    are ignored.  Tarjan emits SCCs in reverse topological order of
    the condensation, which for a dependency graph (edge = "imports")
    is exactly dependencies-first.
    """
    known = set(nodes)
    index_of: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[Tuple[str, ...]] = []
    counter = [0]

    for root in nodes:
        if root in index_of:
            continue
        # Each work item: (node, iterator over remaining successors).
        work: List[Tuple[str, Iterator[str]]] = [
            (root, iter(successors(root)))
        ]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, succ_iter = work[-1]
            advanced = False
            for succ in succ_iter:
                if succ not in known:
                    continue
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(successors(succ))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(
                        lowlink[node], index_of[succ]
                    )
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(
                    lowlink[parent], lowlink[node]
                )
            if lowlink[node] == index_of[node]:
                members: List[str] = []
                while True:
                    top = stack.pop()
                    on_stack.discard(top)
                    members.append(top)
                    if top == node:
                        break
                sccs.append(tuple(sorted(members)))
    return sccs
