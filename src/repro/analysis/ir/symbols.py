"""Per-module symbol tables: names the call-graph can bind.

For every module the table records module-level functions, classes
(with raw base references, methods, and inferred ``self.attr`` types)
and the import alias map. Resolution to *project* entities (classes
defined elsewhere, adapter subclass sets) happens at the
:class:`~repro.analysis.ir.project.Project` level — this module is
purely syntactic so it stays cheap and cacheable.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleSymbols",
    "annotation_ref",
    "dotted_ref",
]


class FunctionInfo:
    """A module-level function or a class method."""

    __slots__ = ("name", "qualname", "module_name", "relpath",
                 "class_name", "node", "params", "param_annotations",
                 "return_annotation")

    def __init__(
        self,
        name: str,
        qualname: str,
        module_name: str,
        relpath: str,
        class_name: Optional[str],
        node: ast.FunctionDef,
    ) -> None:
        self.name = name
        #: Project-unique dotted name, e.g.
        #: ``repro.core.server.GupsterServer.resolve``.
        self.qualname = qualname
        self.module_name = module_name
        self.relpath = relpath
        self.class_name = class_name
        self.node = node
        args = node.args
        ordered = args.posonlyargs + args.args + args.kwonlyargs
        #: Ordered parameter names (``self`` included for methods).
        self.params: List[str] = [arg.arg for arg in ordered]
        #: Parameter name -> raw annotation reference (dotted string),
        #: e.g. ``{"server": "GupsterServer"}``; unresolved aliases.
        self.param_annotations: Dict[str, str] = {}
        for arg in ordered:
            ref = annotation_ref(arg.annotation)
            if ref is not None:
                self.param_annotations[arg.arg] = ref
        #: Raw return annotation reference, when present.
        self.return_annotation: Optional[str] = annotation_ref(
            node.returns
        )

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    def __repr__(self) -> str:
        return "<FunctionInfo %s>" % self.qualname


class ClassInfo:
    """A class definition with its methods and inferred attr types."""

    __slots__ = ("name", "qualname", "module_name", "relpath", "node",
                 "base_refs", "methods", "attr_refs")

    def __init__(
        self,
        name: str,
        qualname: str,
        module_name: str,
        relpath: str,
        node: ast.ClassDef,
    ) -> None:
        self.name = name
        self.qualname = qualname
        self.module_name = module_name
        self.relpath = relpath
        self.node = node
        #: Raw base-class references (dotted, unresolved).
        self.base_refs: List[str] = []
        for base in node.bases:
            ref = dotted_ref(base)
            if ref is not None:
                self.base_refs.append(ref)
        self.methods: Dict[str, FunctionInfo] = {}
        #: Attribute name -> raw type reference, inferred from
        #: ``self.x: T``, ``self.x = param`` (annotated parameter),
        #: ``self.x = SomeClass(...)`` and class-level ``x: T``.
        self.attr_refs: Dict[str, str] = {}

    def __repr__(self) -> str:
        return "<ClassInfo %s>" % self.qualname


def dotted_ref(expr: Optional[ast.expr]) -> Optional[str]:
    """``a.b.c`` as a dotted string, or None for non-name shapes."""
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return ".".join(parts)
    return None


def annotation_ref(expr: Optional[ast.expr]) -> Optional[str]:
    """Best-effort class reference inside an annotation.

    Unwraps ``Optional[T]`` (and string annotations); gives up on
    ``Union`` of several concrete types, containers and callables —
    resolution must stay an *under*-approximation so confident call
    binding never points at the wrong class.
    """
    if expr is None:
        return None
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        try:
            parsed = ast.parse(expr.value, mode="eval")
        except SyntaxError:
            return None
        return annotation_ref(parsed.body)
    if isinstance(expr, (ast.Name, ast.Attribute)):
        return dotted_ref(expr)
    if isinstance(expr, ast.Subscript):
        head = dotted_ref(expr.value)
        if head is None:
            return None
        base = head.split(".")[-1]
        if base == "Optional":
            return annotation_ref(expr.slice)
        return None
    return None


def _constructed_ref(expr: ast.expr,
                     fn: FunctionInfo) -> Optional[str]:
    """Type reference for the RHS of a ``self.x = ...`` assignment."""
    if isinstance(expr, ast.IfExp):
        return (
            _constructed_ref(expr.body, fn)
            or _constructed_ref(expr.orelse, fn)
        )
    if isinstance(expr, ast.Name):
        return fn.param_annotations.get(expr.id)
    if isinstance(expr, ast.Call):
        return dotted_ref(expr.func)
    return None


class ModuleSymbols:
    """Everything nameable at a module's top level."""

    __slots__ = ("module_name", "relpath", "imports",
                 "import_targets", "functions", "classes")

    def __init__(self, module_name: str, relpath: str,
                 tree: ast.Module) -> None:
        self.module_name = module_name
        self.relpath = relpath
        #: Local name -> dotted target (module or ``module.Symbol``).
        self.imports: Dict[str, str] = {}
        #: Full dotted names of every import, independent of the local
        #: binding — ``import repro.sync.syncml`` binds ``repro`` but
        #: depends on ``repro.sync.syncml``.
        self.import_targets: Set[str] = set()
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self._collect(tree)

    # -- construction -------------------------------------------------------

    def _collect(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = (
                        alias.name if alias.asname else
                        alias.name.split(".")[0]
                    )
                    self.imports.setdefault(local, target)
                    self.import_targets.add(alias.name)
            elif isinstance(node, ast.ImportFrom):
                base = self._from_base(node)
                if base is None:
                    continue
                self.import_targets.add(base)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.imports.setdefault(
                        local, "%s.%s" % (base, alias.name)
                    )
                    self.import_targets.add(
                        "%s.%s" % (base, alias.name)
                    )
        for node in tree.body:
            if isinstance(node, ast.FunctionDef):
                self.functions[node.name] = FunctionInfo(
                    node.name,
                    "%s.%s" % (self.module_name, node.name),
                    self.module_name, self.relpath, None, node,
                )
            elif isinstance(node, ast.ClassDef):
                self._collect_class(node)

    def _from_base(self, node: ast.ImportFrom) -> Optional[str]:
        """Absolute dotted base of a ``from X import ...``."""
        if not node.level:
            return node.module
        parts = self.module_name.split(".")
        # level=1 in a module strips the module name itself; each
        # additional level strips one package.
        anchor = parts[:-node.level]
        if not anchor:
            return node.module
        if node.module:
            return ".".join(anchor + [node.module])
        return ".".join(anchor)

    def _collect_class(self, node: ast.ClassDef) -> None:
        info = ClassInfo(
            node.name,
            "%s.%s" % (self.module_name, node.name),
            self.module_name, self.relpath, node,
        )
        for item in node.body:
            if isinstance(item, ast.FunctionDef):
                info.methods[item.name] = FunctionInfo(
                    item.name,
                    "%s.%s" % (info.qualname, item.name),
                    self.module_name, self.relpath, node.name, item,
                )
            elif isinstance(item, ast.AnnAssign) \
                    and isinstance(item.target, ast.Name):
                ref = annotation_ref(item.annotation)
                if ref is not None:
                    info.attr_refs.setdefault(item.target.id, ref)
        for method in info.methods.values():
            self._infer_attr_types(info, method)
        self.classes[node.name] = info

    def _infer_attr_types(self, info: ClassInfo,
                          method: FunctionInfo) -> None:
        for node in ast.walk(method.node):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            annotation: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
                annotation = node.annotation
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            ref: Optional[str] = None
            if annotation is not None:
                ref = annotation_ref(annotation)
            if ref is None and value is not None:
                ref = _constructed_ref(value, method)
            if ref is not None:
                info.attr_refs.setdefault(target.attr, ref)

    # -- queries ------------------------------------------------------------

    def resolve_local(self, dotted: str) -> Optional[str]:
        """Absolute dotted name for a local reference, or None.

        ``GupsterServer`` -> ``repro.core.server.GupsterServer`` when
        imported, ``Helper`` -> ``<module>.Helper`` when defined here;
        dotted refs rewrite their root through the alias map."""
        head, _, rest = dotted.partition(".")
        if head in self.classes or head in self.functions:
            absolute = "%s.%s" % (self.module_name, head)
        elif head in self.imports:
            absolute = self.imports[head]
        else:
            return None
        return "%s.%s" % (absolute, rest) if rest else absolute

    def interface_lines(self) -> List[str]:
        """Stable interface description for the project fingerprint
        (names and signatures only — never bodies)."""
        lines: List[str] = []
        for fn in self.functions.values():
            lines.append(self._fn_line(fn))
        for cls in sorted(self.classes.values(),
                          key=lambda c: c.qualname):
            lines.append(
                "%s(%s)" % (cls.qualname, ",".join(cls.base_refs))
            )
            for method in cls.methods.values():
                lines.append(self._fn_line(method))
        lines.sort()
        return lines

    @staticmethod
    def _fn_line(fn: FunctionInfo) -> str:
        annotated = [
            "%s:%s" % (p, fn.param_annotations.get(p, ""))
            for p in fn.params
        ]
        return "%s(%s)->%s" % (
            fn.qualname, ",".join(annotated),
            fn.return_annotation or "",
        )

    def all_functions(self) -> List[FunctionInfo]:
        picked = list(self.functions.values())
        for cls in self.classes.values():
            picked.extend(cls.methods.values())
        return picked

    def class_and_method(
        self, fn: FunctionInfo
    ) -> Optional[Tuple[ClassInfo, FunctionInfo]]:
        if fn.class_name is None:
            return None
        cls = self.classes.get(fn.class_name)
        if cls is None:
            return None
        return cls, fn
