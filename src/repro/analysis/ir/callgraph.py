"""Call-site resolution and the function-level call graph.

:class:`CallResolver` binds an ``ast.Call`` inside a known function to
the project :class:`~repro.analysis.ir.symbols.FunctionInfo` targets
it may reach:

* ``name(...)`` — module function or class constructor through the
  import-alias map;
* ``self.m(...)`` — method lookup with base-class walk;
* ``recv.m(...)`` where the receiver's class is known from a parameter
  annotation, an inferred ``self.attr`` type or a local
  ``x = SomeClass(...)`` assignment — **interface dispatch**: the call
  binds to the static implementation *plus every project subclass
  override* (the ``adapters/base`` pattern);
* fallback: an unannotated receiver binds by method name only when
  every project method of that name lives in a single inheritance
  family — anything wider is left unresolved so confident taint never
  crosses to an unrelated class (``dict.get`` never binds to
  ``GupAdapter.get``).

:class:`CallGraph` collects the edges (nested ``def``/``lambda`` call
sites are attributed to the enclosing named function) and condenses
them with Tarjan for the summary fixpoint.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.ir.project import Project, tarjan_sccs
from repro.analysis.ir.symbols import (
    FunctionInfo, annotation_ref, dotted_ref,
)

__all__ = ["CallGraph", "CallResolver", "Resolution"]


class Resolution:
    """Outcome of resolving one call site."""

    __slots__ = ("targets", "confident", "is_constructor")

    def __init__(
        self,
        targets: List[FunctionInfo],
        confident: bool,
        is_constructor: bool = False,
    ) -> None:
        #: Candidate callees (empty when unresolved).
        self.targets = targets
        #: True when binding went through a resolved name/type;
        #: False for name-only fallback dispatch.
        self.confident = confident
        #: True when the call constructs a project class.
        self.is_constructor = is_constructor

    def __repr__(self) -> str:
        return "<Resolution %r confident=%s>" % (
            [t.qualname for t in self.targets], self.confident,
        )


_UNRESOLVED = Resolution([], True)


class CallResolver:
    """Binds call expressions to project functions."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self._locals_cache: Dict[str, Dict[str, str]] = {}
        self._family_cache: Dict[str, FrozenSet[str]] = {}

    # -- public entry ---------------------------------------------------

    def resolve(self, call: ast.Call,
                fn: FunctionInfo) -> Resolution:
        func = call.func
        dotted = dotted_ref(func)
        if dotted is not None:
            direct = self._resolve_dotted(dotted, fn)
            if direct is not None:
                return direct
        if isinstance(func, ast.Attribute):
            return self._resolve_method(func, fn)
        return _UNRESOLVED

    def receiver_class(self, expr: ast.expr,
                       fn: FunctionInfo) -> Optional[str]:
        """Project class qualname of a receiver expression, if known."""
        if isinstance(expr, ast.Name):
            if expr.id == "self" and fn.class_name is not None:
                return "%s.%s" % (fn.module_name, fn.class_name)
            ref = fn.param_annotations.get(expr.id)
            if ref is not None:
                qual = self._class_qualname(ref, fn.module_name)
                if qual is not None:
                    return qual
            return self._local_types(fn).get(expr.id)
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and fn.class_name is not None
        ):
            owner = "%s.%s" % (fn.module_name, fn.class_name)
            return self._attr_class(owner, expr.attr)
        return None

    # -- name-shaped calls ---------------------------------------------

    def _resolve_dotted(
        self, dotted: str, fn: FunctionInfo
    ) -> Optional[Resolution]:
        """``name(...)`` / ``mod.name(...)`` through the alias map."""
        module = self.project.modules.get(fn.module_name)
        if module is None:  # pragma: no cover - defensive
            return None
        head = dotted.split(".", 1)[0]
        if head == "self":
            return None  # handled by _resolve_method
        absolute = module.symbols.resolve_local(dotted)
        if absolute is None:
            return None
        target_fn = self.project.functions.get(absolute)
        if target_fn is not None and not target_fn.is_method:
            return Resolution([target_fn], True)
        cls = self.project.classes.get(absolute)
        if cls is not None:
            init = self.project.method_on(absolute, "__init__")
            targets = [init] if init is not None else []
            return Resolution(targets, True, is_constructor=True)
        # ``alias.Class.method`` / ``alias.fn`` where the tail is a
        # method accessed through its class.
        owner, _, method = absolute.rpartition(".")
        if owner in self.project.classes:
            bound = self.project.method_on(owner, method)
            if bound is not None:
                return Resolution([bound], True)
        return None

    # -- attribute-shaped calls ----------------------------------------

    def _resolve_method(self, func: ast.Attribute,
                        fn: FunctionInfo) -> Resolution:
        name = func.attr
        owner = self.receiver_class(func.value, fn)
        if owner is not None:
            targets = self.project.implementations_of(owner, name)
            if targets:
                return Resolution(targets, True)
            return _UNRESOLVED
        return self._fallback_by_name(name)

    def _fallback_by_name(self, name: str) -> Resolution:
        """Name-only dispatch, restricted to one inheritance family."""
        candidates = self.project.methods_named(name)
        if not candidates:
            return _UNRESOLVED
        family: Optional[FrozenSet[str]] = None
        for method in candidates:
            owner = "%s.%s" % (
                method.module_name, method.class_name,
            )
            roots = self._family_roots(owner)
            if family is None:
                family = roots
            elif not (family & roots):
                return _UNRESOLVED
        return Resolution(list(candidates), False)

    def _family_roots(self, qualname: str) -> FrozenSet[str]:
        cached = self._family_cache.get(qualname)
        if cached is not None:
            return cached
        roots: Set[str] = set()
        seen: Set[str] = set()
        frontier = [qualname]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            bases = self.project.bases_of(current)
            if not bases:
                roots.add(current)
            else:
                frontier.extend(bases)
        result = frozenset(roots)
        self._family_cache[qualname] = result
        return result

    # -- receiver typing -----------------------------------------------

    def _class_qualname(
        self, ref: str, module_name: str
    ) -> Optional[str]:
        """Resolve a raw class reference from ``module_name``."""
        if ref in self.project.classes:
            return ref
        module = self.project.modules.get(module_name)
        if module is None:
            return None
        absolute = module.symbols.resolve_local(ref)
        if absolute is not None and absolute in self.project.classes:
            return absolute
        return None

    def _attr_class(self, owner: str,
                    attr: str) -> Optional[str]:
        """Class of ``self.<attr>`` walking the base hierarchy."""
        seen: Set[str] = set()
        frontier = [owner]
        while frontier:
            current = frontier.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.project.classes.get(current)
            if cls is None:
                continue
            ref = cls.attr_refs.get(attr)
            if ref is not None:
                return self._class_qualname(ref, cls.module_name)
            frontier.extend(self.project.bases_of(current))
        return None

    def _local_types(self, fn: FunctionInfo) -> Dict[str, str]:
        """``x = SomeClass(...)`` / ``x: T`` local type bindings,
        plus ``x = recv.method()`` through the resolved callee's
        *return annotation* (``trace = network.trace()`` binds
        ``trace`` to the Trace class that ``Network.trace -> "Trace"``
        names)."""
        cached = self._locals_cache.get(fn.qualname)
        if cached is not None:
            return cached
        types: Dict[str, str] = {}
        for node in ast.walk(fn.node):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            ref: Optional[str] = None
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
            ):
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
                ref = annotation_ref(node.annotation)
            if not isinstance(target, ast.Name):
                continue
            qual: Optional[str] = None
            if ref is None and isinstance(value, ast.Call):
                ref = dotted_ref(value.func)
                if ref is not None:
                    qual = self._class_qualname(ref, fn.module_name)
                if qual is None:
                    qual = self._return_class(value, fn, types)
            elif ref is not None:
                qual = self._class_qualname(ref, fn.module_name)
            if qual is not None and types.get(target.id, qual) == qual:
                types[target.id] = qual
            elif target.id in types and types[target.id] != qual:
                # Conflicting rebinding: drop to stay sound.
                del types[target.id]
        self._locals_cache[fn.qualname] = types
        return types

    def _return_class(
        self,
        call: ast.Call,
        fn: FunctionInfo,
        types: Dict[str, str],
    ) -> Optional[str]:
        """Project class the *call*'s return annotation names, if the
        callee resolves.  ``types`` is the partial local map built so
        far (statements are walked in order, so earlier bindings are
        visible) — this deliberately avoids :meth:`receiver_class`,
        whose locals lookup would recurse into the map under
        construction."""
        func = call.func
        callee: Optional[FunctionInfo] = None
        if isinstance(func, ast.Attribute):
            owner: Optional[str] = None
            receiver = func.value
            if isinstance(receiver, ast.Name):
                if receiver.id == "self" and fn.class_name is not None:
                    owner = "%s.%s" % (fn.module_name, fn.class_name)
                else:
                    ann = fn.param_annotations.get(receiver.id)
                    if ann is not None:
                        owner = self._class_qualname(
                            ann, fn.module_name
                        )
                    if owner is None:
                        owner = types.get(receiver.id)
            elif (
                isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id == "self"
                and fn.class_name is not None
            ):
                owner = self._attr_class(
                    "%s.%s" % (fn.module_name, fn.class_name),
                    receiver.attr,
                )
            if owner is not None:
                callee = self.project.method_on(owner, func.attr)
        else:
            dotted = dotted_ref(func)
            module = self.project.modules.get(fn.module_name)
            if dotted is not None and module is not None:
                absolute = module.symbols.resolve_local(dotted)
                if absolute is not None:
                    callee = self.project.functions.get(absolute)
        if callee is None or callee.return_annotation is None:
            return None
        return self._class_qualname(
            callee.return_annotation, callee.module_name
        )


class CallGraph:
    """Function-level call graph + Tarjan condensation."""

    def __init__(self, project: Project,
                 resolver: Optional[CallResolver] = None) -> None:
        self.project = project
        self.resolver = resolver or CallResolver(project)
        #: caller qualname -> callee qualnames (confident and
        #: fallback targets alike; the taint engine re-resolves per
        #: call site when it needs the distinction).
        self.edges: Dict[str, Set[str]] = {
            qualname: set() for qualname in project.functions
        }
        self.callers: Dict[str, Set[str]] = {
            qualname: set() for qualname in project.functions
        }
        for fn in project.functions.values():
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                for target in self.resolver.resolve(node, fn).targets:
                    self.edges[fn.qualname].add(target.qualname)
                    self.callers.setdefault(
                        target.qualname, set()
                    ).add(fn.qualname)
        #: SCCs of the call graph, callees first — the summary
        #: fixpoint processes them in this order.
        self.sccs: List[Tuple[str, ...]] = tarjan_sccs(
            sorted(self.edges),
            lambda qualname: sorted(self.edges[qualname]),
        )

    def callees(self, qualname: str) -> Set[str]:
        return self.edges.get(qualname, set())
