"""Baseline file for gradual adoption (``.gupcheck-baseline.json``).

A baseline is the set of *known* findings a codebase has accepted —
new rules can land gating immediately while pre-existing findings are
ratcheted down over time instead of blocking every run.  Entries are
keyed by the violation fingerprint (``sha1(rule|path|message)``), so
they survive unrelated edits (line drift) but expire as soon as the
finding itself changes or disappears.

The repository ships an **empty** baseline for ``src/`` — CI asserts
this, so the whole-program rules stay at zero findings.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.analysis.framework import Report

__all__ = [
    "BASELINE_FILENAME",
    "BASELINE_VERSION",
    "load_baseline",
    "render_baseline",
    "write_baseline",
]

BASELINE_FILENAME = ".gupcheck-baseline.json"
BASELINE_VERSION = 1


def load_baseline(path: str) -> List[str]:
    """Accepted fingerprints from *path*; missing/invalid -> empty."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
    except (OSError, ValueError):
        return []
    if not isinstance(raw, dict) or raw.get(
        "gupcheck_baseline"
    ) != BASELINE_VERSION:
        return []
    entries = raw.get("findings")
    if not isinstance(entries, dict):
        return []
    return sorted(entries)


def render_baseline(report: Report) -> str:
    """Baseline JSON accepting every *active* finding in *report*.

    Already-baselined findings are carried forward so re-running
    ``--write-baseline`` is idempotent."""
    findings: Dict[str, Dict[str, object]] = {}
    for violation in list(report.violations) + list(
        report.baselined
    ):
        findings[violation.fingerprint()] = {
            "rule": violation.rule,
            "path": violation.path,
            "message": violation.message,
            "severity": violation.severity,
        }
    payload = {
        "gupcheck_baseline": BASELINE_VERSION,
        "findings": findings,
    }
    return json.dumps(payload, indent=1, sort_keys=True) + "\n"


def write_baseline(path: str, report: Report) -> int:
    """Write the baseline for *report*; returns the entry count."""
    text = render_baseline(report)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return len(json.loads(text)["findings"])
