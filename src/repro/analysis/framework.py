"""The gupcheck analysis framework: modules, rules, suppressions, reports.

Deliberately dependency-free (stdlib ``ast`` only) so the analysis can
run anywhere the library runs, including CI bootstrap steps that have
not installed the dev toolchain yet.
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import re
import tokenize
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.cache import AnalysisCache
    from repro.analysis.ir.project import Project

__all__ = [
    "Analyzer",
    "AnalysisStats",
    "ModuleInfo",
    "ProjectRule",
    "Report",
    "Rule",
    "SEVERITIES",
    "SUPPRESSION_RULE",
    "Violation",
    "check_source",
]

#: Name of the meta-rule that flags malformed suppression comments.
SUPPRESSION_RULE = "suppression"

#: Severity levels, in increasing gravity. ``error`` fails the run;
#: ``warning`` is reported (and lands in SARIF) but does not gate.
SEVERITIES = ("warning", "error")

#: ``# gupcheck: ignore[determinism,layering] -- justification``
_SUPPRESS_RE = re.compile(
    r"#\s*gupcheck:\s*ignore\[(?P<rules>[^\]]*)\]"
    r"(?:\s*(?:--|:)\s*(?P<why>.*\S))?"
)


class Violation:
    """One finding: a rule broken at a source location."""

    __slots__ = ("rule", "path", "line", "col", "message",
                 "justification", "severity")

    def __init__(
        self,
        rule: str,
        path: str,
        line: int,
        col: int,
        message: str,
        justification: Optional[str] = None,
        severity: str = "error",
    ) -> None:
        self.rule = rule
        self.path = path
        self.line = line
        self.col = col
        self.message = message
        #: Set when the violation was suppressed (carries the reason).
        self.justification = justification
        #: ``error`` (gates the run) or ``warning`` (reported only).
        self.severity = severity if severity in SEVERITIES else "error"

    def fingerprint(self) -> str:
        """Location-independent identity used by the baseline file and
        SARIF ``partialFingerprints``: line numbers shift on unrelated
        edits, so the fingerprint hashes rule + path + message only."""
        digest = hashlib.sha1(
            ("%s|%s|%s" % (self.rule, self.path, self.message))
            .encode("utf-8")
        )
        return digest.hexdigest()[:16]

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
            "fingerprint": self.fingerprint(),
        }
        if self.justification is not None:
            data["justification"] = self.justification
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Violation":
        """Inverse of :meth:`to_dict` (used by the incremental cache)."""
        return cls(
            str(data["rule"]),
            str(data["path"]),
            int(data["line"]),       # type: ignore[arg-type]
            int(data["col"]),        # type: ignore[arg-type]
            str(data["message"]),
            severity=str(data.get("severity", "error")),
        )

    def __repr__(self) -> str:
        return "%s:%d:%d: [%s] %s" % (
            self.path, self.line, self.col, self.rule, self.message
        )


class _Suppression:
    __slots__ = ("line", "rules", "justification")

    def __init__(self, line: int, rules: Tuple[str, ...],
                 justification: Optional[str]) -> None:
        self.line = line
        self.rules = rules
        self.justification = justification


class ModuleInfo:
    """A parsed source module handed to every rule."""

    __slots__ = ("path", "relpath", "source", "tree", "lines",
                 "suppressions", "sha")

    def __init__(self, path: str, relpath: str, source: str,
                 tree: ast.Module) -> None:
        self.path = path
        #: Package-relative posix path (``repro/core/server.py``) —
        #: what rule path filters match against.
        self.relpath = relpath
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        #: line number -> suppression found *on* that line; a
        #: suppression on a standalone comment line also covers the
        #: next line (see :meth:`suppression_for`).
        self.suppressions: Dict[int, _Suppression] = {}
        #: Content hash — the incremental cache's identity for this
        #: module's *intra*-module analysis results.
        self.sha = hashlib.sha256(source.encode("utf-8")).hexdigest()
        self._scan_suppressions()

    @classmethod
    def from_source(cls, source: str, relpath: str,
                    path: Optional[str] = None) -> "ModuleInfo":
        tree = ast.parse(source, filename=path or relpath)
        return cls(path or relpath, relpath, source, tree)

    # -- suppressions -------------------------------------------------------

    def _scan_suppressions(self) -> None:
        # Only *real* comment tokens count: a suppression marker
        # inside a string literal (e.g. a test fixture or docstring
        # example) is data, not a suppression.
        for lineno, text in self._comment_tokens():
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            rules = tuple(
                part.strip()
                for part in match.group("rules").split(",")
                if part.strip()
            )
            self.suppressions[lineno] = _Suppression(
                lineno, rules, match.group("why")
            )

    def _comment_tokens(self) -> List[Tuple[int, str]]:
        """``(lineno, text)`` of each comment token; falls back to a
        plain line scan if tokenization fails (it should not: the
        source already parsed)."""
        try:
            return [
                (token.start[0], token.string)
                for token in tokenize.generate_tokens(
                    io.StringIO(self.source).readline
                )
                if token.type == tokenize.COMMENT
            ]
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return list(enumerate(self.lines, start=1))

    def suppression_for(self, rule: str, line: int) -> Optional[_Suppression]:
        """The suppression covering *rule* at *line*, if any.

        A suppression covers its own line; when it sits on a
        standalone comment line it also covers the line below (the
        usual place to put it when the code line is already long)."""
        for candidate_line in (line, line - 1):
            supp = self.suppressions.get(candidate_line)
            if supp is None or rule not in supp.rules:
                continue
            if candidate_line == line - 1:
                stripped = self.lines[candidate_line - 1].lstrip()
                if not stripped.startswith("#"):
                    continue  # trailing comment only covers its own line
            return supp
        return None


class Rule:
    """Base class for gupcheck rules.

    Subclasses set :attr:`name`, :attr:`description` and the
    :attr:`prefixes` path filter, and implement :meth:`check`.
    """

    #: Short kebab-case identifier used in reports and suppressions.
    name = ""
    #: One-line statement of the invariant the rule protects.
    description = ""
    #: Relpath prefixes the rule applies to; empty = every module.
    prefixes: Tuple[str, ...] = ()
    #: ``error`` findings gate the run; ``warning`` findings do not.
    severity = "error"
    #: Uncacheable rules re-run on every module each analysis: their
    #: findings' evidence can live outside the module's own (deep)
    #: content hash, so replaying stored results would be unsound.
    cacheable = True

    def applies_to(self, relpath: str) -> bool:
        return not self.prefixes or any(
            relpath.startswith(prefix) for prefix in self.prefixes
        )

    def check(self, module: ModuleInfo) -> List[Violation]:
        raise NotImplementedError

    # -- helpers ------------------------------------------------------------

    def violation(self, module: ModuleInfo, node: ast.AST,
                  message: str) -> Violation:
        return Violation(
            self.name,
            module.relpath,
            getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0),
            message,
            severity=self.severity,
        )


class ProjectRule(Rule):
    """A whole-program rule: sees the project IR, not one module.

    Project rules run after every module is parsed, on the
    :class:`~repro.analysis.ir.project.Project` (import/call graph +
    interprocedural summaries). They report per module through
    :meth:`check_module`, which is the unit the incremental cache can
    skip: a module whose *deep* content hash (own source + transitive
    import closure + project interface fingerprint) is unchanged gets
    its previous findings replayed instead of re-analysis.
    """

    def check(self, module: ModuleInfo) -> List[Violation]:
        return []  # project rules contribute via check_module only

    def check_module(self, project: "Project",
                     module: ModuleInfo) -> List[Violation]:
        """Violations attributable to *module*, given whole-program
        context."""
        raise NotImplementedError

    def check_project(self, project: "Project") -> List[Violation]:
        found: List[Violation] = []
        for pmodule in project.modules_in_order():
            found.extend(self.check_module(project, pmodule.info))
        return found


class AnalysisStats:
    """Run-shape counters for ``--stats`` (and the E17 benchmark)."""

    __slots__ = ("modules_total", "modules_analyzed", "cache_hits",
                 "import_sccs", "call_sccs", "functions",
                 "summaries_computed", "wall_ms")

    def __init__(self) -> None:
        self.modules_total = 0
        #: Modules whose rules/summaries were actually (re)computed.
        self.modules_analyzed = 0
        #: Modules fully replayed from the incremental cache.
        self.cache_hits = 0
        self.import_sccs = 0
        self.call_sccs = 0
        self.functions = 0
        self.summaries_computed = 0
        self.wall_ms = 0.0

    @property
    def cache_hit_rate(self) -> float:
        if not self.modules_total:
            return 0.0
        return self.cache_hits / float(self.modules_total)

    def to_dict(self) -> Dict[str, object]:
        return {
            "modules_total": self.modules_total,
            "modules_analyzed": self.modules_analyzed,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "import_sccs": self.import_sccs,
            "call_sccs": self.call_sccs,
            "functions": self.functions,
            "summaries_computed": self.summaries_computed,
            "wall_ms": round(self.wall_ms, 2),
        }

    def render(self) -> str:
        return (
            "gupcheck stats: %d/%d module(s) analyzed, %d cache hit(s) "
            "(%.0f%%), %d import SCC(s), %d call SCC(s), %d function(s), "
            "%d summaries computed, %.1f ms"
            % (self.modules_analyzed, self.modules_total,
               self.cache_hits, 100.0 * self.cache_hit_rate,
               self.import_sccs, self.call_sccs, self.functions,
               self.summaries_computed, self.wall_ms)
        )


class Report:
    """Aggregated result of an analysis run."""

    def __init__(self, rules: Sequence[Rule]) -> None:
        self.rule_names = [rule.name for rule in rules]
        self.files_scanned = 0
        #: Active violations (error-severity ones fail the analysis).
        self.violations: List[Violation] = []
        #: Violations silenced by a justified suppression comment.
        self.suppressed: List[Violation] = []
        #: Known findings accepted into the baseline file (reported,
        #: never gating — the gradual-adoption ratchet).
        self.baselined: List[Violation] = []
        #: (path, message) pairs for files that could not be parsed.
        self.errors: List[Tuple[str, str]] = []
        #: relpath -> filesystem path, for SARIF artifact URIs.
        self.paths: Dict[str, str] = {}
        #: Populated when the analyzer is asked to collect stats.
        self.stats: Optional[AnalysisStats] = None

    @property
    def failing(self) -> List[Violation]:
        """Active violations that gate the run (error severity)."""
        return [v for v in self.violations if v.severity == "error"]

    @property
    def warnings(self) -> List[Violation]:
        return [v for v in self.violations if v.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.failing and not self.errors

    def apply_baseline(self, fingerprints: Iterable[str]) -> None:
        """Move active violations whose fingerprint is accepted by the
        baseline into :attr:`baselined`."""
        accepted = set(fingerprints)
        keep: List[Violation] = []
        for violation in self.violations:
            if violation.fingerprint() in accepted:
                self.baselined.append(violation)
            else:
                keep.append(violation)
        self.violations = keep

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "gupcheck": 2,
            "ok": self.ok,
            "files_scanned": self.files_scanned,
            "rules": list(self.rule_names),
            "violations": [v.to_dict() for v in self.violations],
            "suppressed": [v.to_dict() for v in self.suppressed],
            "baselined": [v.to_dict() for v in self.baselined],
            "errors": [
                {"path": path, "message": message}
                for path, message in self.errors
            ],
        }
        if self.stats is not None:
            data["stats"] = self.stats.to_dict()
        return data

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


class Analyzer:
    """Runs a rule set over modules / source trees."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None) -> None:
        if rules is None:
            from repro.analysis.rules import default_rules
            rules = default_rules()
        self.rules = list(rules)
        known = {rule.name for rule in self.rules}
        known.add(SUPPRESSION_RULE)
        self._known_rules = known

    # -- single module ------------------------------------------------------

    def analyze_module(
        self, module: ModuleInfo
    ) -> Tuple[List[Violation], List[Violation]]:
        """(active, suppressed) violations for one module."""
        active: List[Violation] = []
        suppressed: List[Violation] = []
        for rule in self.rules:
            if not rule.applies_to(module.relpath):
                continue
            for violation in rule.check(module):
                supp = module.suppression_for(rule.name, violation.line)
                if supp is not None and supp.justification:
                    violation.justification = supp.justification
                    suppressed.append(violation)
                else:
                    active.append(violation)
        active.extend(self._audit_suppressions(module))
        active.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
        suppressed.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
        return active, suppressed

    def _audit_suppressions(self, module: ModuleInfo) -> List[Violation]:
        """Malformed suppressions are violations in their own right —
        a silencer with no justification (or a typo'd rule name) is
        exactly the kind of quiet hole this tool exists to close."""
        found: List[Violation] = []
        for supp in module.suppressions.values():
            if not supp.rules:
                found.append(Violation(
                    SUPPRESSION_RULE, module.relpath, supp.line, 0,
                    "suppression names no rules",
                ))
                continue
            for rule_name in supp.rules:
                if rule_name not in self._known_rules:
                    found.append(Violation(
                        SUPPRESSION_RULE, module.relpath, supp.line, 0,
                        "suppression names unknown rule %r" % rule_name,
                    ))
            if not supp.justification:
                found.append(Violation(
                    SUPPRESSION_RULE, module.relpath, supp.line, 0,
                    "suppression requires a justification after `--`",
                ))
        return found

    # -- trees --------------------------------------------------------------

    def discover(self, paths: Iterable[str]) -> List[str]:
        """Python files under *paths* (directories walked recursively)."""
        import os

        files: List[str] = []
        for path in paths:
            if os.path.isdir(path):
                files.extend(sorted(
                    os.path.join(dirpath, filename)
                    for dirpath, dirnames, filenames in os.walk(path)
                    for filename in filenames
                    if filename.endswith(".py")
                    and "__pycache__" not in dirpath
                ))
            else:
                files.append(path)
        return files

    def analyze_paths(
        self,
        paths: Iterable[str],
        cache: Optional["AnalysisCache"] = None,
        collect_stats: bool = False,
    ) -> Report:
        """Run every rule over the trees/files in *paths*.

        Two phases: per-module rules first (cacheable on each module's
        own content hash), then whole-program :class:`ProjectRule`\\ s
        over the project IR (cacheable on each module's *deep* hash —
        own content + transitive import closure + the project interface
        fingerprint). With *cache* set, unchanged modules replay their
        stored findings instead of being re-analyzed.
        """
        import time

        start = time.perf_counter()
        report = Report(self.rules)
        if collect_stats or cache is not None:
            report.stats = AnalysisStats()
        stats = report.stats

        modules: List[ModuleInfo] = []
        for filename in self.discover(paths):
            report.files_scanned += 1
            try:
                with open(filename, "r", encoding="utf-8") as handle:
                    source = handle.read()
                module = ModuleInfo.from_source(
                    source, _relpath(filename), filename
                )
            except (OSError, SyntaxError, ValueError) as err:
                report.errors.append((filename, str(err)))
                continue
            modules.append(module)
            report.paths[module.relpath] = filename

        module_rules = [
            rule for rule in self.rules
            if not isinstance(rule, ProjectRule)
        ]
        project_rules = [
            rule for rule in self.rules if isinstance(rule, ProjectRule)
        ]
        analyzed: set = set()
        raw_by_module: Dict[str, List[Violation]] = {}

        # Phase 1: intra-module rules (keyed on each module's own sha).
        for module in modules:
            cached = (
                cache.module_results(module.relpath, module.sha)
                if cache is not None else None
            )
            if cached is not None:
                raw = cached
            else:
                raw = []
                for rule in module_rules:
                    if rule.applies_to(module.relpath):
                        raw.extend(rule.check(module))
                analyzed.add(module.relpath)
                if cache is not None:
                    cache.store_module_results(
                        module.relpath, module.sha, raw
                    )
            raw_by_module[module.relpath] = raw

        # Phase 2: whole-program rules over the project IR.
        if project_rules and modules:
            self._run_project_rules(
                modules, project_rules, raw_by_module, cache, analyzed,
                stats,
            )

        # Suppression filtering + audit, uniformly over both phases.
        for module in modules:
            active: List[Violation] = []
            suppressed: List[Violation] = []
            for violation in raw_by_module.get(module.relpath, []):
                supp = module.suppression_for(
                    violation.rule, violation.line
                )
                if supp is not None and supp.justification:
                    violation.justification = supp.justification
                    suppressed.append(violation)
                else:
                    active.append(violation)
            active.extend(self._audit_suppressions(module))
            report.violations.extend(active)
            report.suppressed.extend(suppressed)

        report.violations.sort(
            key=lambda v: (v.path, v.line, v.col, v.rule)
        )
        report.suppressed.sort(
            key=lambda v: (v.path, v.line, v.col, v.rule)
        )
        if stats is not None:
            stats.modules_total = len(modules)
            stats.modules_analyzed = len(analyzed)
            stats.cache_hits = len(modules) - len(analyzed)
            stats.wall_ms = (time.perf_counter() - start) * 1000.0
        return report

    def _run_project_rules(
        self,
        modules: List[ModuleInfo],
        project_rules: Sequence["ProjectRule"],
        raw_by_module: Dict[str, List[Violation]],
        cache: Optional["AnalysisCache"],
        analyzed: set,
        stats: Optional[AnalysisStats],
    ) -> None:
        from repro.analysis.ir.project import Project

        project = Project(modules)
        cacheable_rules = [r for r in project_rules if r.cacheable]
        global_rules = [r for r in project_rules if not r.cacheable]
        dirty: List[ModuleInfo] = []
        for module in modules:
            deep = project.deep_sha(module.relpath)
            cached = (
                cache.project_results(module.relpath, deep)
                if cache is not None else None
            )
            if cached is not None:
                violations, summaries = cached
                project.taint.preload(summaries)
                raw_by_module[module.relpath].extend(violations)
            else:
                dirty.append(module)
        project.taint.compute(
            [module.relpath for module in dirty]
        )
        for module in dirty:
            violations: List[Violation] = []
            for rule in cacheable_rules:
                if rule.applies_to(module.relpath):
                    violations.extend(
                        rule.check_module(project, module)
                    )
            raw_by_module[module.relpath].extend(violations)
            analyzed.add(module.relpath)
            if cache is not None:
                cache.store_project_results(
                    module.relpath,
                    project.deep_sha(module.relpath),
                    violations,
                    project.taint.summaries_for(module.relpath),
                )
        # Uncacheable rules (whole-program verdicts whose evidence
        # crosses import cones) re-run over every module, and their
        # findings are never stored or replayed.  They do not count
        # as "analyzed" — the incremental contract (warm runs replay
        # everything cacheable) is unchanged.
        for module in modules:
            for rule in global_rules:
                if rule.applies_to(module.relpath):
                    raw_by_module[module.relpath].extend(
                        rule.check_module(project, module)
                    )
        if stats is not None:
            stats.import_sccs = len(project.import_sccs)
            stats.call_sccs = project.taint.call_scc_count
            stats.functions = project.function_count
            stats.summaries_computed = (
                project.taint.summaries_computed
            )


#: Path components the relpath computation anchors on. ``repro`` is the
#: library; ``tests`` and ``benchmarks`` joined the scanned surface in
#: PR 3 (determinism + cache-key-scope coverage there).
_ANCHORS = ("repro", "tests", "benchmarks")


def _relpath(filename: str) -> str:
    """Package-relative posix path: everything from the last anchor
    component on (``src/repro/core/x.py`` -> ``repro/core/x.py``,
    ``tests/test_sync.py`` -> ``tests/test_sync.py``). Falls back to
    the posix-normalized input."""
    parts = filename.replace("\\", "/").split("/")
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] in _ANCHORS:
            return "/".join(parts[index:])
    return "/".join(parts)


def check_source(
    rule: Rule, source: str, relpath: str = "repro/fixture.py"
) -> List[Violation]:
    """Run one *rule* over inline *source* — the fixture-test helper.

    Suppressions are honoured (suppressed findings are dropped), so a
    fixture can exercise the suppression path too; malformed
    suppressions are **not** audited here (that is
    :meth:`Analyzer.analyze_module`'s job)."""
    module = ModuleInfo.from_source(source, relpath)
    findings = []
    if rule.applies_to(relpath):
        for violation in rule.check(module):
            supp = module.suppression_for(rule.name, violation.line)
            if supp is not None and supp.justification:
                continue
            findings.append(violation)
    return findings
